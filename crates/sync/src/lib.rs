//! Synchronization facade: `std` primitives normally, `loom` under
//! `cfg(loom)`.
//!
//! Every concurrent module in the workspace (`tcq`, `ring`, `credit`,
//! `sched::qp` in `flock-core`; the completion-queue ring in
//! `flock-fabric`; `lockshare` in `flock-baselines`) imports its atomics,
//! threads, and unsafe cells from this crate instead of `std` directly.
//! A normal build resolves to the real `std` types with zero overhead.
//! Building with `RUSTFLAGS="--cfg loom"` swaps in the `loom` model
//! checker's instrumented equivalents, so the loom suites can
//! exhaustively explore thread interleavings of the lock-free protocols
//! (see DESIGN.md, "Memory ordering and verification", and `cargo loom`).
//!
//! This crate sits below `flock-fabric` in the dependency graph (the
//! facade started life as `flock_core::sync`, which still re-exports it
//! for compatibility, but `flock-core` depends on `flock-fabric`, so the
//! fabric's lock-free CQ needs the facade from a lower layer).
//!
//! Three deliberate API choices keep the two worlds identical:
//!
//! * [`UnsafeCell`] exposes only loom's closure-based `with`/`with_mut`
//!   accessors (no bare `get`), so every raw access site reads the same
//!   under both backends.
//! * [`backoff`] is the one blessed way to spin-wait. Under `std` it
//!   spins with a periodic OS yield; under loom every call is a
//!   *voluntary* yield, which the model scheduler uses to deprioritize
//!   the spinner — that is what makes spin loops terminate during
//!   bounded-exhaustive exploration.
//! * [`AdaptiveBackoff`] is the blessed way to *idle-wait* (spin, then
//!   yield, then park with escalating timeouts). Under loom it degrades
//!   to plain yields: parking is an OS-scheduler concern, invisible to
//!   the memory model.

pub mod clock;

#[cfg(loom)]
pub use loom::{cell::UnsafeCell, hint, sync::atomic, sync::Arc, thread};

#[cfg(not(loom))]
pub use std::{hint, sync::atomic, sync::Arc, thread};

/// `std` counterpart of loom's closure-based `UnsafeCell`.
#[cfg(not(loom))]
#[derive(Debug, Default)]
pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

#[cfg(not(loom))]
impl<T> UnsafeCell<T> {
    /// Create a cell.
    pub const fn new(value: T) -> UnsafeCell<T> {
        UnsafeCell(std::cell::UnsafeCell::new(value))
    }

    /// Immutable access to the contents via raw pointer.
    ///
    /// The pointer must not escape the closure; callers uphold the usual
    /// `UnsafeCell` aliasing rules inside `f`.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        f(self.0.get())
    }

    /// Mutable access to the contents via raw pointer.
    ///
    /// The pointer must not escape the closure; callers guarantee no
    /// concurrent access for the duration of `f`.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }
}

/// Pads and aligns a value to a 64-byte cache line (destructive
/// interference range on x86-64 and most aarch64 parts).
///
/// Used to keep hot atomics that different threads write (e.g. the TCQ
/// `tail`, the CQ ring's enqueue/dequeue cursors) off the cache lines of
/// fields that are merely read or updated by one thread (stats
/// counters), eliminating false sharing.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

impl<T> CachePadded<T> {
    /// Wrap `value` on its own cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded(value)
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// One iteration of a bounded spin-wait.
///
/// `spins` is the caller's iteration counter. Under `std` this emits a
/// `spin_loop` hint and yields to the OS every 128 iterations; under
/// loom it always yields to the model scheduler so exploration makes
/// progress past the spin.
#[inline]
pub fn backoff(spins: u32) {
    #[cfg(loom)]
    {
        let _ = spins;
        thread::yield_now();
    }
    #[cfg(not(loom))]
    {
        if clock::is_virtual() {
            // A virtual task spinning never lets the peer it waits on
            // run; every spin iteration must be a virtual yield.
            clock::yield_now();
        } else if spins.is_multiple_of(128) || single_cpu() {
            thread::yield_now();
        } else {
            hint::spin_loop();
        }
    }
}

/// Whether the host exposes exactly one logical CPU (computed once).
/// Spin-waiting can never overlap with the thread being waited on
/// there, so the spin tiers of [`backoff`] and [`AdaptiveBackoff`]
/// degrade to immediate yields.
#[cfg(not(loom))]
fn single_cpu() -> bool {
    use std::sync::OnceLock;
    static SINGLE: OnceLock<bool> = OnceLock::new();
    *SINGLE.get_or_init(|| {
        thread::available_parallelism()
            .map(|n| n.get() == 1)
            .unwrap_or(false)
    })
}

/// Adaptive spin-then-park idle-waiting, shared by the server
/// dispatchers, the QP scheduler, and CQ blocking waits.
///
/// The escalation ladder on an idle poll:
///
/// 1. first [`AdaptiveBackoff::SPIN_LIMIT`] idle rounds: `spin_loop`
///    hint (stay hot, nanoseconds of latency);
/// 2. next [`AdaptiveBackoff::YIELD_LIMIT`] idle rounds: `yield_now`
///    (let a runnable peer in — on a loaded box this is what keeps a
///    polling thread from starving the thread that would feed it);
/// 3. after that: `thread::sleep` with an exponentially growing
///    duration, capped at `max_park`.
///
/// Any successful poll calls [`AdaptiveBackoff::reset`], snapping back
/// to the spin tier. Under `cfg(loom)` every tier is a voluntary yield;
/// sleeping is invisible to the memory model and only throttles the OS
/// scheduler.
#[derive(Debug)]
pub struct AdaptiveBackoff {
    idle_rounds: u32,
    // Unread under cfg(loom), where every tier is a voluntary yield.
    #[cfg_attr(loom, allow(dead_code))]
    max_park: std::time::Duration,
    // Cap of the virtual ladder; unread under cfg(loom) for the same
    // reason as `max_park`.
    #[cfg_attr(loom, allow(dead_code))]
    virtual_cap_ns: u64,
}

impl AdaptiveBackoff {
    /// Idle rounds spent in the busy-spin tier.
    pub const SPIN_LIMIT: u32 = 64;
    /// Additional idle rounds spent in the yield tier.
    pub const YIELD_LIMIT: u32 = 64;
    /// First park duration once spinning and yielding are exhausted.
    pub const FIRST_PARK: std::time::Duration = std::time::Duration::from_micros(5);
    /// First poll period of the *virtual* ladder (spinning a virtual core
    /// is pure waste — the ladder escalates from here straight to
    /// [`Self::VIRTUAL_MAX_POLL_NS`]-capped virtual sleeps).
    pub const VIRTUAL_FIRST_POLL_NS: u64 = 250;
    /// Deep-idle cap of the virtual ladder (~1 ms). Deliberately larger
    /// than typical `max_park` values: wall parks are sized to bound
    /// *detection latency per burned host core*, but a virtual sleeping
    /// task costs lab *events*, and thousands of idle tasks (unused NIC
    /// lanes at paper scale) polling every 2 µs of virtual time would
    /// swamp the event heap. Busy tasks reset the ladder, so steady-state
    /// detection stays at [`Self::VIRTUAL_FIRST_POLL_NS`] scale.
    pub const VIRTUAL_MAX_POLL_NS: u64 = Self::VIRTUAL_FIRST_POLL_NS << 12;

    /// A backoff whose park tier never sleeps longer than `max_park`.
    pub fn new(max_park: std::time::Duration) -> AdaptiveBackoff {
        AdaptiveBackoff {
            idle_rounds: 0,
            max_park,
            virtual_cap_ns: Self::VIRTUAL_MAX_POLL_NS,
        }
    }

    /// Cap the *virtual* ladder at `ns` instead of the deep-idle default
    /// ([`Self::VIRTUAL_MAX_POLL_NS`]).
    ///
    /// The wall ladder parks to save host CPU; detection latency is the
    /// price and deepening it is always safe. The virtual ladder has no
    /// such trade — a virtual sleep is free host-wise — so its cap is a
    /// *modeling* choice: dedicated polling actors (server dispatchers,
    /// client response dispatchers, NIC engines) never sleep tens of
    /// microseconds between bursts on real hardware, and letting them do
    /// so in the lab inflates burst-detection latency with dispatcher
    /// count, masking the sharding win the lab exists to measure. Such
    /// actors set a tight cap here; incidental waiters keep the deep
    /// default so thousands of idle tasks don't swamp the event heap.
    pub fn with_virtual_cap(mut self, ns: u64) -> AdaptiveBackoff {
        self.virtual_cap_ns = ns.max(Self::VIRTUAL_FIRST_POLL_NS);
        self
    }

    /// Work was found: snap back to the spin tier.
    #[inline]
    pub fn reset(&mut self) {
        self.idle_rounds = 0;
    }

    /// Nothing to do this round: spin, yield, or park per the ladder.
    ///
    /// On a single-CPU host the spin tier is skipped: the thread that
    /// would hand us work cannot be running concurrently, so burning the
    /// only core on `spin_loop` hints just delays it — yielding is
    /// strictly better from the first idle round.
    #[inline]
    pub fn idle(&mut self) {
        self.idle_rounds = self.idle_rounds.saturating_add(1);
        #[cfg(loom)]
        {
            thread::yield_now();
        }
        #[cfg(not(loom))]
        {
            if clock::is_virtual() {
                // Virtual ladder: each idle round is a charged virtual
                // sleep whose period doubles from VIRTUAL_FIRST_POLL_NS
                // up to VIRTUAL_MAX_POLL_NS, mirroring the park tier's
                // shape without burning wall time or host CPU.
                let exp = self.idle_rounds.saturating_sub(1).min(12);
                let poll = (Self::VIRTUAL_FIRST_POLL_NS << exp).min(self.virtual_cap_ns);
                clock::sleep_ns(poll);
            } else if self.idle_rounds <= Self::SPIN_LIMIT && !single_cpu() {
                hint::spin_loop();
            } else if self.idle_rounds <= Self::SPIN_LIMIT + Self::YIELD_LIMIT {
                thread::yield_now();
            } else {
                let over = self.idle_rounds - Self::SPIN_LIMIT - Self::YIELD_LIMIT;
                let exp = over.min(10); // 5 µs << 10 ≈ 5 ms, before the cap
                let park = Self::FIRST_PARK
                    .saturating_mul(1u32 << exp)
                    .min(self.max_park);
                thread::sleep(park);
            }
        }
    }

    /// Whether the next [`AdaptiveBackoff::idle`] call would park (used
    /// by callers that must not sleep while holding work).
    pub fn would_park(&self) -> bool {
        self.idle_rounds >= Self::SPIN_LIMIT + Self::YIELD_LIMIT
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unsafe_cell_roundtrip() {
        let c = UnsafeCell::new(7u32);
        // SAFETY-free by construction: single-threaded access.
        c.with_mut(|p| unsafe {
            // SAFETY: exclusive access inside the closure on one thread.
            *p = 9;
        });
        let v = c.with(|p| unsafe {
            // SAFETY: no concurrent writers; pointer valid for the read.
            *p
        });
        assert_eq!(v, 9);
    }

    #[test]
    fn cache_padded_is_aligned() {
        let v = CachePadded::new(1u8);
        assert_eq!(std::mem::align_of_val(&v), 64);
        assert_eq!(*v, 1);
    }

    #[test]
    fn adaptive_backoff_ladder_escalates_and_resets() {
        let mut b = AdaptiveBackoff::new(Duration::from_micros(50));
        for _ in 0..(AdaptiveBackoff::SPIN_LIMIT + AdaptiveBackoff::YIELD_LIMIT) {
            assert!(!b.would_park());
            b.idle();
        }
        assert!(b.would_park());
        b.idle(); // parks (5 µs), must not hang
        b.reset();
        assert!(!b.would_park());
    }
}
