//! The virtual-time execution seam.
//!
//! Every fabric/runtime site that touches *time* or the *OS scheduler* —
//! spawning a worker thread, yielding, parking, reading a clock, arming
//! a deadline — goes through this module instead of `std` directly.
//!
//! Two executors implement the seam:
//!
//! * **Threaded** (the default, when no [`Executor`] is installed):
//!   behaves exactly like the direct `std` calls the code used to make.
//!   `now_ns` is wall time since a process-wide epoch, `spawn` is
//!   `std::thread::spawn`, `sleep`/`yield` hit the OS scheduler, and
//!   [`charge`] is a no-op. This path adds one thread-local read to the
//!   call sites and nothing else.
//!
//! * **Virtual** (installed per task by `flock_sim::vtime::VirtualLab`):
//!   tasks are *cooperatively scheduled virtual cores*. Exactly one task
//!   runs at any wall instant; `now_ns` is the lab's virtual clock;
//!   `sleep`/`yield` hand the core back to the lab's virtual-time event
//!   heap, and [`charge`] accrues virtual CPU cost that is applied at
//!   the task's next yield point. Because only one task runs at a time
//!   and wake-ups are ordered by `(virtual time, sequence)`, a whole
//!   multi-threaded run — real server, real NIC lanes, real clients —
//!   is deterministic and can simulate any degree of parallelism on a
//!   single host CPU (see DESIGN.md §5e).
//!
//! House rule for virtual tasks: **never yield while holding a lock
//! another task can contend**. The threaded code already obeys this (all
//! its spin/park sites drop locks first); conversions must preserve it,
//! otherwise the lab deadlocks (the lock holder is parked and the next
//! task blocks the one OS thread that could release it).

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A cooperative scheduler driving virtual tasks. Implemented by
/// `flock_sim::vtime::VirtualLab`; installed per task via [`install`].
pub trait Executor: Send + Sync {
    /// Current virtual time in nanoseconds.
    fn now_ns(&self) -> u64;

    /// Yield the virtual core, charging `ns` of virtual time before the
    /// task becomes runnable again. Implementations clamp `ns` to at
    /// least their yield cost so every yield makes virtual progress
    /// (a zero-cost yield could spin forever at one instant).
    fn advance(&self, ns: u64);

    /// Spawn a new cooperative task. The child begins runnable at the
    /// current virtual instant and inherits this executor.
    fn spawn_task(&self, name: String, f: Box<dyn FnOnce() + Send>) -> TaskHandle;

    /// The minimum virtual cost of one yield.
    fn yield_cost_ns(&self) -> u64;
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<dyn Executor>>> = const { RefCell::new(None) };
    /// Virtual CPU time accrued by [`charge`] since the last yield.
    static PENDING_NS: Cell<u64> = const { Cell::new(0) };
}

/// Process-wide epoch for threaded-mode `now_ns`.
fn wall_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Install `exec` as the calling thread's executor (the thread becomes a
/// virtual task). Returns a guard that uninstalls on drop.
pub fn install(exec: Arc<dyn Executor>) -> InstallGuard {
    CURRENT.with(|c| *c.borrow_mut() = Some(exec));
    PENDING_NS.with(|p| p.set(0));
    InstallGuard { _priv: () }
}

/// Uninstalls the thread's executor when dropped.
pub struct InstallGuard {
    _priv: (),
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = None);
        PENDING_NS.with(|p| p.set(0));
    }
}

/// The calling thread's executor, if it is a virtual task.
pub fn current() -> Option<Arc<dyn Executor>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether the calling thread runs under a virtual-time executor.
#[inline]
pub fn is_virtual() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Current time in nanoseconds: virtual time under an executor, wall
/// time since a process-wide epoch otherwise.
#[inline]
pub fn now_ns() -> u64 {
    match current() {
        Some(e) => e.now_ns(),
        None => wall_epoch().elapsed().as_nanos() as u64,
    }
}

/// Accrue `ns` of virtual CPU cost against the calling task, applied at
/// its next yield point ([`yield_now`], [`sleep_ns`], or an
/// [`crate::AdaptiveBackoff::idle`] round). Charging instead of
/// immediately yielding keeps the call legal inside critical sections.
/// No-op in threaded mode.
#[inline]
pub fn charge(ns: u64) {
    if is_virtual() {
        PENDING_NS.with(|p| p.set(p.get().saturating_add(ns)));
    }
}

fn take_pending() -> u64 {
    PENDING_NS.with(|p| p.replace(0))
}

/// Apply any pending [`charge`]d cost now (a yield whose length is the
/// accrued work). No-op in threaded mode or with nothing pending; used
/// by poll loops on their *progressed* edge, where they would otherwise
/// never yield.
#[inline]
pub fn flush_charge() {
    if let Some(e) = current() {
        let pending = take_pending();
        if pending > 0 {
            e.advance(pending);
        }
    }
}

/// Yield the core: `std::thread::yield_now` in threaded mode; in
/// virtual mode a minimum-cost virtual yield that also applies pending
/// charges.
#[inline]
pub fn yield_now() {
    match current() {
        Some(e) => {
            let ns = take_pending().saturating_add(e.yield_cost_ns());
            e.advance(ns);
        }
        None => std::thread::yield_now(),
    }
}

/// Sleep for `ns` nanoseconds of (virtual or wall) time, plus any
/// pending charges in virtual mode.
#[inline]
pub fn sleep_ns(ns: u64) {
    match current() {
        Some(e) => {
            let total = take_pending().saturating_add(ns);
            e.advance(total);
        }
        None => std::thread::sleep(Duration::from_nanos(ns)),
    }
}

/// Sleep for a [`Duration`] of (virtual or wall) time.
#[inline]
pub fn sleep(d: Duration) {
    sleep_ns(d.as_nanos().min(u64::MAX as u128) as u64);
}

/// An absolute deadline `d` from now, in the calling task's clock
/// domain. Compare with [`expired`].
#[inline]
pub fn deadline(d: Duration) -> u64 {
    now_ns().saturating_add(d.as_nanos().min(u64::MAX as u128) as u64)
}

/// Whether a [`deadline`] has passed.
#[inline]
pub fn expired(deadline_ns: u64) -> bool {
    now_ns() > deadline_ns
}

/// Handle to a task spawned through the seam.
///
/// In threaded mode this is a plain `JoinHandle`. In virtual mode
/// [`TaskHandle::join`] first waits — in virtual time, yielding turns to
/// the joinee — for the task to deregister from the lab, then joins the
/// underlying OS thread (which by then runs no scheduled code). Joining
/// a virtual task with a bare `JoinHandle::join` would deadlock: the
/// joiner holds the virtual core the joinee needs to finish.
#[derive(Debug)]
pub struct TaskHandle {
    inner: std::thread::JoinHandle<()>,
    /// `Some` for virtual tasks: set (with `Release`, under the lab
    /// lock, before the core is handed over) when the task deregisters.
    finished: Option<Arc<AtomicBool>>,
}

impl TaskHandle {
    /// Wrap a plain OS thread (threaded mode).
    pub fn threaded(inner: std::thread::JoinHandle<()>) -> TaskHandle {
        TaskHandle {
            inner,
            finished: None,
        }
    }

    /// Wrap a virtual task and its deregistration flag (virtual mode;
    /// called by executor implementations).
    pub fn virtualized(
        inner: std::thread::JoinHandle<()>,
        finished: Arc<AtomicBool>,
    ) -> TaskHandle {
        TaskHandle {
            inner,
            finished: Some(finished),
        }
    }

    /// Wait for the task to finish.
    pub fn join(self) -> std::thread::Result<()> {
        if let Some(f) = &self.finished {
            // Poll in virtual time so the joinee keeps getting the core.
            // The flag is published before the handover that follows the
            // joinee's deregistration, so the poll count is deterministic.
            while !f.load(Ordering::Acquire) {
                sleep_ns(1_000);
            }
        }
        self.inner.join()
    }

    /// Whether the task has already finished (virtual tasks only;
    /// threaded handles report via `JoinHandle::is_finished`).
    pub fn is_finished(&self) -> bool {
        match &self.finished {
            Some(f) => f.load(Ordering::Acquire),
            None => self.inner.is_finished(),
        }
    }
}

/// Spawn a worker through the seam: a named OS thread in threaded mode,
/// a cooperative virtual task when the caller is one. Panics if the OS
/// refuses the thread (matching the `.expect` the direct call sites
/// used).
pub fn spawn(name: &str, f: impl FnOnce() + Send + 'static) -> TaskHandle {
    match current() {
        Some(e) => e.spawn_task(name.to_string(), Box::new(f)),
        None => TaskHandle::threaded(
            std::thread::Builder::new()
                .name(name.to_string())
                .spawn(f)
                .expect("spawn worker thread"),
        ),
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn threaded_mode_is_the_default() {
        assert!(!is_virtual());
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
        charge(1_000_000); // must be a no-op
        flush_charge();
        yield_now();
        let d = deadline(Duration::from_secs(3600));
        assert!(!expired(d));
    }

    #[test]
    fn threaded_spawn_and_join() {
        let h = spawn("clock-test", || {});
        assert!(h.join().is_ok());
    }
}
