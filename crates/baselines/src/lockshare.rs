//! FaRM-style lock-based QP sharing (and the no-sharing special case).
//!
//! Threads share an RC QP behind a plain lock: each thread encodes its own
//! single-request message and posts its own RDMA write while holding the
//! QP lock. No coalescing, no leader — the configuration the paper's
//! Figure 9 compares against (2 or 4 threads per QP via spinlock;
//! 1 thread per QP is the *no sharing* configuration).
//!
//! The client speaks the Flock ring/message protocol, so the peer is an
//! unmodified [`flock_core::server::FlockServer`].

use std::collections::HashMap;

use flock_core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use flock_core::sync::Arc;
use std::time::Duration;

use flock_sync::clock;
use flock_sync::clock::TaskHandle;

use crossbeam::channel::bounded;
use flock_core::credit::CreditState;
use flock_core::domain::{ConnectRequest, FlockDomain, RingInfo};
use flock_core::msg::{self, EntryMeta, EntryRef, MsgHeader, FLAG_CREDIT_GRANT};
use flock_core::ring::{RingConsumer, RingLayout, RingProducer};
use flock_core::{FlockError, Result};
use flock_fabric::{Access, MemoryRegion, Node, RemoteAddr, SendWr, Sge, Transport, WrId};
use parking_lot::{Condvar, Mutex};

/// Configuration for the lock-sharing client.
#[derive(Debug, Clone)]
pub struct LockShareConfig {
    /// Number of RC QPs.
    pub n_qps: usize,
    /// Ring capacity per QP.
    pub ring_capacity: usize,
    /// Blocking-wait timeout.
    pub timeout: Duration,
}

impl Default for LockShareConfig {
    fn default() -> Self {
        LockShareConfig {
            n_qps: 4,
            ring_capacity: 1 << 16,
            timeout: Duration::from_secs(10),
        }
    }
}

/// Per-QP state, all guarded by one lock (the FaRM-style spinlock; we use
/// a parking-lot mutex, which spins before parking).
struct Lane {
    prod: RingProducer,
    credits: CreditState,
    canary_seq: u64,
}

struct QpCtx {
    index: usize,
    qp: Arc<flock_fabric::Qp>,
    lane: Mutex<Lane>,
    lane_cond: Condvar,
    req_remote: RingInfo,
    staging: Arc<MemoryRegion>,
    resp_mr: Arc<MemoryRegion>,
    resp_cons: Mutex<RingConsumer>,
    server_head: AtomicU64,
    resp_head_shared: AtomicU64,
    messages_sent: AtomicU64,
}

struct ThreadSlot {
    inbox: Mutex<HashMap<u64, Vec<u8>>>,
    cond: Condvar,
}

struct Inner {
    cfg: LockShareConfig,
    qps: Vec<Arc<QpCtx>>,
    threads: Mutex<Vec<Arc<ThreadSlot>>>,
    stop: AtomicBool,
}

/// The lock-based QP-sharing RPC client.
pub struct LockSharedClient {
    inner: Arc<Inner>,
    dispatcher: Option<TaskHandle>,
}

/// A per-thread context for [`LockSharedClient`].
pub struct LockThread {
    inner: Arc<Inner>,
    thread_id: u32,
    qp_idx: usize,
    seq: std::cell::Cell<u64>,
    slot: Arc<ThreadSlot>,
}

impl LockSharedClient {
    /// Connect to a Flock server (same handshake as the Flock client).
    pub fn connect(
        domain: &FlockDomain,
        node: &Arc<Node>,
        server_name: &str,
        cfg: LockShareConfig,
    ) -> Result<LockSharedClient> {
        let mut client_qps = Vec::new();
        let mut resp_mrs = Vec::new();
        let mut response_rings = Vec::new();
        for _ in 0..cfg.n_qps {
            let cq = node.create_cq(256);
            let qp = node.create_qp(Transport::Rc, &cq, &cq);
            let resp_mr = node.register_mr(cfg.ring_capacity, Access::REMOTE_WRITE);
            response_rings.push(RingInfo {
                rkey: resp_mr.rkey(),
                addr: resp_mr.addr(),
                capacity: cfg.ring_capacity,
            });
            resp_mrs.push(resp_mr);
            client_qps.push(qp);
        }
        let (reply_tx, _r) = bounded(1);
        let reply = domain.dial(
            server_name,
            ConnectRequest {
                client_node: node.id(),
                client_qps: client_qps.clone(),
                response_rings,
                tenant: 0,
                reply: reply_tx,
            },
        )?;
        let mut qps = Vec::new();
        for (i, qp) in client_qps.into_iter().enumerate() {
            let req_remote = reply.request_rings[i];
            qps.push(Arc::new(QpCtx {
                index: i,
                qp,
                lane: Mutex::new(Lane {
                    prod: RingProducer::new(RingLayout::new(0, req_remote.capacity)),
                    credits: CreditState::new(reply.initial_credits),
                    canary_seq: 0,
                }),
                lane_cond: Condvar::new(),
                req_remote,
                staging: node.register_mr(cfg.ring_capacity, Access::LOCAL),
                resp_mr: Arc::clone(&resp_mrs[i]),
                resp_cons: Mutex::new(RingConsumer::new(RingLayout::new(0, cfg.ring_capacity))),
                server_head: AtomicU64::new(0),
                resp_head_shared: AtomicU64::new(0),
                messages_sent: AtomicU64::new(0),
            }));
        }
        let inner = Arc::new(Inner {
            cfg,
            qps,
            threads: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        });
        let dispatcher = {
            let inner = Arc::clone(&inner);
            clock::spawn("lockshare-dispatch", move || dispatcher_loop(&inner))
        };
        Ok(LockSharedClient {
            inner,
            dispatcher: Some(dispatcher),
        })
    }

    /// Register a thread; it is pinned to QP `thread_id % n_qps` (static
    /// FaRM-style assignment; no thread scheduler).
    pub fn register_thread(&self) -> LockThread {
        let mut threads = self.inner.threads.lock();
        let thread_id = threads.len() as u32;
        let slot = Arc::new(ThreadSlot {
            inbox: Mutex::new(HashMap::new()),
            cond: Condvar::new(),
        });
        threads.push(Arc::clone(&slot));
        LockThread {
            inner: Arc::clone(&self.inner),
            thread_id,
            qp_idx: thread_id as usize % self.inner.qps.len(),
            seq: std::cell::Cell::new(1),
            slot,
        }
    }

    /// Messages sent (equals requests: no coalescing).
    pub fn messages_sent(&self) -> u64 {
        self.inner
            .qps
            .iter()
            .map(|q| q.messages_sent.load(Ordering::Relaxed))
            .sum()
    }

    /// Stop the dispatcher.
    pub fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for LockSharedClient {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl LockThread {
    /// Blocking RPC: encode one single-request message under the QP lock,
    /// post it, and wait for the response.
    pub fn call(&self, rpc_id: u32, payload: &[u8]) -> Result<Vec<u8>> {
        let qp = &self.inner.qps[self.qp_idx];
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        let meta = EntryMeta {
            len: payload.len() as u32,
            thread_id: self.thread_id,
            seq,
            rpc_id,
        };
        let need = msg::encoded_size([payload.len()]);
        let deadline = clock::deadline(self.inner.cfg.timeout);

        // ---- The whole send path holds the QP lock (FaRM model). ----
        {
            let mut lane = qp.lane.lock();
            // Credits: 1 per request; renew at half.
            loop {
                if lane.credits.try_consume(1) {
                    break;
                }
                if !lane.credits.renewal_in_flight() {
                    lane.credits.mark_requested();
                    send_credit_request(qp);
                }
                if self.inner.stop.load(Ordering::Relaxed) {
                    return Err(FlockError::Disconnected);
                }
                if clock::is_virtual() {
                    // A condvar wait would park the lab's one runnable
                    // OS thread; poll in virtual time with the lane
                    // unlocked so the dispatcher can grant credits.
                    if clock::expired(deadline) {
                        return Err(FlockError::Timeout);
                    }
                    parking_lot::MutexGuard::unlocked(&mut lane, || clock::sleep_ns(500));
                } else if qp
                    .lane_cond
                    .wait_for(&mut lane, remaining(deadline))
                    .timed_out()
                {
                    return Err(FlockError::Timeout);
                }
            }
            if lane.credits.should_request_renewal() {
                lane.credits.mark_requested();
                send_credit_request(qp);
            }
            lane.canary_seq += 1;
            let canary = 0xFA12_0000_0000_0000 + lane.canary_seq;
            let header = MsgHeader {
                total_len: 0,
                count: 0,
                flags: 0,
                canary,
                head: qp.resp_head_shared.load(Ordering::Acquire),
                aux: 0,
            };
            let reservation = loop {
                lane.prod
                    .update_head(qp.server_head.load(Ordering::Acquire));
                match lane.prod.reserve(need) {
                    Ok(r) => break r,
                    Err(FlockError::RingFull { .. }) => {
                        if clock::expired(deadline) {
                            return Err(FlockError::Timeout);
                        }
                        parking_lot::MutexGuard::unlocked(&mut lane, clock::yield_now);
                    }
                    Err(e) => return Err(e),
                }
            };
            if let Some((woff, wlen)) = reservation.wrap {
                let rec = RingProducer::wrap_record(wlen, canary);
                qp.staging.write(woff, &rec)?;
                qp.qp.post_send(
                    SendWr::write(
                        WrId(0),
                        Sge {
                            lkey: qp.staging.lkey(),
                            addr: qp.staging.addr() + woff as u64,
                            len: wlen,
                        },
                        RemoteAddr {
                            rkey: qp.req_remote.rkey,
                            addr: qp.req_remote.addr + woff as u64,
                        },
                    )
                    .unsignaled(),
                )?;
            }
            qp.staging.with_write(|buf| {
                msg::encode(
                    &mut buf[reservation.offset..reservation.offset + need],
                    &header,
                    &[EntryRef {
                        meta,
                        data: payload,
                    }],
                )
                .map(|_| ())
            })?;
            qp.qp.post_send(
                SendWr::write(
                    WrId(u64::MAX),
                    Sge {
                        lkey: qp.staging.lkey(),
                        addr: qp.staging.addr() + reservation.offset as u64,
                        len: need,
                    },
                    RemoteAddr {
                        rkey: qp.req_remote.rkey,
                        addr: qp.req_remote.addr + reservation.offset as u64,
                    },
                )
                .unsignaled(),
            )?;
            qp.messages_sent.fetch_add(1, Ordering::Relaxed);
        }

        // ---- Wait for the response outside the lock. ----
        if clock::is_virtual() {
            loop {
                if let Some(data) = self.slot.inbox.lock().remove(&seq) {
                    return Ok(data);
                }
                if self.inner.stop.load(Ordering::Relaxed) {
                    return Err(FlockError::Disconnected);
                }
                if clock::expired(deadline) {
                    return Err(FlockError::Timeout);
                }
                clock::sleep_ns(500);
            }
        }
        let mut inbox = self.slot.inbox.lock();
        loop {
            if let Some(data) = inbox.remove(&seq) {
                return Ok(data);
            }
            if self.inner.stop.load(Ordering::Relaxed) {
                return Err(FlockError::Disconnected);
            }
            if self
                .slot
                .cond
                .wait_for(&mut inbox, remaining(deadline))
                .timed_out()
            {
                return Err(FlockError::Timeout);
            }
        }
    }
}

/// Wall- or virtual-clock time left until an absolute [`clock::deadline`].
fn remaining(deadline_ns: u64) -> Duration {
    Duration::from_nanos(deadline_ns.saturating_sub(clock::now_ns()))
}

fn send_credit_request(qp: &QpCtx) {
    let imm = ((qp.index as u32) << 16) | 1; // degree is always 1 here
    let _ = qp.qp.post_send(
        SendWr::write_imm(
            WrId(u64::MAX - 1),
            Sge {
                lkey: qp.staging.lkey(),
                addr: qp.staging.addr(),
                len: 0,
            },
            RemoteAddr {
                rkey: qp.req_remote.rkey,
                addr: qp.req_remote.addr,
            },
            imm,
        )
        .unsignaled(),
    );
}

fn dispatcher_loop(inner: &Inner) {
    while !inner.stop.load(Ordering::Relaxed) {
        let mut progressed = false;
        for qp in &inner.qps {
            while qp.qp.send_cq().poll_one().is_some() {}
            let polled = { qp.resp_cons.lock().poll(&qp.resp_mr) };
            if let Ok(Some(m)) = polled {
                progressed = true;
                let head_after = { qp.resp_cons.lock().head() };
                qp.resp_head_shared.store(head_after, Ordering::Release);
                let view = m.view();
                qp.server_head.fetch_max(view.header.head, Ordering::AcqRel);
                if view.header.flags & FLAG_CREDIT_GRANT != 0 {
                    let (granted, _) = msg::unpack_aux(view.header.aux);
                    let mut lane = qp.lane.lock();
                    if granted > 0 {
                        lane.credits.grant(granted);
                    } else {
                        // The Flock server only declines QPs its scheduler
                        // deactivated; the FaRM-style client has no
                        // migration, so treat it as a fresh grant request
                        // opportunity (keeps the baseline simple).
                        lane.credits.grant(1);
                    }
                    qp.lane_cond.notify_all();
                }
                let threads = inner.threads.lock();
                for (meta, data) in view.entries() {
                    if let Some(slot) = threads.get(meta.thread_id as usize) {
                        slot.inbox.lock().insert(meta.seq, data.to_vec());
                        slot.cond.notify_all();
                    }
                }
            }
        }
        if progressed {
            // Charge per-batch CPU cost so a busy virtual dispatcher
            // still advances time and yields the core (no-ops in
            // threaded mode).
            clock::charge(1_000);
            clock::flush_charge();
        } else {
            clock::yield_now();
        }
    }
    for slot in inner.threads.lock().iter() {
        slot.cond.notify_all();
    }
}
