//! A UD-datagram RPC baseline in the style of eRPC / FaSST.
//!
//! Everything hardware RC gives Flock for free is done in software here:
//! requests and responses are fragmented to the 4 KB UD MTU and
//! reassembled; loss is recovered by client retransmission timers; the
//! server burns CPU recycling receive buffers and polling the completion
//! queue per packet — the overhead the paper's Figure 2(b) measures.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use flock_sync::clock;
use flock_sync::clock::TaskHandle;

use flock_fabric::{
    Access, MemoryRegion, Node, NodeId, QpNum, RecvWr, SendWr, Sge, Transport, WrId, GRH_BYTES,
};
use parking_lot::{Condvar, Mutex};

/// Packet header: kind, rpc id, thread, seq, fragment index/count, length.
const PKT_HDR: usize = 1 + 4 + 4 + 8 + 2 + 2 + 4;
/// Maximum payload bytes per UD packet.
const FRAG_PAYLOAD: usize = 4096 - PKT_HDR;

const KIND_REQ: u8 = 1;
const KIND_RESP: u8 = 2;

/// Configuration for the UD RPC endpoints.
#[derive(Debug, Clone)]
pub struct UdRpcConfig {
    /// Receive buffers kept posted.
    pub recv_depth: usize,
    /// Client retransmission timeout.
    pub rto: Duration,
    /// Maximum retransmissions before reporting failure.
    pub max_retries: u32,
    /// Overall operation timeout.
    pub timeout: Duration,
}

impl Default for UdRpcConfig {
    fn default() -> Self {
        UdRpcConfig {
            recv_depth: 256,
            rto: Duration::from_millis(20),
            max_retries: 50,
            timeout: Duration::from_secs(10),
        }
    }
}

fn encode_pkt(
    kind: u8,
    rpc_id: u32,
    thread: u32,
    seq: u64,
    frag: u16,
    nfrags: u16,
    payload: &[u8],
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(PKT_HDR + payload.len());
    buf.push(kind);
    buf.extend_from_slice(&rpc_id.to_le_bytes());
    buf.extend_from_slice(&thread.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&frag.to_le_bytes());
    buf.extend_from_slice(&nfrags.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

struct Pkt {
    kind: u8,
    rpc_id: u32,
    thread: u32,
    seq: u64,
    frag: u16,
    nfrags: u16,
    payload: Vec<u8>,
}

fn decode_pkt(b: &[u8]) -> Option<Pkt> {
    if b.len() < PKT_HDR {
        return None;
    }
    let len = u32::from_le_bytes(b[21..25].try_into().ok()?) as usize;
    if b.len() < PKT_HDR + len {
        return None;
    }
    Some(Pkt {
        kind: b[0],
        rpc_id: u32::from_le_bytes(b[1..5].try_into().ok()?),
        thread: u32::from_le_bytes(b[5..9].try_into().ok()?),
        seq: u64::from_le_bytes(b[9..17].try_into().ok()?),
        frag: u16::from_le_bytes(b[17..19].try_into().ok()?),
        nfrags: u16::from_le_bytes(b[19..21].try_into().ok()?),
        payload: b[PKT_HDR..PKT_HDR + len].to_vec(),
    })
}

/// An endpoint: one UD QP plus buffer pool and polling machinery.
struct Endpoint {
    node: Arc<Node>,
    qp: Arc<flock_fabric::Qp>,
    mr: Arc<MemoryRegion>,
    send_mr: Arc<MemoryRegion>,
    send_off: AtomicU64,
    cfg: UdRpcConfig,
}

impl Endpoint {
    fn new(node: &Arc<Node>, cfg: &UdRpcConfig) -> Arc<Endpoint> {
        let cq = node.create_cq(cfg.recv_depth * 2);
        let qp = node.create_qp(Transport::Ud, &cq, &cq);
        qp.ready().expect("UD qp to RTS");
        let slot = 4096 + GRH_BYTES;
        let mr = node.register_mr(cfg.recv_depth * slot, Access::LOCAL);
        let send_mr = node.register_mr(64 * 4096, Access::LOCAL);
        let ep = Arc::new(Endpoint {
            node: Arc::clone(node),
            qp,
            mr,
            send_mr,
            send_off: AtomicU64::new(0),
            cfg: cfg.clone(),
        });
        for i in 0..cfg.recv_depth {
            ep.post_recv_slot(i);
        }
        ep
    }

    fn post_recv_slot(&self, slot: usize) {
        let sz = 4096 + GRH_BYTES;
        let _ = self.qp.post_recv(RecvWr {
            wr_id: WrId(slot as u64),
            local: Sge {
                lkey: self.mr.lkey(),
                addr: self.mr.addr() + (slot * sz) as u64,
                len: sz,
            },
        });
    }

    fn addr(&self) -> (NodeId, QpNum) {
        (self.node.id(), self.qp.qpn())
    }

    /// Stage `bytes` in the send region and post a UD send to `dst`.
    fn send_to(&self, dst: (NodeId, QpNum), bytes: &[u8]) {
        debug_assert!(bytes.len() <= 4096);
        // Rotating staging slots; 64 in flight is far beyond the window.
        let slot = (self.send_off.fetch_add(1, Ordering::Relaxed) % 64) as usize;
        self.send_mr
            .write(slot * 4096, bytes)
            .expect("staging write");
        let _ = self.qp.post_send(
            SendWr::send_to(
                WrId(0),
                Sge {
                    lkey: self.send_mr.lkey(),
                    addr: self.send_mr.addr() + (slot * 4096) as u64,
                    len: bytes.len(),
                },
                dst,
            )
            .unsignaled(),
        );
    }

    /// Poll one inbound packet: `(src, packet)`.
    fn poll(&self) -> Option<(Option<(NodeId, QpNum)>, Pkt)> {
        let c = self.qp.recv_cq().poll_one()?;
        let slot = c.wr_id.0 as usize;
        let sz = 4096 + GRH_BYTES;
        let data = self
            .mr
            .read_vec(slot * sz + GRH_BYTES, c.byte_len.saturating_sub(GRH_BYTES))
            .ok();
        self.post_recv_slot(slot);
        let pkt = data.and_then(|d| decode_pkt(&d))?;
        Some((c.src, pkt))
    }
}

/// Fragment `data` and send each piece.
fn send_fragmented(
    ep: &Endpoint,
    dst: (NodeId, QpNum),
    kind: u8,
    rpc_id: u32,
    thread: u32,
    seq: u64,
) -> impl Fn(&[u8]) + '_ {
    move |data: &[u8]| {
        let nfrags = data.chunks(FRAG_PAYLOAD).count().max(1) as u16;
        if data.is_empty() {
            ep.send_to(dst, &encode_pkt(kind, rpc_id, thread, seq, 0, 1, &[]));
            return;
        }
        for (i, chunk) in data.chunks(FRAG_PAYLOAD).enumerate() {
            ep.send_to(
                dst,
                &encode_pkt(kind, rpc_id, thread, seq, i as u16, nfrags, chunk),
            );
        }
    }
}

struct Reassembly {
    frags: Vec<Option<Vec<u8>>>,
    have: usize,
}

impl Reassembly {
    fn new(n: usize) -> Reassembly {
        Reassembly {
            frags: vec![None; n],
            have: 0,
        }
    }
    fn add(&mut self, idx: usize, data: Vec<u8>) -> Option<Vec<u8>> {
        if idx < self.frags.len() && self.frags[idx].is_none() {
            self.frags[idx] = Some(data);
            self.have += 1;
        }
        if self.have == self.frags.len() {
            Some(self.frags.drain(..).flatten().flatten().collect())
        } else {
            None
        }
    }
}

/// The UD RPC server.
pub struct UdRpcServer {
    ep: Arc<Endpoint>,
    stop: Arc<AtomicBool>,
    worker: Mutex<Option<TaskHandle>>,
    /// Requests processed (for CPU-overhead comparisons).
    pub requests: Arc<AtomicU64>,
}

impl UdRpcServer {
    /// The server's UD address, to give to clients out of band.
    pub fn addr(&self) -> (NodeId, QpNum) {
        self.ep.addr()
    }

    /// Start serving with `handler`.
    pub fn start(
        node: &Arc<Node>,
        cfg: UdRpcConfig,
        handler: impl Fn(u32, &[u8]) -> Vec<u8> + Send + Sync + 'static,
    ) -> UdRpcServer {
        let ep = Endpoint::new(node, &cfg);
        let stop = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));
        let worker = {
            let ep = Arc::clone(&ep);
            let stop = Arc::clone(&stop);
            let requests = Arc::clone(&requests);
            clock::spawn("ud-rpc-server", move || {
                // Reassembly buffers keyed by (src node, thread, seq).
                let mut partial: HashMap<(u32, u32, u64), Reassembly> = HashMap::new();
                // Response cache for retransmitted requests we already
                // answered (at-most-once execution).
                let mut answered: HashMap<(u32, u32), (u64, Vec<u8>)> = HashMap::new();
                while !stop.load(Ordering::Relaxed) {
                    let Some((src, pkt)) = ep.poll() else {
                        // Empty poll: yield the core (a short virtual
                        // sleep under VirtualLab, an OS yield otherwise).
                        clock::yield_now();
                        continue;
                    };
                    // Progressed: charge per-packet CPU cost so a busy
                    // virtual worker still advances time and yields
                    // the core (no-ops in threaded mode).
                    clock::charge(1_000);
                    clock::flush_charge();
                    let Some(src) = src else { continue };
                    if pkt.kind != KIND_REQ {
                        continue;
                    }
                    let ckey = (src.0 .0, pkt.thread);
                    if let Some((seq, resp)) = answered.get(&ckey) {
                        if *seq == pkt.seq {
                            // Duplicate (retransmitted) request.
                            send_fragmented(&ep, src, KIND_RESP, pkt.rpc_id, pkt.thread, pkt.seq)(
                                resp,
                            );
                            continue;
                        }
                    }
                    let key = (src.0 .0, pkt.thread, pkt.seq);
                    let nfrags = pkt.nfrags.max(1) as usize;
                    let entry = partial
                        .entry(key)
                        .or_insert_with(|| Reassembly::new(nfrags));
                    if let Some(req) = entry.add(pkt.frag as usize, pkt.payload) {
                        partial.remove(&key);
                        requests.fetch_add(1, Ordering::Relaxed);
                        let resp = handler(pkt.rpc_id, &req);
                        send_fragmented(&ep, src, KIND_RESP, pkt.rpc_id, pkt.thread, pkt.seq)(
                            &resp,
                        );
                        answered.insert(ckey, (pkt.seq, resp));
                    }
                }
            })
        };
        UdRpcServer {
            ep,
            stop,
            worker: Mutex::new(Some(worker)),
            requests,
        }
    }

    /// Stop the server thread.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.worker.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for UdRpcServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct ClientShared {
    inboxes: Mutex<HashMap<(u32, u64), Vec<u8>>>,
    cond: Condvar,
}

/// The UD RPC client: blocking calls with software retransmission.
pub struct UdRpcClient {
    ep: Arc<Endpoint>,
    server: (NodeId, QpNum),
    shared: Arc<ClientShared>,
    stop: Arc<AtomicBool>,
    worker: Mutex<Option<TaskHandle>>,
    next_thread: AtomicU64,
    /// Total retransmissions performed (observability for loss tests).
    pub retransmissions: Arc<AtomicU64>,
}

/// A per-thread sending context for [`UdRpcClient`].
pub struct UdThread<'a> {
    client: &'a UdRpcClient,
    thread_id: u32,
    seq: std::cell::Cell<u64>,
}

impl UdRpcClient {
    /// Connect a client on `node` to the server at `server`.
    pub fn connect(node: &Arc<Node>, server: (NodeId, QpNum), cfg: UdRpcConfig) -> UdRpcClient {
        let ep = Endpoint::new(node, &cfg);
        let shared = Arc::new(ClientShared {
            inboxes: Mutex::new(HashMap::new()),
            cond: Condvar::new(),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let worker = {
            let ep = Arc::clone(&ep);
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            clock::spawn("ud-rpc-client", move || {
                let mut partial: HashMap<(u32, u64), Reassembly> = HashMap::new();
                while !stop.load(Ordering::Relaxed) {
                    let Some((_src, pkt)) = ep.poll() else {
                        clock::yield_now();
                        continue;
                    };
                    clock::charge(1_000);
                    clock::flush_charge();
                    if pkt.kind != KIND_RESP {
                        continue;
                    }
                    let key = (pkt.thread, pkt.seq);
                    let entry = partial
                        .entry(key)
                        .or_insert_with(|| Reassembly::new(pkt.nfrags.max(1) as usize));
                    if let Some(resp) = entry.add(pkt.frag as usize, pkt.payload) {
                        partial.remove(&key);
                        shared.inboxes.lock().insert(key, resp);
                        shared.cond.notify_all();
                    }
                }
            })
        };
        UdRpcClient {
            ep,
            server,
            shared,
            stop,
            worker: Mutex::new(Some(worker)),
            next_thread: AtomicU64::new(0),
            retransmissions: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Register a sending thread.
    pub fn register_thread(&self) -> UdThread<'_> {
        UdThread {
            client: self,
            thread_id: self.next_thread.fetch_add(1, Ordering::Relaxed) as u32,
            seq: std::cell::Cell::new(1),
        }
    }

    /// Stop the client thread.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.worker.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for UdRpcClient {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl UdThread<'_> {
    /// Blocking RPC with retransmission on loss.
    pub fn call(&self, rpc_id: u32, payload: &[u8]) -> Result<Vec<u8>, &'static str> {
        let c = self.client;
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        let key = (self.thread_id, seq);
        let send = || {
            send_fragmented(&c.ep, c.server, KIND_REQ, rpc_id, self.thread_id, seq)(payload);
        };
        send();
        let deadline = clock::deadline(c.ep.cfg.timeout);
        let mut retries = 0;
        if clock::is_virtual() {
            // Poll in virtual time (a condvar wait would park the lab's
            // one runnable OS thread); the lock is dropped across each
            // sleep so the worker can deliver.
            let mut rto = clock::deadline(c.ep.cfg.rto);
            loop {
                if let Some(resp) = c.shared.inboxes.lock().remove(&key) {
                    return Ok(resp);
                }
                if clock::expired(deadline) {
                    return Err("rpc timed out");
                }
                if clock::expired(rto) {
                    retries += 1;
                    if retries > c.ep.cfg.max_retries {
                        return Err("too many retransmissions");
                    }
                    c.retransmissions.fetch_add(1, Ordering::Relaxed);
                    send();
                    rto = clock::deadline(c.ep.cfg.rto);
                }
                clock::sleep_ns(500);
            }
        }
        loop {
            let mut inboxes = c.shared.inboxes.lock();
            if let Some(resp) = inboxes.remove(&key) {
                return Ok(resp);
            }
            let timed_out = c
                .shared
                .cond
                .wait_for(&mut inboxes, c.ep.cfg.rto)
                .timed_out();
            if let Some(resp) = inboxes.remove(&key) {
                return Ok(resp);
            }
            drop(inboxes);
            if clock::expired(deadline) {
                return Err("rpc timed out");
            }
            if timed_out {
                retries += 1;
                if retries > c.ep.cfg.max_retries {
                    return Err("too many retransmissions");
                }
                c.retransmissions.fetch_add(1, Ordering::Relaxed);
                send();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_codec_roundtrip() {
        let payload = vec![7u8; 100];
        let b = encode_pkt(KIND_REQ, 42, 3, 99, 1, 4, &payload);
        let p = decode_pkt(&b).expect("decodes");
        assert_eq!(p.kind, KIND_REQ);
        assert_eq!(p.rpc_id, 42);
        assert_eq!(p.thread, 3);
        assert_eq!(p.seq, 99);
        assert_eq!(p.frag, 1);
        assert_eq!(p.nfrags, 4);
        assert_eq!(p.payload, payload);
    }

    #[test]
    fn packet_codec_rejects_truncation() {
        let b = encode_pkt(KIND_RESP, 1, 2, 3, 0, 1, &[1, 2, 3]);
        assert!(decode_pkt(&b[..b.len() - 1]).is_none());
        assert!(decode_pkt(&b[..PKT_HDR - 1]).is_none());
        assert!(decode_pkt(&[]).is_none());
    }

    #[test]
    fn empty_payload_packet() {
        let b = encode_pkt(KIND_REQ, 1, 0, 1, 0, 1, &[]);
        let p = decode_pkt(&b).unwrap();
        assert!(p.payload.is_empty());
    }

    #[test]
    fn reassembly_in_order() {
        let mut r = Reassembly::new(3);
        assert!(r.add(0, vec![1, 2]).is_none());
        assert!(r.add(1, vec![3]).is_none());
        assert_eq!(r.add(2, vec![4, 5]).unwrap(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn reassembly_out_of_order_and_duplicates() {
        let mut r = Reassembly::new(3);
        assert!(r.add(2, vec![5]).is_none());
        assert!(r.add(2, vec![9, 9]).is_none()); // duplicate fragment ignored
        assert!(r.add(0, vec![1]).is_none());
        assert!(r.add(7, vec![8]).is_none()); // out-of-range index ignored
        assert_eq!(r.add(1, vec![3]).unwrap(), vec![1, 3, 5]);
    }

    // Any fragment must fit a 4 KB UD datagram with its header.
    const _: () = assert!(FRAG_PAYLOAD + PKT_HDR <= 4096);

    #[test]
    fn fragment_sizing_matches_mtu() {
        let payload = vec![0u8; FRAG_PAYLOAD];
        let b = encode_pkt(KIND_REQ, 0, 0, 0, 0, 1, &payload);
        assert!(b.len() <= 4096);
    }
}
