#![warn(missing_docs)]

//! # flock-baselines
//!
//! The comparison systems of the Flock paper, implemented over the same
//! software fabric:
//!
//! * [`erpc`] — a UD-datagram RPC in the style of eRPC/FaSST: per-packet
//!   receive-buffer recycling, software fragmentation/reassembly (4 KB
//!   MTU), client-side retransmission timers, and session credit windows.
//!   This is the baseline of Figures 2(b), 6–8, 14–18.
//! * [`lockshare`] — FaRM-style RC QP sharing behind a lock: each thread
//!   encodes and posts its own single-request message while holding the
//!   QP lock (no coalescing). With one thread per QP it degenerates into
//!   the *no sharing* configuration. These are the baselines of Figure 9.
//!
//! The lock-sharing client speaks the Flock ring/message protocol, so it
//! connects to an unmodified [`flock_core::server::FlockServer`].

pub mod erpc;
pub mod lockshare;

/// Synchronization facade shared with `flock-core`: `std` normally,
/// `loom` under `cfg(loom)`. Concurrent code in this crate imports its
/// atomics/threads from here so it stays model-checkable (see DESIGN.md,
/// "Memory ordering and verification").
pub use flock_core::sync;

pub use erpc::{UdRpcClient, UdRpcConfig, UdRpcServer};
pub use lockshare::{LockShareConfig, LockSharedClient};
