//! End-to-end tests of the baseline systems.

use std::sync::Arc;

use flock_baselines::erpc::{UdRpcClient, UdRpcConfig, UdRpcServer};
use flock_baselines::lockshare::{LockShareConfig, LockSharedClient};
use flock_core::server::{FlockServer, ServerConfig};
use flock_core::FlockDomain;
use flock_fabric::{Fabric, FabricConfig};

#[test]
fn ud_rpc_roundtrip() {
    let fabric = Fabric::with_defaults();
    let snode = fabric.add_node("uds");
    let cnode = fabric.add_node("udc");
    let server = UdRpcServer::start(&snode, UdRpcConfig::default(), |rpc_id, req| {
        let mut out = vec![rpc_id as u8];
        out.extend_from_slice(req);
        out
    });
    let client = UdRpcClient::connect(&cnode, server.addr(), UdRpcConfig::default());
    let t = client.register_thread();
    for i in 0..50u8 {
        let resp = t.call(7, &[i]).unwrap();
        assert_eq!(resp, vec![7, i]);
    }
    assert_eq!(
        server.requests.load(std::sync::atomic::Ordering::Relaxed),
        50
    );
}

#[test]
fn ud_rpc_fragments_large_payloads() {
    let fabric = Fabric::with_defaults();
    let snode = fabric.add_node("uds2");
    let cnode = fabric.add_node("udc2");
    let server = UdRpcServer::start(&snode, UdRpcConfig::default(), |_, req| req.to_vec());
    let client = UdRpcClient::connect(&cnode, server.addr(), UdRpcConfig::default());
    let t = client.register_thread();
    // 20 KB payload: 5+ fragments each way over the 4 KB UD MTU.
    let payload: Vec<u8> = (0..20_000).map(|i| (i % 251) as u8).collect();
    let resp = t.call(1, &payload).unwrap();
    assert_eq!(resp, payload);
}

#[test]
fn ud_rpc_survives_packet_loss_via_retransmission() {
    let mut config = FabricConfig::default();
    config.ud_drop_probability = 0.2; // 20% loss
    let fabric = Fabric::new(config);
    let snode = fabric.add_node("uds3");
    let cnode = fabric.add_node("udc3");
    let server = UdRpcServer::start(&snode, UdRpcConfig::default(), |_, req| req.to_vec());
    let mut ccfg = UdRpcConfig::default();
    ccfg.rto = std::time::Duration::from_millis(5);
    let client = UdRpcClient::connect(&cnode, server.addr(), ccfg);
    let t = client.register_thread();
    for i in 0..40u8 {
        let resp = t.call(1, &[i, i, i]).unwrap();
        assert_eq!(resp, vec![i, i, i]);
    }
    // With 20% loss over 80+ packets, retransmissions must have occurred.
    assert!(
        client
            .retransmissions
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "loss injection did not exercise retransmission"
    );
}

#[test]
fn lockshare_client_talks_to_flock_server() {
    let domain = FlockDomain::with_defaults();
    let snode = domain.add_node("ls-srv");
    let server = FlockServer::listen(&domain, &snode, "ls", ServerConfig::default());
    server.reg_handler(1, |req| {
        let mut out = req.to_vec();
        out.reverse();
        out
    });
    let cnode = domain.add_node("ls-cli");
    let mut cfg = LockShareConfig::default();
    cfg.n_qps = 2;
    let client = Arc::new(LockSharedClient::connect(&domain, &cnode, "ls", cfg).unwrap());
    let mut joins = Vec::new();
    for tid in 0..4 {
        let t = client.register_thread();
        joins.push(std::thread::spawn(move || {
            for i in 0..50 {
                let msg = format!("m{tid}-{i}");
                let resp = t.call(1, msg.as_bytes()).unwrap();
                let mut expect = msg.into_bytes();
                expect.reverse();
                assert_eq!(resp, expect);
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    // No coalescing: one message per request (plus none extra).
    assert_eq!(client.messages_sent(), 4 * 50);
    server.shutdown(&domain);
}

#[test]
fn noshare_is_lockshare_with_one_thread_per_qp() {
    let domain = FlockDomain::with_defaults();
    let snode = domain.add_node("ns-srv");
    let server = FlockServer::listen(&domain, &snode, "ns", ServerConfig::default());
    server.reg_handler(1, |req| req.to_vec());
    let cnode = domain.add_node("ns-cli");
    let mut cfg = LockShareConfig::default();
    cfg.n_qps = 4; // 4 threads, 4 QPs: one each — the no-sharing config
    let client = Arc::new(LockSharedClient::connect(&domain, &cnode, "ns", cfg).unwrap());
    let mut joins = Vec::new();
    for _ in 0..4 {
        let t = client.register_thread();
        joins.push(std::thread::spawn(move || {
            for i in 0..30u32 {
                let resp = t.call(1, &i.to_le_bytes()).unwrap();
                assert_eq!(resp, i.to_le_bytes());
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    server.shutdown(&domain);
}
