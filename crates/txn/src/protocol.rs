//! Wire protocol of FlockTX: request/response types and a compact manual
//! binary codec (the messages travel as Flock RPC payloads).

/// RPC id of the execution phase.
pub const RPC_EXECUTE: u32 = 10;
/// RPC id of the logging phase (to replicas).
pub const RPC_LOG: u32 = 11;
/// RPC id of the commit phase.
pub const RPC_COMMIT: u32 = 12;
/// RPC id of the abort path.
pub const RPC_ABORT: u32 = 13;

/// Which server is primary for `key` among `n` servers.
pub fn key_partition(key: u64, n: usize) -> usize {
    let mut x = key;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((x ^ (x >> 31)) % n as u64) as usize
}

/// The two replicas of partition `p` among `n` servers (3-way
/// replication: primary plus two backups).
pub fn replicas_of(p: usize, n: usize) -> [usize; 2] {
    [(p + 1) % n, (p + 2) % n]
}

/// A FlockTX request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnRpc {
    /// Execution phase: read `reads`, lock-and-read `writes`.
    Execute {
        /// Transaction id (for diagnostics).
        txn_id: u64,
        /// Read-set keys owned by this server.
        reads: Vec<u64>,
        /// Write-set keys owned by this server (locked on success).
        writes: Vec<u64>,
    },
    /// Logging phase: apply updates to this replica's backup copy.
    Log {
        /// Transaction id.
        txn_id: u64,
        /// New values.
        writes: Vec<(u64, Vec<u8>)>,
    },
    /// Commit phase: install values, bump versions, unlock.
    Commit {
        /// Transaction id.
        txn_id: u64,
        /// New values.
        writes: Vec<(u64, Vec<u8>)>,
    },
    /// Abort: unlock the write set without changes.
    Abort {
        /// Transaction id.
        txn_id: u64,
        /// Keys to unlock.
        writes: Vec<u64>,
    },
}

/// Per-key result of the execution phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRead {
    /// The key.
    pub key: u64,
    /// Value at execution time (`None` if absent).
    pub value: Option<Vec<u8>>,
    /// Version/lock word at execution time.
    pub word: u64,
    /// Byte offset of the key's version word in the server's advertised
    /// memory region (for one-sided validation); `u64::MAX` if absent.
    pub slot: u64,
}

/// A FlockTX response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnResp {
    /// Execution result.
    Execute {
        /// Whether every write-set key was locked.
        ok: bool,
        /// Read-set snapshots (with validation slots).
        reads: Vec<KeyRead>,
        /// Write-set snapshots (locked; no validation needed).
        writes: Vec<KeyRead>,
    },
    /// Acknowledgement for log/commit/abort.
    Ack,
}

// ---- Codec -------------------------------------------------------------
//
// Layout: 1-byte tag, then fields in order; integers little-endian;
// vectors as u32 count + elements; byte strings as u32 len + bytes;
// Option<Vec<u8>> as 1-byte presence + bytes.

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}
fn put_keys(buf: &mut Vec<u8>, keys: &[u64]) {
    put_u32(buf, keys.len() as u32);
    for &k in keys {
        put_u64(buf, k);
    }
}
fn put_kvs(buf: &mut Vec<u8>, kvs: &[(u64, Vec<u8>)]) {
    put_u32(buf, kvs.len() as u32);
    for (k, v) in kvs {
        put_u64(buf, *k);
        put_bytes(buf, v);
    }
}

struct Reader<'a> {
    b: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.b.get(self.off)?;
        self.off += 1;
        Some(v)
    }
    fn u32(&mut self) -> Option<u32> {
        let v = u32::from_le_bytes(self.b.get(self.off..self.off + 4)?.try_into().ok()?);
        self.off += 4;
        Some(v)
    }
    fn u64(&mut self) -> Option<u64> {
        let v = u64::from_le_bytes(self.b.get(self.off..self.off + 8)?.try_into().ok()?);
        self.off += 8;
        Some(v)
    }
    fn bytes(&mut self) -> Option<Vec<u8>> {
        let n = self.u32()? as usize;
        let v = self.b.get(self.off..self.off + n)?.to_vec();
        self.off += n;
        Some(v)
    }
    fn keys(&mut self) -> Option<Vec<u64>> {
        let n = self.u32()? as usize;
        (0..n).map(|_| self.u64()).collect()
    }
    fn kvs(&mut self) -> Option<Vec<(u64, Vec<u8>)>> {
        let n = self.u32()? as usize;
        (0..n).map(|_| Some((self.u64()?, self.bytes()?))).collect()
    }
}

impl TxnRpc {
    /// The RPC id this request travels under.
    pub fn rpc_id(&self) -> u32 {
        match self {
            TxnRpc::Execute { .. } => RPC_EXECUTE,
            TxnRpc::Log { .. } => RPC_LOG,
            TxnRpc::Commit { .. } => RPC_COMMIT,
            TxnRpc::Abort { .. } => RPC_ABORT,
        }
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        match self {
            TxnRpc::Execute {
                txn_id,
                reads,
                writes,
            } => {
                buf.push(0);
                put_u64(&mut buf, *txn_id);
                put_keys(&mut buf, reads);
                put_keys(&mut buf, writes);
            }
            TxnRpc::Log { txn_id, writes } => {
                buf.push(1);
                put_u64(&mut buf, *txn_id);
                put_kvs(&mut buf, writes);
            }
            TxnRpc::Commit { txn_id, writes } => {
                buf.push(2);
                put_u64(&mut buf, *txn_id);
                put_kvs(&mut buf, writes);
            }
            TxnRpc::Abort { txn_id, writes } => {
                buf.push(3);
                put_u64(&mut buf, *txn_id);
                put_keys(&mut buf, writes);
            }
        }
        buf
    }

    /// Deserialize; `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<TxnRpc> {
        let mut r = Reader { b, off: 0 };
        let rpc = match r.u8()? {
            0 => TxnRpc::Execute {
                txn_id: r.u64()?,
                reads: r.keys()?,
                writes: r.keys()?,
            },
            1 => TxnRpc::Log {
                txn_id: r.u64()?,
                writes: r.kvs()?,
            },
            2 => TxnRpc::Commit {
                txn_id: r.u64()?,
                writes: r.kvs()?,
            },
            3 => TxnRpc::Abort {
                txn_id: r.u64()?,
                writes: r.keys()?,
            },
            _ => return None,
        };
        (r.off == b.len()).then_some(rpc)
    }
}

impl TxnResp {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        match self {
            TxnResp::Execute { ok, reads, writes } => {
                buf.push(0);
                buf.push(*ok as u8);
                for set in [reads, writes] {
                    put_u32(&mut buf, set.len() as u32);
                    for kr in set {
                        put_u64(&mut buf, kr.key);
                        match &kr.value {
                            Some(v) => {
                                buf.push(1);
                                put_bytes(&mut buf, v);
                            }
                            None => buf.push(0),
                        }
                        put_u64(&mut buf, kr.word);
                        put_u64(&mut buf, kr.slot);
                    }
                }
            }
            TxnResp::Ack => buf.push(1),
        }
        buf
    }

    /// Deserialize; `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<TxnResp> {
        let mut r = Reader { b, off: 0 };
        let resp = match r.u8()? {
            0 => {
                let ok = r.u8()? != 0;
                let mut sets = Vec::with_capacity(2);
                for _ in 0..2 {
                    let n = r.u32()? as usize;
                    let mut set = Vec::with_capacity(n);
                    for _ in 0..n {
                        let key = r.u64()?;
                        let value = match r.u8()? {
                            1 => Some(r.bytes()?),
                            _ => None,
                        };
                        set.push(KeyRead {
                            key,
                            value,
                            word: r.u64()?,
                            slot: r.u64()?,
                        });
                    }
                    sets.push(set);
                }
                let writes = sets.pop()?;
                let reads = sets.pop()?;
                TxnResp::Execute { ok, reads, writes }
            }
            1 => TxnResp::Ack,
            _ => return None,
        };
        (r.off == b.len()).then_some(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_is_total_and_balanced() {
        let n = 3;
        let mut counts = [0usize; 3];
        for key in 0..3000u64 {
            counts[key_partition(key, n)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn replicas_are_distinct_from_primary() {
        for n in [3, 5] {
            for p in 0..n {
                let [r1, r2] = replicas_of(p, n);
                assert_ne!(r1, p);
                assert_ne!(r2, p);
                assert_ne!(r1, r2);
            }
        }
    }

    #[test]
    fn rpc_roundtrip_all_variants() {
        let cases = vec![
            TxnRpc::Execute {
                txn_id: 7,
                reads: vec![1, 2, 3],
                writes: vec![9],
            },
            TxnRpc::Log {
                txn_id: 8,
                writes: vec![(1, b"aa".to_vec()), (2, vec![])],
            },
            TxnRpc::Commit {
                txn_id: 9,
                writes: vec![(5, b"value".to_vec())],
            },
            TxnRpc::Abort {
                txn_id: 10,
                writes: vec![5, 6],
            },
        ];
        for rpc in cases {
            let enc = rpc.encode();
            assert_eq!(TxnRpc::decode(&enc), Some(rpc));
        }
    }

    #[test]
    fn resp_roundtrip() {
        let resp = TxnResp::Execute {
            ok: true,
            reads: vec![
                KeyRead {
                    key: 1,
                    value: Some(b"v1".to_vec()),
                    word: 42,
                    slot: 16,
                },
                KeyRead {
                    key: 2,
                    value: None,
                    word: 0,
                    slot: u64::MAX,
                },
            ],
            writes: vec![KeyRead {
                key: 3,
                value: Some(vec![9; 100]),
                word: 7,
                slot: 24,
            }],
        };
        let enc = resp.encode();
        assert_eq!(TxnResp::decode(&enc), Some(resp));
        let ack = TxnResp::Ack;
        assert_eq!(TxnResp::decode(&ack.encode()), Some(TxnResp::Ack));
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert_eq!(TxnRpc::decode(&[]), None);
        assert_eq!(TxnRpc::decode(&[99]), None);
        assert_eq!(TxnRpc::decode(&[0, 1, 2]), None);
        // Trailing garbage.
        let mut enc = TxnRpc::Abort {
            txn_id: 1,
            writes: vec![],
        }
        .encode();
        enc.push(0);
        assert_eq!(TxnRpc::decode(&enc), None);
        assert_eq!(TxnResp::decode(&[7]), None);
    }
}
