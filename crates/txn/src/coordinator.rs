//! The FlockTX coordinator: drives a transaction through execution,
//! one-sided validation, logging, and commit (paper §8.5.1, Figure 13).

use std::collections::HashMap;
use std::sync::Arc;

use flock_core::client::FlThread;
use flock_core::ConnectionHandle;
use flock_core::{FlockError, Result};

use crate::protocol::{key_partition, replicas_of, KeyRead, TxnResp, TxnRpc};

/// Result of a transaction attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Committed; carries the values read during execution (read set and
    /// pre-images of the write set).
    Committed(HashMap<u64, Option<Vec<u8>>>),
    /// Aborted due to a lock conflict or failed validation; retry if
    /// desired.
    Aborted,
}

/// A per-application-thread transaction coordinator holding one
/// [`FlThread`] per server connection.
pub struct TxnClient {
    threads: Vec<FlThread>,
    txn_seq: std::cell::Cell<u64>,
}

impl TxnClient {
    /// Register this thread with every server handle (ordered by server
    /// index).
    pub fn new(handles: &[Arc<ConnectionHandle>]) -> TxnClient {
        TxnClient {
            threads: handles.iter().map(|h| h.register_thread()).collect(),
            txn_seq: std::cell::Cell::new(1),
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.threads.len()
    }

    /// Run one transaction: read `reads`, then atomically replace the
    /// values of `writes` with the output of `compute` (which receives the
    /// execution-time values of both sets).
    ///
    /// Returns [`TxnOutcome::Aborted`] on lock conflicts or validation
    /// failure; the caller retries.
    pub fn run<F>(&self, reads: &[u64], writes: &[u64], compute: F) -> Result<TxnOutcome>
    where
        F: FnOnce(&HashMap<u64, Option<Vec<u8>>>) -> HashMap<u64, Vec<u8>>,
    {
        let n = self.threads.len();
        let txn_id = self.txn_seq.get();
        self.txn_seq.set(txn_id + 1);

        // ---- Phase 1: Execution -------------------------------------
        // Group keys by primary and send all Execute RPCs before waiting
        // (the coordinator pipelines across servers).
        let mut groups: HashMap<usize, (Vec<u64>, Vec<u64>)> = HashMap::new();
        for &k in reads {
            groups.entry(key_partition(k, n)).or_default().0.push(k);
        }
        for &k in writes {
            groups.entry(key_partition(k, n)).or_default().1.push(k);
        }
        let mut pending: Vec<(usize, u64)> = Vec::with_capacity(groups.len());
        for (&server, (r, w)) in &groups {
            let rpc = TxnRpc::Execute {
                txn_id,
                reads: r.clone(),
                writes: w.clone(),
            };
            let seq = self.threads[server].send_rpc(rpc.rpc_id(), &rpc.encode())?;
            pending.push((server, seq));
        }
        let mut all_reads: Vec<(usize, KeyRead)> = Vec::new();
        let mut values: HashMap<u64, Option<Vec<u8>>> = HashMap::new();
        let mut locked_servers: Vec<usize> = Vec::new();
        let mut exec_ok = true;
        for (server, seq) in pending {
            let resp = self.threads[server].recv_res(seq)?;
            let resp = TxnResp::decode(&resp).ok_or(FlockError::CorruptMessage("txn response"))?;
            let TxnResp::Execute { ok, reads, writes } = resp else {
                return Err(FlockError::CorruptMessage("expected execute response"));
            };
            if !ok {
                exec_ok = false;
                continue;
            }
            if !groups[&server].1.is_empty() {
                locked_servers.push(server);
            }
            for kr in &reads {
                values.insert(kr.key, kr.value.clone());
            }
            for kr in &writes {
                values.insert(kr.key, kr.value.clone());
            }
            all_reads.extend(reads.into_iter().map(|kr| (server, kr)));
        }
        if !exec_ok {
            self.abort(txn_id, &groups, &locked_servers)?;
            return Ok(TxnOutcome::Aborted);
        }

        // ---- Phase 2: Validation (one-sided reads) -------------------
        // Verify every read-set version word via fl_read of the server's
        // advertised version table (region 0).
        for (server, kr) in &all_reads {
            if kr.slot == u64::MAX {
                continue; // key absent at execution: nothing to validate
            }
            let raw = self.threads[*server].read(0, kr.slot, 8)?;
            let word = u64::from_le_bytes(raw[..8].try_into().expect("8 bytes"));
            let locked = word & flock_kvstore::LOCK_BIT != 0;
            if locked || word != kr.word {
                self.abort(txn_id, &groups, &locked_servers)?;
                return Ok(TxnOutcome::Aborted);
            }
        }

        // ---- Compute -------------------------------------------------
        let new_values = compute(&values);
        debug_assert!(writes.iter().all(|k| new_values.contains_key(k)));

        // ---- Phase 3: Logging to replicas ----------------------------
        let mut log_pending: Vec<(usize, u64)> = Vec::new();
        for (&server, (_, w)) in &groups {
            if w.is_empty() {
                continue;
            }
            let writes_kv: Vec<(u64, Vec<u8>)> = w
                .iter()
                .map(|&k| (k, new_values.get(&k).cloned().unwrap_or_default()))
                .collect();
            for replica in replicas_of(server, n) {
                let rpc = TxnRpc::Log {
                    txn_id,
                    writes: writes_kv.clone(),
                };
                let seq = self.threads[replica].send_rpc(rpc.rpc_id(), &rpc.encode())?;
                log_pending.push((replica, seq));
            }
        }
        for (replica, seq) in log_pending {
            let resp = self.threads[replica].recv_res(seq)?;
            if TxnResp::decode(&resp) != Some(TxnResp::Ack) {
                return Err(FlockError::CorruptMessage("log ack"));
            }
        }

        // ---- Phase 4: Commit on primaries ----------------------------
        let mut commit_pending: Vec<(usize, u64)> = Vec::new();
        for (&server, (_, w)) in &groups {
            if w.is_empty() {
                continue;
            }
            let writes_kv: Vec<(u64, Vec<u8>)> = w
                .iter()
                .map(|&k| (k, new_values.get(&k).cloned().unwrap_or_default()))
                .collect();
            let rpc = TxnRpc::Commit {
                txn_id,
                writes: writes_kv,
            };
            let seq = self.threads[server].send_rpc(rpc.rpc_id(), &rpc.encode())?;
            commit_pending.push((server, seq));
        }
        for (server, seq) in commit_pending {
            let resp = self.threads[server].recv_res(seq)?;
            if TxnResp::decode(&resp) != Some(TxnResp::Ack) {
                return Err(FlockError::CorruptMessage("commit ack"));
            }
        }
        Ok(TxnOutcome::Committed(values))
    }

    /// Release locks on every server whose execute succeeded.
    fn abort(
        &self,
        txn_id: u64,
        groups: &HashMap<usize, (Vec<u64>, Vec<u64>)>,
        locked_servers: &[usize],
    ) -> Result<()> {
        let mut pending = Vec::new();
        for &server in locked_servers {
            let w = &groups[&server].1;
            let rpc = TxnRpc::Abort {
                txn_id,
                writes: w.clone(),
            };
            let seq = self.threads[server].send_rpc(rpc.rpc_id(), &rpc.encode())?;
            pending.push((server, seq));
        }
        for (server, seq) in pending {
            let _ = self.threads[server].recv_res(seq)?;
        }
        Ok(())
    }
}
