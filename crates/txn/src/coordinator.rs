//! The FlockTX coordinator: drives a transaction through execution,
//! one-sided validation, logging, and commit (paper §8.5.1, Figure 13).

use std::collections::HashMap;
use std::sync::Arc;

use flock_core::alock::{ALock, RemoteLockWord, DEFAULT_COHORT_CAP};
use flock_core::client::FlThread;
use flock_core::ConnectionHandle;
use flock_core::{FlockError, Result};

use crate::protocol::{key_partition, replicas_of, KeyRead, TxnResp, TxnRpc};
use crate::server::TXN_STRIPES;

/// The client-side half of the pessimistic commit path: one [`ALock`]
/// cohort per `(server, stripe)` over the server's exported stripe-lock
/// table (`crate::server::export_stripe_locks`).
///
/// Threads sharing one `StripeLocks` form one cohort: the first thread
/// CASes the remote word, subsequent waiters take local handoffs, so N
/// contending local transactions cost ~1 remote atomic instead of N —
/// the asymmetry the ALock exists for. Distinct processes must use
/// distinct `cookie`s so their releases cannot be confused.
pub struct StripeLocks {
    region_idx: usize,
    cookie: u64,
    locks: Vec<Vec<ALock>>, // [server][stripe]
}

impl StripeLocks {
    /// Build the cohort table for `n_servers` servers whose stripe-lock
    /// region is advertised at `region_idx`. `cookie` must be nonzero
    /// and unique per cohort.
    pub fn new(n_servers: usize, region_idx: usize, cookie: u64) -> Arc<StripeLocks> {
        assert!(cookie != 0, "cookie 0 is the unlocked word");
        let locks = (0..n_servers)
            .map(|_| {
                (0..TXN_STRIPES)
                    .map(|_| ALock::new(DEFAULT_COHORT_CAP))
                    .collect()
            })
            .collect();
        Arc::new(StripeLocks {
            region_idx,
            cookie,
            locks,
        })
    }

    /// The `(server, stripe)` pair covering `key`.
    fn locate(&self, key: u64, n_servers: usize) -> (usize, usize) {
        let server = key_partition(key, n_servers);
        let mut x = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 32;
        (server, (x % TXN_STRIPES as u64) as usize)
    }

    /// Total remote CAS acquisitions across all stripes.
    pub fn remote_acquires(&self) -> u64 {
        self.locks
            .iter()
            .flatten()
            .map(|l| l.remote_acquires())
            .sum()
    }

    /// Total local (in-cohort) handoffs across all stripes.
    pub fn local_handoffs(&self) -> u64 {
        self.locks
            .iter()
            .flatten()
            .map(|l| l.local_handoffs())
            .sum()
    }
}

/// Result of a transaction attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Committed; carries the values read during execution (read set and
    /// pre-images of the write set).
    Committed(HashMap<u64, Option<Vec<u8>>>),
    /// Aborted due to a lock conflict or failed validation; retry if
    /// desired.
    Aborted,
}

/// A per-application-thread transaction coordinator holding one
/// [`FlThread`] per server connection.
pub struct TxnClient {
    threads: Vec<FlThread>,
    txn_seq: std::cell::Cell<u64>,
}

impl TxnClient {
    /// Register this thread with every server handle (ordered by server
    /// index).
    pub fn new(handles: &[Arc<ConnectionHandle>]) -> TxnClient {
        TxnClient {
            threads: handles.iter().map(|h| h.register_thread()).collect(),
            txn_seq: std::cell::Cell::new(1),
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.threads.len()
    }

    /// Run one transaction: read `reads`, then atomically replace the
    /// values of `writes` with the output of `compute` (which receives the
    /// execution-time values of both sets).
    ///
    /// Returns [`TxnOutcome::Aborted`] on lock conflicts or validation
    /// failure; the caller retries.
    pub fn run<F>(&self, reads: &[u64], writes: &[u64], compute: F) -> Result<TxnOutcome>
    where
        F: FnOnce(&HashMap<u64, Option<Vec<u8>>>) -> HashMap<u64, Vec<u8>>,
    {
        let n = self.threads.len();
        let txn_id = self.txn_seq.get();
        self.txn_seq.set(txn_id + 1);

        // ---- Phase 1: Execution -------------------------------------
        // Group keys by primary and send all Execute RPCs before waiting
        // (the coordinator pipelines across servers).
        let mut groups: HashMap<usize, (Vec<u64>, Vec<u64>)> = HashMap::new();
        for &k in reads {
            groups.entry(key_partition(k, n)).or_default().0.push(k);
        }
        for &k in writes {
            groups.entry(key_partition(k, n)).or_default().1.push(k);
        }
        let mut pending: Vec<(usize, u64)> = Vec::with_capacity(groups.len());
        for (&server, (r, w)) in &groups {
            let rpc = TxnRpc::Execute {
                txn_id,
                reads: r.clone(),
                writes: w.clone(),
            };
            let seq = self.threads[server].send_rpc(rpc.rpc_id(), &rpc.encode())?;
            pending.push((server, seq));
        }
        let mut all_reads: Vec<(usize, KeyRead)> = Vec::new();
        let mut values: HashMap<u64, Option<Vec<u8>>> = HashMap::new();
        let mut locked_servers: Vec<usize> = Vec::new();
        let mut exec_ok = true;
        for (server, seq) in pending {
            let resp = self.threads[server].recv_res(seq)?;
            let resp = TxnResp::decode(&resp).ok_or(FlockError::CorruptMessage("txn response"))?;
            let TxnResp::Execute { ok, reads, writes } = resp else {
                return Err(FlockError::CorruptMessage("expected execute response"));
            };
            if !ok {
                exec_ok = false;
                continue;
            }
            if !groups[&server].1.is_empty() {
                locked_servers.push(server);
            }
            for kr in &reads {
                values.insert(kr.key, kr.value.clone());
            }
            for kr in &writes {
                values.insert(kr.key, kr.value.clone());
            }
            all_reads.extend(reads.into_iter().map(|kr| (server, kr)));
        }
        if !exec_ok {
            self.abort(txn_id, &groups, &locked_servers)?;
            return Ok(TxnOutcome::Aborted);
        }

        // ---- Phase 2: Validation (one-sided reads) -------------------
        // Verify every read-set version word via fl_read of the server's
        // advertised version table (region 0).
        for (server, kr) in &all_reads {
            if kr.slot == u64::MAX {
                continue; // key absent at execution: nothing to validate
            }
            let raw = self.threads[*server].read(0, kr.slot, 8)?;
            let word = u64::from_le_bytes(raw[..8].try_into().expect("8 bytes"));
            let locked = word & flock_kvstore::LOCK_BIT != 0;
            if locked || word != kr.word {
                self.abort(txn_id, &groups, &locked_servers)?;
                return Ok(TxnOutcome::Aborted);
            }
        }

        // ---- Compute -------------------------------------------------
        let new_values = compute(&values);
        debug_assert!(writes.iter().all(|k| new_values.contains_key(k)));

        // ---- Phase 3: Logging to replicas ----------------------------
        let mut log_pending: Vec<(usize, u64)> = Vec::new();
        for (&server, (_, w)) in &groups {
            if w.is_empty() {
                continue;
            }
            let writes_kv: Vec<(u64, Vec<u8>)> = w
                .iter()
                .map(|&k| (k, new_values.get(&k).cloned().unwrap_or_default()))
                .collect();
            for replica in replicas_of(server, n) {
                let rpc = TxnRpc::Log {
                    txn_id,
                    writes: writes_kv.clone(),
                };
                let seq = self.threads[replica].send_rpc(rpc.rpc_id(), &rpc.encode())?;
                log_pending.push((replica, seq));
            }
        }
        for (replica, seq) in log_pending {
            let resp = self.threads[replica].recv_res(seq)?;
            if TxnResp::decode(&resp) != Some(TxnResp::Ack) {
                return Err(FlockError::CorruptMessage("log ack"));
            }
        }

        // ---- Phase 4: Commit on primaries ----------------------------
        let mut commit_pending: Vec<(usize, u64)> = Vec::new();
        for (&server, (_, w)) in &groups {
            if w.is_empty() {
                continue;
            }
            let writes_kv: Vec<(u64, Vec<u8>)> = w
                .iter()
                .map(|&k| (k, new_values.get(&k).cloned().unwrap_or_default()))
                .collect();
            let rpc = TxnRpc::Commit {
                txn_id,
                writes: writes_kv,
            };
            let seq = self.threads[server].send_rpc(rpc.rpc_id(), &rpc.encode())?;
            commit_pending.push((server, seq));
        }
        for (server, seq) in commit_pending {
            let resp = self.threads[server].recv_res(seq)?;
            if TxnResp::decode(&resp) != Some(TxnResp::Ack) {
                return Err(FlockError::CorruptMessage("commit ack"));
            }
        }
        Ok(TxnOutcome::Committed(values))
    }

    /// [`TxnClient::run`] under pessimistic stripe locks: acquire the
    /// ALock of every `(server, stripe)` the transaction touches — in
    /// global sorted order, so concurrent locked transactions cannot
    /// deadlock — then run the ordinary four-phase protocol and release.
    ///
    /// When every contending client goes through the same stripe table,
    /// conflicting transactions serialize *before* execution: no
    /// execute-phase lock conflicts, no validation failures, zero
    /// aborts — at the price of one remote CAS per stripe, amortized
    /// across the local cohort by the ALock's handoffs. This is the
    /// alternative commit path for write-hot keys where OCC retry burn
    /// exceeds the lock verbs.
    pub fn run_locked<F>(
        &self,
        locks: &StripeLocks,
        reads: &[u64],
        writes: &[u64],
        compute: F,
    ) -> Result<TxnOutcome>
    where
        F: FnOnce(&HashMap<u64, Option<Vec<u8>>>) -> HashMap<u64, Vec<u8>>,
    {
        let n = self.threads.len();
        let mut stripes: Vec<(usize, usize)> = reads
            .iter()
            .chain(writes)
            .map(|&k| locks.locate(k, n))
            .collect();
        stripes.sort_unstable();
        stripes.dedup();

        let mut held = Vec::with_capacity(stripes.len());
        for &(server, stripe) in &stripes {
            let word = RemoteLockWord::new(
                &self.threads[server],
                locks.region_idx,
                (stripe * 8) as u64,
                locks.cookie,
            );
            match locks.locks[server][stripe].acquire(&word) {
                Ok(ticket) => held.push((server, stripe, ticket)),
                Err(e) => {
                    self.release_stripes(locks, held);
                    return Err(e);
                }
            }
        }
        let outcome = self.run(reads, writes, compute);
        self.release_stripes(locks, held);
        outcome
    }

    fn release_stripes(
        &self,
        locks: &StripeLocks,
        held: Vec<(usize, usize, flock_core::alock::Ticket)>,
    ) {
        // Reverse acquisition order; a failed remote release only loses
        // fairness (the word stays taken for this cohort), never safety.
        for (server, stripe, ticket) in held.into_iter().rev() {
            let word = RemoteLockWord::new(
                &self.threads[server],
                locks.region_idx,
                (stripe * 8) as u64,
                locks.cookie,
            );
            let _ = locks.locks[server][stripe].release(&word, ticket);
        }
    }

    /// Release locks on every server whose execute succeeded.
    fn abort(
        &self,
        txn_id: u64,
        groups: &HashMap<usize, (Vec<u64>, Vec<u64>)>,
        locked_servers: &[usize],
    ) -> Result<()> {
        let mut pending = Vec::new();
        for &server in locked_servers {
            let w = &groups[&server].1;
            let rpc = TxnRpc::Abort {
                txn_id,
                writes: w.clone(),
            };
            let seq = self.threads[server].send_rpc(rpc.rpc_id(), &rpc.encode())?;
            pending.push((server, seq));
        }
        for (server, seq) in pending {
            let _ = self.threads[server].recv_res(seq)?;
        }
        Ok(())
    }
}
