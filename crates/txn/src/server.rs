//! The FlockTX server: owns its primary partition, backup copies of two
//! other partitions, and the version-word table exposed for one-sided
//! validation.

use std::collections::HashMap;
use std::sync::Arc;

use flock_core::server::FlockServer;
use flock_fabric::MemoryRegion;
use flock_kvstore::{KvConfig, KvStore};
use parking_lot::Mutex;

use crate::protocol::{KeyRead, TxnResp, TxnRpc, RPC_ABORT, RPC_COMMIT, RPC_EXECUTE, RPC_LOG};

/// Number of words in the exported stripe-lock table.
pub const TXN_STRIPES: usize = 64;

/// Export name of the stripe-lock table.
pub const STRIPE_SEGMENT: &str = "txn-stripes";

/// Attach and export the pessimistic stripe-lock table: [`TXN_STRIPES`]
/// zero-initialized words clients CAS with
/// [`crate::coordinator::StripeLocks`] (the ALock commit path). Returns
/// the advertised region index clients address their verbs at.
pub fn export_stripe_locks(server: &FlockServer) -> flock_core::Result<usize> {
    let idx = server.attach_mreg(TXN_STRIPES * 8);
    server.export_segment(STRIPE_SEGMENT, idx, 8, TXN_STRIPES as u32, 0)?;
    Ok(idx)
}

/// Per-server FlockTX state.
///
/// The server's primary data lives in a local [`KvStore`]; every entry's
/// version word is mirrored into `version_mr` — the memory region the
/// server attached for clients' one-sided validation reads (paper Fig. 13
/// validation phase).
pub struct TxnServer {
    /// This server's index among all servers.
    pub server_id: usize,
    kv: KvStore,
    /// Backup copies of partitions this server replicates.
    backups: Mutex<HashMap<u64, Vec<u8>>>,
    version_mr: Arc<MemoryRegion>,
    slots: Mutex<SlotTable>,
}

struct SlotTable {
    by_key: HashMap<u64, u64>,
    next: u64,
    capacity: u64,
}

impl TxnServer {
    /// Create the server state. `version_mr` must be the region the
    /// enclosing [`FlockServer`] advertised at index 0.
    pub fn new(server_id: usize, version_mr: Arc<MemoryRegion>) -> Arc<TxnServer> {
        let capacity = (version_mr.len() / 8) as u64;
        Arc::new(TxnServer {
            server_id,
            kv: KvStore::new(KvConfig {
                partitions: 1,
                stripes: 64,
            }),
            backups: Mutex::new(HashMap::new()),
            version_mr,
            slots: Mutex::new(SlotTable {
                by_key: HashMap::new(),
                next: 0,
                capacity,
            }),
        })
    }

    /// Load a key directly (bootstrap; no locking, no replication).
    pub fn load(&self, key: u64, value: &[u8]) {
        self.kv.put(key, value);
        self.mirror_word(key);
    }

    /// Direct read (tests and verification).
    pub fn peek(&self, key: u64) -> Option<Vec<u8>> {
        self.kv.get(key).map(|(v, _)| v)
    }

    /// Direct read of a backup copy (tests and verification).
    pub fn peek_backup(&self, key: u64) -> Option<Vec<u8>> {
        self.backups.lock().get(&key).cloned()
    }

    /// The byte offset of `key`'s version word in the advertised region.
    pub fn slot_of(&self, key: u64) -> Option<u64> {
        self.slots.lock().by_key.get(&key).copied()
    }

    fn slot_for(&self, key: u64) -> u64 {
        let mut slots = self.slots.lock();
        if let Some(&s) = slots.by_key.get(&key) {
            return s;
        }
        assert!(
            slots.next < slots.capacity,
            "version table exhausted; size the region for the key count"
        );
        let s = slots.next * 8;
        slots.next += 1;
        slots.by_key.insert(key, s);
        s
    }

    /// Mirror the current version word of `key` into the validation MR.
    fn mirror_word(&self, key: u64) {
        if let Some(word) = self.kv.version_word(key) {
            let slot = self.slot_for(key);
            self.version_mr
                .write_u64(slot as usize, word)
                .expect("slot within region");
        }
    }

    /// Handle one FlockTX request (the registered RPC handler body).
    pub fn handle(&self, rpc: &TxnRpc) -> TxnResp {
        match rpc {
            TxnRpc::Execute { reads, writes, .. } => {
                // Lock the write set first; abort on any conflict.
                let mut locked = Vec::with_capacity(writes.len());
                let mut ok = true;
                for &k in writes {
                    if self.kv.try_lock(k) {
                        self.mirror_word(k);
                        locked.push(k);
                    } else {
                        ok = false;
                        break;
                    }
                }
                if !ok {
                    for &k in &locked {
                        self.kv.unlock(k);
                        self.mirror_word(k);
                    }
                    return TxnResp::Execute {
                        ok: false,
                        reads: Vec::new(),
                        writes: Vec::new(),
                    };
                }
                let read_set = reads.iter().map(|&k| self.key_read(k)).collect();
                let write_set = writes.iter().map(|&k| self.key_read(k)).collect();
                TxnResp::Execute {
                    ok: true,
                    reads: read_set,
                    writes: write_set,
                }
            }
            TxnRpc::Log { writes, .. } => {
                // Replicas apply to their backup copy; ordering follows
                // the primary (paper §8.5.1 phase 3).
                let mut backups = self.backups.lock();
                for (k, v) in writes {
                    backups.insert(*k, v.clone());
                }
                TxnResp::Ack
            }
            TxnRpc::Commit { writes, .. } => {
                for (k, v) in writes {
                    self.kv.update_and_unlock(*k, v);
                    self.mirror_word(*k);
                }
                TxnResp::Ack
            }
            TxnRpc::Abort { writes, .. } => {
                for &k in writes {
                    self.kv.unlock(k);
                    self.mirror_word(k);
                }
                TxnResp::Ack
            }
        }
    }

    fn key_read(&self, key: u64) -> KeyRead {
        match self.kv.get(key) {
            Some((value, word)) => KeyRead {
                key,
                value: Some(value),
                word,
                slot: self.slot_for(key),
            },
            None => KeyRead {
                key,
                value: None,
                word: 0,
                slot: u64::MAX,
            },
        }
    }

    /// Register the four FlockTX RPC handlers on a [`FlockServer`].
    pub fn register(self: &Arc<Self>, server: &FlockServer) {
        for id in [RPC_EXECUTE, RPC_LOG, RPC_COMMIT, RPC_ABORT] {
            let state = Arc::clone(self);
            server.reg_handler(id, move |req| {
                let Some(rpc) = TxnRpc::decode(req) else {
                    return TxnResp::Ack.encode(); // unreachable with our client
                };
                state.handle(&rpc).encode()
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_fabric::{Access, MrTable};

    fn server() -> Arc<TxnServer> {
        let t = MrTable::new();
        let mr = t.register(8 * 1024, Access::REMOTE_ALL);
        TxnServer::new(0, mr)
    }

    #[test]
    fn execute_locks_and_reads() {
        let s = server();
        s.load(1, b"a");
        s.load(2, b"b");
        let resp = s.handle(&TxnRpc::Execute {
            txn_id: 1,
            reads: vec![1],
            writes: vec![2],
        });
        let TxnResp::Execute { ok, reads, writes } = resp else {
            panic!("wrong variant")
        };
        assert!(ok);
        assert_eq!(reads[0].value.as_deref(), Some(b"a".as_slice()));
        assert_eq!(writes[0].value.as_deref(), Some(b"b".as_slice()));
        // Key 2 is now locked: a second execute conflicts.
        let resp = s.handle(&TxnRpc::Execute {
            txn_id: 2,
            reads: vec![],
            writes: vec![2],
        });
        assert!(matches!(resp, TxnResp::Execute { ok: false, .. }));
    }

    #[test]
    fn commit_installs_and_unlocks() {
        let s = server();
        s.load(5, b"old");
        let TxnResp::Execute { ok, .. } = s.handle(&TxnRpc::Execute {
            txn_id: 1,
            reads: vec![],
            writes: vec![5],
        }) else {
            panic!()
        };
        assert!(ok);
        s.handle(&TxnRpc::Commit {
            txn_id: 1,
            writes: vec![(5, b"new".to_vec())],
        });
        assert_eq!(s.peek(5).unwrap(), b"new");
        // Lock released: lockable again.
        let TxnResp::Execute { ok, .. } = s.handle(&TxnRpc::Execute {
            txn_id: 2,
            reads: vec![],
            writes: vec![5],
        }) else {
            panic!()
        };
        assert!(ok);
    }

    #[test]
    fn abort_unlocks_without_change() {
        let s = server();
        s.load(7, b"keep");
        s.handle(&TxnRpc::Execute {
            txn_id: 1,
            reads: vec![],
            writes: vec![7],
        });
        s.handle(&TxnRpc::Abort {
            txn_id: 1,
            writes: vec![7],
        });
        assert_eq!(s.peek(7).unwrap(), b"keep");
        let TxnResp::Execute { ok, .. } = s.handle(&TxnRpc::Execute {
            txn_id: 2,
            reads: vec![],
            writes: vec![7],
        }) else {
            panic!()
        };
        assert!(ok);
    }

    #[test]
    fn log_applies_to_backup() {
        let s = server();
        s.handle(&TxnRpc::Log {
            txn_id: 3,
            writes: vec![(9, b"backup".to_vec())],
        });
        assert_eq!(s.peek_backup(9).unwrap(), b"backup");
        assert!(s.peek(9).is_none(), "log must not touch the primary");
    }

    #[test]
    fn version_words_are_mirrored_for_validation() {
        let s = server();
        s.load(11, b"x");
        let slot = s.slot_of(11).unwrap() as usize;
        let word_before = s.version_mr.read_u64(slot).unwrap();
        assert_ne!(word_before, 0);
        // Locking flips the mirrored word (validation would fail).
        s.handle(&TxnRpc::Execute {
            txn_id: 1,
            reads: vec![],
            writes: vec![11],
        });
        let word_locked = s.version_mr.read_u64(slot).unwrap();
        assert_ne!(word_locked, word_before);
        // Commit bumps the version.
        s.handle(&TxnRpc::Commit {
            txn_id: 1,
            writes: vec![(11, b"y".to_vec())],
        });
        let word_after = s.version_mr.read_u64(slot).unwrap();
        assert_ne!(word_after, word_before);
        assert_eq!(word_after & flock_kvstore::LOCK_BIT, 0);
    }

    #[test]
    fn partial_lock_failure_releases_acquired_locks() {
        let s = server();
        s.load(1, b"a");
        s.load(2, b"b");
        // Lock 2 via txn A.
        s.handle(&TxnRpc::Execute {
            txn_id: 1,
            reads: vec![],
            writes: vec![2],
        });
        // Txn B wants 1 and 2: fails on 2, must release 1.
        let resp = s.handle(&TxnRpc::Execute {
            txn_id: 2,
            reads: vec![],
            writes: vec![1, 2],
        });
        assert!(matches!(resp, TxnResp::Execute { ok: false, .. }));
        // 1 must be lockable again.
        let TxnResp::Execute { ok, .. } = s.handle(&TxnRpc::Execute {
            txn_id: 3,
            reads: vec![],
            writes: vec![1],
        }) else {
            panic!()
        };
        assert!(ok);
    }
}
