//! A coroutine-style pipelined coordinator (paper §8.5.2: "we also use
//! coroutines to hide the network latency as FaSST").
//!
//! One OS thread drives `width` concurrent transactions as explicit state
//! machines, polling responses ([`FlThread::try_recv_res`]) and one-sided
//! validation reads ([`FlThread::try_mem`]) instead of blocking — so the
//! round trips of many transactions overlap on the same thread, exactly
//! like the paper's 19 submitting coroutines.

use std::collections::HashMap;

use flock_core::client::{FlThread, MemToken};
use flock_core::ConnectionHandle;
use flock_core::{FlockError, Result};
use flock_kvstore::LOCK_BIT;

use crate::protocol::{key_partition, replicas_of, KeyRead, TxnResp, TxnRpc};
use crate::workloads::TxnSpec;

/// Drives the workload: produces specs and computes write values.
pub trait TxnLogic {
    /// The next transaction to run.
    fn next(&mut self) -> TxnSpec;
    /// Compute the new write-set values from the execution-time values.
    fn compute(
        &mut self,
        spec: &TxnSpec,
        values: &HashMap<u64, Option<Vec<u8>>>,
    ) -> HashMap<u64, Vec<u8>>;
}

/// Outcome counters for a pipelined run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PipelineStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted attempts (retried automatically).
    pub aborts: u64,
}

enum Phase {
    Execute,
    Validate,
    Log,
    Commit,
    CommitDone,
    Aborting,
    AbortDone,
}

enum Wait {
    Rpc {
        server: usize,
        seq: u64,
    },
    Read {
        server: usize,
        token: MemToken,
        key: u64,
        expect: u64,
    },
}

struct Slot {
    spec: TxnSpec,
    phase: Phase,
    txn_id: u64,
    pending: Vec<Wait>,
    failed: bool,
    values: HashMap<u64, Option<Vec<u8>>>,
    reads: Vec<(usize, KeyRead)>,
    locked_servers: Vec<usize>,
}

/// The pipelined coordinator: one per OS thread.
pub struct PipelinedTxnClient {
    threads: Vec<FlThread>,
    next_txn_id: u64,
}

impl PipelinedTxnClient {
    /// Register this thread with every server handle (ordered by server
    /// index).
    pub fn new(handles: &[std::sync::Arc<ConnectionHandle>]) -> PipelinedTxnClient {
        PipelinedTxnClient {
            threads: handles.iter().map(|h| h.register_thread()).collect(),
            next_txn_id: 1,
        }
    }

    /// Run transactions `width` at a time until `target_commits` commit.
    pub fn run(
        &mut self,
        logic: &mut dyn TxnLogic,
        width: usize,
        target_commits: u64,
    ) -> Result<PipelineStats> {
        assert!(width >= 1);
        let n = self.threads.len();
        let mut stats = PipelineStats::default();
        let mut slots: Vec<Slot> = Vec::with_capacity(width);
        for _ in 0..width {
            slots.push(self.start(logic)?);
        }
        while stats.commits < target_commits {
            let mut progressed = false;
            for slot in slots.iter_mut() {
                if self.poll_slot(slot)? {
                    progressed = true;
                    self.advance(slot, logic, &mut stats, n)?;
                }
            }
            if !progressed {
                flock_sync::clock::yield_now();
            }
        }
        Ok(stats)
    }

    fn start(&mut self, logic: &mut dyn TxnLogic) -> Result<Slot> {
        let spec = logic.next();
        let txn_id = self.next_txn_id;
        self.next_txn_id += 1;
        let mut slot = Slot {
            spec,
            phase: Phase::Execute,
            txn_id,
            pending: Vec::new(),
            failed: false,
            values: HashMap::new(),
            reads: Vec::new(),
            locked_servers: Vec::new(),
        };
        self.send_execute(&mut slot)?;
        Ok(slot)
    }

    fn groups(&self, spec: &TxnSpec) -> HashMap<usize, (Vec<u64>, Vec<u64>)> {
        let n = self.threads.len();
        let mut groups: HashMap<usize, (Vec<u64>, Vec<u64>)> = HashMap::new();
        for &k in &spec.reads {
            groups.entry(key_partition(k, n)).or_default().0.push(k);
        }
        for &k in &spec.writes {
            groups.entry(key_partition(k, n)).or_default().1.push(k);
        }
        groups
    }

    fn send_execute(&self, slot: &mut Slot) -> Result<()> {
        slot.pending.clear();
        for (server, (reads, writes)) in self.groups(&slot.spec) {
            let rpc = TxnRpc::Execute {
                txn_id: slot.txn_id,
                reads,
                writes,
            };
            let seq = self.threads[server].send_rpc(rpc.rpc_id(), &rpc.encode())?;
            slot.pending.push(Wait::Rpc { server, seq });
        }
        Ok(())
    }

    /// Poll a slot's outstanding operations; returns true when the phase
    /// has fully completed.
    fn poll_slot(&self, slot: &mut Slot) -> Result<bool> {
        let mut still = Vec::new();
        let waits = std::mem::take(&mut slot.pending);
        for wait in waits {
            match wait {
                Wait::Rpc { server, seq } => match self.threads[server].try_recv_res(seq) {
                    Some(bytes) => {
                        self.absorb_rpc(slot, server, &bytes)?;
                    }
                    None => still.push(Wait::Rpc { server, seq }),
                },
                Wait::Read {
                    server,
                    token,
                    key,
                    expect,
                } => match self.threads[server].try_mem(token) {
                    Some(result) => {
                        let raw = result?;
                        let word = u64::from_le_bytes(
                            raw[..8]
                                .try_into()
                                .map_err(|_| FlockError::CorruptMessage("validation read size"))?,
                        );
                        if word != expect || word & LOCK_BIT != 0 {
                            slot.failed = true;
                        }
                    }
                    None => still.push(Wait::Read {
                        server,
                        token,
                        key,
                        expect,
                    }),
                },
            }
        }
        slot.pending = still;
        Ok(slot.pending.is_empty())
    }

    fn absorb_rpc(&self, slot: &mut Slot, server: usize, bytes: &[u8]) -> Result<()> {
        let resp = TxnResp::decode(bytes).ok_or(FlockError::CorruptMessage("txn response"))?;
        match (&slot.phase, resp) {
            (Phase::Execute, TxnResp::Execute { ok, reads, writes }) => {
                if !ok {
                    slot.failed = true;
                    return Ok(());
                }
                if !self.groups(&slot.spec)[&server].1.is_empty() {
                    slot.locked_servers.push(server);
                }
                for kr in &reads {
                    slot.values.insert(kr.key, kr.value.clone());
                }
                for kr in &writes {
                    slot.values.insert(kr.key, kr.value.clone());
                }
                slot.reads.extend(reads.into_iter().map(|kr| (server, kr)));
            }
            (_, TxnResp::Ack) => {}
            _ => return Err(FlockError::CorruptMessage("unexpected txn response")),
        }
        Ok(())
    }

    /// The current phase finished: move the state machine forward. On
    /// commit or abort, a fresh transaction is started in the slot.
    fn advance(
        &mut self,
        slot: &mut Slot,
        logic: &mut dyn TxnLogic,
        stats: &mut PipelineStats,
        n: usize,
    ) -> Result<()> {
        loop {
            match slot.phase {
                Phase::Execute => {
                    if slot.failed {
                        slot.phase = Phase::Aborting;
                        continue;
                    }
                    if slot.reads.is_empty() {
                        slot.phase = Phase::Log;
                        continue;
                    }
                    // One-sided validation: async reads of the version
                    // words recorded at execution.
                    slot.phase = Phase::Validate;
                    let reads = std::mem::take(&mut slot.reads);
                    for (server, kr) in &reads {
                        if kr.slot == u64::MAX {
                            continue;
                        }
                        let token = self.threads[*server].read_async(0, kr.slot, 8)?;
                        slot.pending.push(Wait::Read {
                            server: *server,
                            token,
                            key: kr.key,
                            expect: kr.word,
                        });
                    }
                    slot.reads = reads;
                    if slot.pending.is_empty() {
                        continue; // nothing to validate (all keys absent)
                    }
                    return Ok(());
                }
                Phase::Validate => {
                    slot.phase = if slot.failed {
                        Phase::Aborting
                    } else {
                        Phase::Log
                    };
                    continue;
                }
                Phase::Log => {
                    let new_values = logic.compute(&slot.spec, &slot.values);
                    let mut sent = false;
                    for (server, (_, writes)) in self.groups(&slot.spec) {
                        if writes.is_empty() {
                            continue;
                        }
                        let kvs: Vec<(u64, Vec<u8>)> = writes
                            .iter()
                            .map(|&k| (k, new_values.get(&k).cloned().unwrap_or_default()))
                            .collect();
                        for replica in replicas_of(server, n) {
                            let rpc = TxnRpc::Log {
                                txn_id: slot.txn_id,
                                writes: kvs.clone(),
                            };
                            let seq =
                                self.threads[replica].send_rpc(rpc.rpc_id(), &rpc.encode())?;
                            slot.pending.push(Wait::Rpc {
                                server: replica,
                                seq,
                            });
                            sent = true;
                        }
                    }
                    slot.values
                        .extend(new_values.into_iter().map(|(k, v)| (k, Some(v))));
                    if !sent {
                        // Read-only transaction: done.
                        self.finish(slot, logic, stats, true)?;
                        return Ok(());
                    }
                    slot.phase = Phase::Commit;
                    return Ok(());
                }
                Phase::Commit => {
                    // The log ACKs just drained; send commits if we have
                    // not yet, otherwise we're done.
                    let mut sent = false;
                    for (server, (_, writes)) in self.groups(&slot.spec) {
                        if writes.is_empty() {
                            continue;
                        }
                        let kvs: Vec<(u64, Vec<u8>)> = writes
                            .iter()
                            .map(|&k| {
                                (
                                    k,
                                    slot.values
                                        .get(&k)
                                        .and_then(|v| v.clone())
                                        .unwrap_or_default(),
                                )
                            })
                            .collect();
                        let rpc = TxnRpc::Commit {
                            txn_id: slot.txn_id,
                            writes: kvs,
                        };
                        let seq = self.threads[server].send_rpc(rpc.rpc_id(), &rpc.encode())?;
                        slot.pending.push(Wait::Rpc { server, seq });
                        sent = true;
                    }
                    debug_assert!(sent, "commit phase implies a write set");
                    if sent {
                        slot.phase = Phase::CommitDone;
                    }
                    return Ok(());
                }
                Phase::CommitDone => {
                    self.finish(slot, logic, stats, true)?;
                    return Ok(());
                }
                Phase::Aborting => {
                    if slot.locked_servers.is_empty() {
                        self.finish(slot, logic, stats, false)?;
                        return Ok(());
                    }
                    let locked = std::mem::take(&mut slot.locked_servers);
                    for server in locked {
                        let writes = self.groups(&slot.spec)[&server].1.clone();
                        let rpc = TxnRpc::Abort {
                            txn_id: slot.txn_id,
                            writes,
                        };
                        let seq = self.threads[server].send_rpc(rpc.rpc_id(), &rpc.encode())?;
                        slot.pending.push(Wait::Rpc { server, seq });
                    }
                    slot.phase = Phase::AbortDone;
                    return Ok(());
                }
                Phase::AbortDone => {
                    self.finish(slot, logic, stats, false)?;
                    return Ok(());
                }
            }
        }
    }

    fn finish(
        &mut self,
        slot: &mut Slot,
        logic: &mut dyn TxnLogic,
        stats: &mut PipelineStats,
        committed: bool,
    ) -> Result<()> {
        if committed {
            stats.commits += 1;
        } else {
            stats.aborts += 1;
        }
        *slot = self.start(logic)?;
        Ok(())
    }
}
