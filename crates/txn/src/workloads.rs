//! Benchmark workload generators: TATP (read-intensive telecom OLTP) and
//! Smallbank (write-intensive banking), as used in the paper's §8.5.2.

use flock_sim::SimRng;

/// Table tags packed into the high bits of a key.
const TABLE_SHIFT: u32 = 40;

/// A generated transaction: key sets plus a label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnSpec {
    /// Read-set keys.
    pub reads: Vec<u64>,
    /// Write-set keys.
    pub writes: Vec<u64>,
    /// Transaction type label (for per-type stats).
    pub kind: &'static str,
}

impl TxnSpec {
    /// Whether this transaction updates any key.
    pub fn is_write(&self) -> bool {
        !self.writes.is_empty()
    }
}

// ---- TATP ---------------------------------------------------------------

/// TATP table ids.
mod tatp_tables {
    pub const SUBSCRIBER: u64 = 1;
    pub const ACCESS_INFO: u64 = 2;
    pub const SPECIAL_FACILITY: u64 = 3;
    pub const CALL_FORWARDING: u64 = 4;
}

/// The TATP telecom benchmark: per the paper, 70% single-key reads, 10%
/// multi-key reads, and 20% updates.
#[derive(Debug, Clone)]
pub struct Tatp {
    /// Number of subscribers (paper: one million per server).
    pub subscribers: u64,
}

impl Tatp {
    /// Create a generator over `subscribers` subscribers.
    pub fn new(subscribers: u64) -> Tatp {
        assert!(subscribers > 0);
        Tatp { subscribers }
    }

    fn key(table: u64, id: u64) -> u64 {
        (table << TABLE_SHIFT) | id
    }

    /// Keys (with initial 32-byte rows) to preload.
    pub fn load_keys(&self) -> impl Iterator<Item = (u64, Vec<u8>)> + '_ {
        use tatp_tables::*;
        (0..self.subscribers).flat_map(|id| {
            [SUBSCRIBER, ACCESS_INFO, SPECIAL_FACILITY, CALL_FORWARDING]
                .into_iter()
                .map(move |t| (Self::key(t, id), vec![(t as u8) ^ (id as u8); 32]))
        })
    }

    /// Generate the next transaction.
    pub fn next(&self, rng: &mut SimRng) -> TxnSpec {
        use tatp_tables::*;
        let sub = rng.below(self.subscribers);
        let p = rng.f64();
        if p < 0.70 {
            // GET_SUBSCRIBER_DATA: one-key read.
            TxnSpec {
                reads: vec![Self::key(SUBSCRIBER, sub)],
                writes: vec![],
                kind: "get_subscriber_data",
            }
        } else if p < 0.80 {
            // GET_ACCESS_DATA / GET_NEW_DESTINATION: multi-key read.
            TxnSpec {
                reads: vec![Self::key(ACCESS_INFO, sub), Self::key(CALL_FORWARDING, sub)],
                writes: vec![],
                kind: "get_access_data",
            }
        } else if p < 0.90 {
            // UPDATE_SUBSCRIBER_DATA: subscriber bit + special facility.
            TxnSpec {
                reads: vec![],
                writes: vec![Self::key(SUBSCRIBER, sub), Self::key(SPECIAL_FACILITY, sub)],
                kind: "update_subscriber_data",
            }
        } else {
            // UPDATE_LOCATION: one-key update.
            TxnSpec {
                reads: vec![],
                writes: vec![Self::key(SUBSCRIBER, sub)],
                kind: "update_location",
            }
        }
    }
}

// ---- Smallbank ----------------------------------------------------------

/// Smallbank account sub-tables.
mod smallbank_tables {
    pub const SAVINGS: u64 = 8;
    pub const CHECKING: u64 = 9;
}

/// The Smallbank banking benchmark: 85% of transactions update keys; 4% of
/// accounts receive 90% of the traffic (paper §8.5.2).
#[derive(Debug, Clone)]
pub struct Smallbank {
    /// Number of accounts.
    pub accounts: u64,
    /// Fraction of accounts that are hot (paper: 4%).
    pub hot_fraction: f64,
    /// Probability a transaction targets hot accounts (paper: 90%).
    pub hot_probability: f64,
}

impl Smallbank {
    /// Create a generator with the paper's skew (4% hot / 90%).
    pub fn new(accounts: u64) -> Smallbank {
        assert!(accounts >= 25, "need enough accounts for the hot set");
        Smallbank {
            accounts,
            hot_fraction: 0.04,
            hot_probability: 0.90,
        }
    }

    /// The savings key of account `a`.
    pub fn savings(a: u64) -> u64 {
        (smallbank_tables::SAVINGS << TABLE_SHIFT) | a
    }

    /// The checking key of account `a`.
    pub fn checking(a: u64) -> u64 {
        (smallbank_tables::CHECKING << TABLE_SHIFT) | a
    }

    /// Keys (with initial 8-byte balances of 1000) to preload.
    pub fn load_keys(&self) -> impl Iterator<Item = (u64, Vec<u8>)> + '_ {
        (0..self.accounts).flat_map(|a| {
            [
                (Self::savings(a), 1000u64.to_le_bytes().to_vec()),
                (Self::checking(a), 1000u64.to_le_bytes().to_vec()),
            ]
        })
    }

    fn account(&self, rng: &mut SimRng) -> u64 {
        let hot = ((self.accounts as f64 * self.hot_fraction) as u64).max(1);
        if rng.chance(self.hot_probability) {
            rng.below(hot)
        } else {
            hot + rng.below(self.accounts - hot)
        }
    }

    fn two_accounts(&self, rng: &mut SimRng) -> (u64, u64) {
        let a = self.account(rng);
        loop {
            let b = self.account(rng);
            if b != a {
                return (a, b);
            }
        }
    }

    /// Generate the next transaction.
    pub fn next(&self, rng: &mut SimRng) -> TxnSpec {
        let p = rng.f64();
        if p < 0.15 {
            // BALANCE: read both balances (the only read-only type, 15%).
            let a = self.account(rng);
            TxnSpec {
                reads: vec![Self::savings(a), Self::checking(a)],
                writes: vec![],
                kind: "balance",
            }
        } else if p < 0.30 {
            // DEPOSIT_CHECKING.
            let a = self.account(rng);
            TxnSpec {
                reads: vec![],
                writes: vec![Self::checking(a)],
                kind: "deposit_checking",
            }
        } else if p < 0.45 {
            // TRANSACT_SAVINGS.
            let a = self.account(rng);
            TxnSpec {
                reads: vec![],
                writes: vec![Self::savings(a)],
                kind: "transact_savings",
            }
        } else if p < 0.70 {
            // WRITE_CHECK: read savings, update checking.
            let a = self.account(rng);
            TxnSpec {
                reads: vec![Self::savings(a)],
                writes: vec![Self::checking(a)],
                kind: "write_check",
            }
        } else if p < 0.85 {
            // AMALGAMATE: move everything from a's accounts to b.
            let (a, b) = self.two_accounts(rng);
            TxnSpec {
                reads: vec![],
                writes: vec![Self::savings(a), Self::checking(a), Self::checking(b)],
                kind: "amalgamate",
            }
        } else {
            // SEND_PAYMENT.
            let (a, b) = self.two_accounts(rng);
            TxnSpec {
                reads: vec![],
                writes: vec![Self::checking(a), Self::checking(b)],
                kind: "send_payment",
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tatp_mix_matches_paper() {
        let t = Tatp::new(10_000);
        let mut rng = SimRng::new(1);
        let n = 100_000;
        let mut single_read = 0;
        let mut multi_read = 0;
        let mut update = 0;
        for _ in 0..n {
            let spec = t.next(&mut rng);
            if spec.is_write() {
                update += 1;
            } else if spec.reads.len() == 1 {
                single_read += 1;
            } else {
                multi_read += 1;
            }
        }
        let f = |x: i32| x as f64 / n as f64;
        assert!((f(single_read) - 0.70).abs() < 0.01, "{single_read}");
        assert!((f(multi_read) - 0.10).abs() < 0.01, "{multi_read}");
        assert!((f(update) - 0.20).abs() < 0.01, "{update}");
    }

    #[test]
    fn tatp_load_covers_four_tables() {
        let t = Tatp::new(10);
        let keys: Vec<_> = t.load_keys().collect();
        assert_eq!(keys.len(), 40);
        let tables: std::collections::HashSet<u64> =
            keys.iter().map(|(k, _)| k >> TABLE_SHIFT).collect();
        assert_eq!(tables.len(), 4);
        assert!(keys.iter().all(|(_, v)| v.len() == 32));
    }

    #[test]
    fn smallbank_is_write_intensive() {
        let s = Smallbank::new(10_000);
        let mut rng = SimRng::new(2);
        let n = 100_000;
        let writes = (0..n).filter(|_| s.next(&mut rng).is_write()).count();
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.85).abs() < 0.01, "write fraction {frac}");
    }

    #[test]
    fn smallbank_hotspot_concentrates_access() {
        let s = Smallbank::new(10_000);
        let hot = (10_000f64 * s.hot_fraction) as u64;
        let mut rng = SimRng::new(3);
        let mut hot_hits = 0;
        let n = 50_000;
        for _ in 0..n {
            let spec = s.next(&mut rng);
            let key = *spec.reads.first().or(spec.writes.first()).unwrap();
            let account = key & ((1 << TABLE_SHIFT) - 1);
            if account < hot {
                hot_hits += 1;
            }
        }
        let frac = hot_hits as f64 / n as f64;
        assert!(frac > 0.85, "hot fraction {frac}");
    }

    #[test]
    fn smallbank_two_accounts_distinct() {
        let s = Smallbank::new(100);
        let mut rng = SimRng::new(4);
        for _ in 0..1000 {
            let (a, b) = s.two_accounts(&mut rng);
            assert_ne!(a, b);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let t = Tatp::new(1000);
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(t.next(&mut a), t.next(&mut b));
        }
    }
}
