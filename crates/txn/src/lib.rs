#![warn(missing_docs)]

//! # flock-txn
//!
//! **FlockTX** — the distributed transaction system of the Flock paper's
//! §8.5: optimistic concurrency control (OCC), two-phase commit (2PC), and
//! 3-way primary-backup replication over a partitioned key-value store
//! ([`flock_kvstore`]), communicating through Flock RPCs and one-sided
//! reads.
//!
//! A transaction (paper Figure 13) runs in four phases:
//!
//! 1. **Execution** — the coordinator RPCs each involved primary, which
//!    *locks* the write-set keys (abort on conflict) and returns values,
//!    version words, and the memory offsets of the read-set version words.
//! 2. **Validation** — the coordinator issues *one-sided RDMA reads*
//!    (`fl_read`) of the read-set version words; any change or lock causes
//!    an abort.
//! 3. **Logging** — write-set updates are RPC'd to each partition's two
//!    replicas, which ACK after applying to their backup copies.
//! 4. **Commit** — primaries install the new values, bump versions, and
//!    unlock.
//!
//! For write-hot keys where OCC retries burn more verbs than locks
//! would, [`TxnClient::run_locked`] wraps the same four phases in
//! pessimistic [`StripeLocks`] — per-stripe ALock cohorts over a remote
//! CAS word table ([`export_stripe_locks`]) — trading one amortized
//! remote atomic per stripe for zero aborts.
//!
//! [`workloads`] provides the paper's TATP (read-intensive) and Smallbank
//! (write-intensive) benchmark generators.

pub mod coordinator;
pub mod pipelined;
pub mod protocol;
pub mod server;
pub mod workloads;

pub use coordinator::{StripeLocks, TxnClient, TxnOutcome};
pub use pipelined::{PipelineStats, PipelinedTxnClient, TxnLogic};
pub use protocol::{key_partition, TxnResp, TxnRpc};
pub use server::{export_stripe_locks, TxnServer, STRIPE_SEGMENT, TXN_STRIPES};
pub use workloads::{Smallbank, Tatp, TxnSpec};
