//! End-to-end FlockTX over the full threaded Flock stack: three servers
//! with 3-way replication, OCC conflicts, one-sided validation, and the
//! Smallbank money-conservation invariant.

use std::collections::HashMap;
use std::sync::Arc;

use flock_core::client::HandleConfig;
use flock_core::server::{FlockServer, ServerConfig};
use flock_core::{ConnectionHandle, FlockDomain};
use flock_sim::SimRng;
use flock_txn::protocol::key_partition;
use flock_txn::{export_stripe_locks, Smallbank, StripeLocks, TxnClient, TxnOutcome, TxnServer};

const N_SERVERS: usize = 3;

struct Cluster {
    domain: FlockDomain,
    servers: Vec<FlockServer>,
    txn_servers: Vec<Arc<TxnServer>>,
    handles: Vec<Arc<ConnectionHandle>>,
    /// Advertised region index of the stripe-lock table (same on every
    /// server: attached second, after the version table).
    stripe_region: usize,
}

fn cluster() -> Cluster {
    let domain = FlockDomain::with_defaults();
    let mut servers = Vec::new();
    let mut txn_servers = Vec::new();
    let mut stripe_region = 0;
    for i in 0..N_SERVERS {
        let node = domain.add_node(&format!("txn-srv-{i}"));
        let server =
            FlockServer::listen(&domain, &node, &format!("txn{i}"), ServerConfig::default());
        let idx = server.attach_mreg(1 << 20); // 128k version slots
        let ts = TxnServer::new(i, server.mem_region(idx).unwrap());
        ts.register(&server);
        stripe_region = export_stripe_locks(&server).unwrap();
        servers.push(server);
        txn_servers.push(ts);
    }
    let client_node = domain.add_node("txn-client");
    let handles: Vec<Arc<ConnectionHandle>> = (0..N_SERVERS)
        .map(|i| {
            Arc::new(
                ConnectionHandle::connect(
                    &domain,
                    &client_node,
                    &format!("txn{i}"),
                    HandleConfig::default(),
                )
                .unwrap(),
            )
        })
        .collect();
    Cluster {
        domain,
        servers,
        txn_servers,
        handles,
        stripe_region,
    }
}

fn load(c: &Cluster, key: u64, value: &[u8]) {
    let p = key_partition(key, N_SERVERS);
    c.txn_servers[p].load(key, value);
}

fn teardown(c: Cluster) {
    for s in &c.servers {
        s.shutdown(&c.domain);
    }
}

#[test]
fn read_only_transaction_commits() {
    let c = cluster();
    load(&c, 100, b"alpha");
    load(&c, 200, b"beta");
    let client = TxnClient::new(&c.handles);
    let outcome = client.run(&[100, 200], &[], |_| HashMap::new()).unwrap();
    let TxnOutcome::Committed(values) = outcome else {
        panic!("read-only txn aborted");
    };
    assert_eq!(values[&100].as_deref(), Some(b"alpha".as_slice()));
    assert_eq!(values[&200].as_deref(), Some(b"beta".as_slice()));
    teardown(c);
}

#[test]
fn write_transaction_commits_and_replicates() {
    let c = cluster();
    load(&c, 42, &0u64.to_le_bytes());
    let client = TxnClient::new(&c.handles);
    let outcome = client
        .run(&[], &[42], |vals| {
            let old = u64::from_le_bytes(vals[&42].as_ref().unwrap()[..8].try_into().unwrap());
            HashMap::from([(42u64, (old + 5).to_le_bytes().to_vec())])
        })
        .unwrap();
    assert!(matches!(outcome, TxnOutcome::Committed(_)));
    // Primary has the new value.
    let p = key_partition(42, N_SERVERS);
    assert_eq!(
        c.txn_servers[p].peek(42).unwrap(),
        5u64.to_le_bytes().to_vec()
    );
    // Both replicas logged it.
    for r in flock_txn::protocol::replicas_of(p, N_SERVERS) {
        assert_eq!(
            c.txn_servers[r].peek_backup(42).unwrap(),
            5u64.to_le_bytes().to_vec(),
            "replica {r} missing the logged write"
        );
    }
    teardown(c);
}

#[test]
fn validation_detects_conflicting_update() {
    let c = cluster();
    load(&c, 77, b"v1");
    let client = TxnClient::new(&c.handles);
    // Execute a read, then mutate the key behind the txn's back before
    // validation would... we cannot pause mid-txn from here, so instead
    // exercise the conflict path via lock contention: lock 77 with a
    // first transaction's execute by using a second client mid-flight.
    // Simplest deterministic check: bump the version directly between two
    // transactions and confirm the second read sees the new version
    // (sanity), then verify lock conflicts abort.
    let p = key_partition(77, N_SERVERS);
    // Take the lock directly (as if another coordinator crashed mid-txn).
    let resp = c.txn_servers[p].handle(&flock_txn::TxnRpc::Execute {
        txn_id: 999,
        reads: vec![],
        writes: vec![77],
    });
    assert!(matches!(resp, flock_txn::TxnResp::Execute { ok: true, .. }));
    // Now a write transaction on 77 must abort (lock conflict).
    let outcome = client
        .run(&[], &[77], |_| HashMap::from([(77u64, b"v2".to_vec())]))
        .unwrap();
    assert_eq!(outcome, TxnOutcome::Aborted);
    // A read-only transaction on 77 must also abort: the version word is
    // locked, so one-sided validation fails.
    let outcome = client.run(&[77], &[], |_| HashMap::new()).unwrap();
    assert_eq!(outcome, TxnOutcome::Aborted);
    // Release the stray lock; both now commit.
    c.txn_servers[p].handle(&flock_txn::TxnRpc::Abort {
        txn_id: 999,
        writes: vec![77],
    });
    let outcome = client.run(&[77], &[], |_| HashMap::new()).unwrap();
    assert!(matches!(outcome, TxnOutcome::Committed(_)));
    teardown(c);
}

#[test]
fn multi_partition_transaction() {
    let c = cluster();
    // Find keys on three different partitions.
    let mut keys = [0u64; 3];
    for (p, key) in keys.iter_mut().enumerate() {
        *key = (0..).find(|&k| key_partition(k, N_SERVERS) == p).unwrap();
    }
    for &k in &keys {
        load(&c, k, &100u64.to_le_bytes());
    }
    let client = TxnClient::new(&c.handles);
    let outcome = client
        .run(&[], &keys, |vals| {
            keys.iter()
                .map(|&k| {
                    let old =
                        u64::from_le_bytes(vals[&k].as_ref().unwrap()[..8].try_into().unwrap());
                    (k, (old + 1).to_le_bytes().to_vec())
                })
                .collect()
        })
        .unwrap();
    assert!(matches!(outcome, TxnOutcome::Committed(_)));
    for &k in &keys {
        let p = key_partition(k, N_SERVERS);
        assert_eq!(
            c.txn_servers[p].peek(k).unwrap(),
            101u64.to_le_bytes().to_vec()
        );
    }
    teardown(c);
}

#[test]
fn smallbank_conserves_money_under_concurrency() {
    let c = cluster();
    let bank = Smallbank::new(50);
    for (k, v) in bank.load_keys() {
        load(&c, k, &v);
    }
    let initial_total: u64 = 50 * 2 * 1000;

    let handles = c.handles.clone();
    let mut joins = Vec::new();
    for t in 0..3u64 {
        let handles = handles.clone();
        let bank = bank.clone();
        joins.push(std::thread::spawn(move || {
            let client = TxnClient::new(&handles);
            let mut rng = SimRng::new(100 + t);
            let mut commits = 0u64;
            let mut aborts = 0u64;
            for _ in 0..120 {
                // Only money-conserving ops: send_payment between two
                // checking accounts.
                let spec = loop {
                    let s = bank.next(&mut rng);
                    if s.kind == "send_payment" {
                        break s;
                    }
                };
                let (from, to) = (spec.writes[0], spec.writes[1]);
                let outcome = client
                    .run(&[], &spec.writes, |vals| {
                        let f = u64::from_le_bytes(
                            vals[&from].as_ref().unwrap()[..8].try_into().unwrap(),
                        );
                        let tv = u64::from_le_bytes(
                            vals[&to].as_ref().unwrap()[..8].try_into().unwrap(),
                        );
                        let amount = 1.min(f);
                        HashMap::from([
                            (from, (f - amount).to_le_bytes().to_vec()),
                            (to, (tv + amount).to_le_bytes().to_vec()),
                        ])
                    })
                    .unwrap();
                match outcome {
                    TxnOutcome::Committed(_) => commits += 1,
                    TxnOutcome::Aborted => aborts += 1,
                }
            }
            (commits, aborts)
        }));
    }
    let mut commits = 0;
    let mut aborts = 0;
    for j in joins {
        let (cm, ab) = j.join().unwrap();
        commits += cm;
        aborts += ab;
    }
    assert!(commits > 0, "no transaction committed");
    // With a 4%-hot workload some aborts are expected but not required.
    let _ = aborts;

    // Money conservation: sum every checking+savings balance.
    let mut total = 0u64;
    for a in 0..50 {
        for key in [Smallbank::savings(a), Smallbank::checking(a)] {
            let p = key_partition(key, N_SERVERS);
            let v = c.txn_servers[p].peek(key).unwrap();
            total += u64::from_le_bytes(v[..8].try_into().unwrap());
        }
    }
    assert_eq!(total, initial_total, "money created or destroyed");
    teardown(c);
}

#[test]
fn concurrent_increments_are_serializable() {
    let c = cluster();
    load(&c, 1234, &0u64.to_le_bytes());
    let handles = c.handles.clone();
    let mut joins = Vec::new();
    let per_thread = 50;
    for _ in 0..4 {
        let handles = handles.clone();
        joins.push(std::thread::spawn(move || {
            let client = TxnClient::new(&handles);
            let mut committed = 0;
            while committed < per_thread {
                let outcome = client
                    .run(&[], &[1234], |vals| {
                        let old = u64::from_le_bytes(
                            vals[&1234].as_ref().unwrap()[..8].try_into().unwrap(),
                        );
                        HashMap::from([(1234u64, (old + 1).to_le_bytes().to_vec())])
                    })
                    .unwrap();
                if matches!(outcome, TxnOutcome::Committed(_)) {
                    committed += 1;
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let p = key_partition(1234, N_SERVERS);
    let v = c.txn_servers[p].peek(1234).unwrap();
    assert_eq!(
        u64::from_le_bytes(v[..8].try_into().unwrap()),
        4 * per_thread
    );
    teardown(c);
}

/// The pipelined (coroutine-style) coordinator: many concurrent
/// transactions from one OS thread, money conserved, throughput sane.
#[test]
fn pipelined_coordinator_overlaps_transactions() {
    use flock_txn::workloads::TxnSpec;
    use flock_txn::{PipelinedTxnClient, TxnLogic};

    let c = cluster();
    let bank = Smallbank::new(60);
    for (k, v) in bank.load_keys() {
        load(&c, k, &v);
    }
    let initial_total: u64 = 60 * 2 * 1000;

    struct Payments {
        bank: Smallbank,
        rng: SimRng,
    }
    impl TxnLogic for Payments {
        fn next(&mut self) -> TxnSpec {
            loop {
                let s = self.bank.next(&mut self.rng);
                if s.kind == "send_payment" || s.kind == "balance" {
                    return s;
                }
            }
        }
        fn compute(
            &mut self,
            spec: &TxnSpec,
            values: &HashMap<u64, Option<Vec<u8>>>,
        ) -> HashMap<u64, Vec<u8>> {
            if spec.writes.is_empty() {
                return HashMap::new();
            }
            let (from, to) = (spec.writes[0], spec.writes[1]);
            let f = u64::from_le_bytes(values[&from].as_ref().unwrap()[..8].try_into().unwrap());
            let t = u64::from_le_bytes(values[&to].as_ref().unwrap()[..8].try_into().unwrap());
            let amount = 5.min(f);
            HashMap::from([
                (from, (f - amount).to_le_bytes().to_vec()),
                (to, (t + amount).to_le_bytes().to_vec()),
            ])
        }
    }

    let mut client = PipelinedTxnClient::new(&c.handles);
    let mut logic = Payments {
        bank: bank.clone(),
        rng: SimRng::new(4242),
    };
    // 8 transactions in flight from ONE OS thread.
    let stats = client.run(&mut logic, 8, 200).unwrap();
    assert!(stats.commits >= 200);

    let mut total = 0u64;
    for a in 0..60 {
        for key in [Smallbank::savings(a), Smallbank::checking(a)] {
            let p = key_partition(key, N_SERVERS);
            let v = c.txn_servers[p].peek(key).unwrap();
            total += u64::from_le_bytes(v[..8].try_into().unwrap());
        }
    }
    assert_eq!(total, initial_total, "money conservation violated");
    teardown(c);
}

/// The pessimistic ALock commit path: conflicting increments on one
/// write-hot key serialize *before* execution, so not a single
/// transaction aborts (vs. the OCC path above, which retries), and the
/// cohort amortizes the remote CAS traffic through local handoffs.
#[test]
fn stripe_locked_transactions_never_abort() {
    let c = cluster();
    load(&c, 555, &0u64.to_le_bytes());
    let locks = StripeLocks::new(N_SERVERS, c.stripe_region, 0xF10C);
    let handles = c.handles.clone();
    let per_thread = 30u64;
    let mut joins = Vec::new();
    for _ in 0..4 {
        let handles = handles.clone();
        let locks = Arc::clone(&locks);
        joins.push(std::thread::spawn(move || {
            let client = TxnClient::new(&handles);
            let mut aborts = 0u64;
            for _ in 0..per_thread {
                let outcome = client
                    .run_locked(&locks, &[], &[555], |vals| {
                        let old = u64::from_le_bytes(
                            vals[&555].as_ref().unwrap()[..8].try_into().unwrap(),
                        );
                        HashMap::from([(555u64, (old + 1).to_le_bytes().to_vec())])
                    })
                    .unwrap();
                if outcome == TxnOutcome::Aborted {
                    aborts += 1;
                }
            }
            aborts
        }));
    }
    let aborts: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    assert_eq!(aborts, 0, "stripe locks must serialize ahead of OCC");
    let p = key_partition(555, N_SERVERS);
    let v = c.txn_servers[p].peek(555).unwrap();
    assert_eq!(u64::from_le_bytes(v[..8].try_into().unwrap()), 4 * per_thread);
    // Every acquisition went through the ALock; under contention the
    // cohort takes at least some local handoffs.
    assert_eq!(
        locks.remote_acquires() + locks.local_handoffs(),
        4 * per_thread
    );
    teardown(c);
}

/// Locked and multi-stripe transactions: cross-partition payments under
/// stripe locks conserve money with zero aborts.
#[test]
fn stripe_locked_multi_key_payments_conserve_money() {
    let c = cluster();
    for k in 0..8u64 {
        load(&c, k, &1000u64.to_le_bytes());
    }
    let locks = StripeLocks::new(N_SERVERS, c.stripe_region, 0xF10D);
    let handles = c.handles.clone();
    let mut joins = Vec::new();
    for t in 0..3u64 {
        let handles = handles.clone();
        let locks = Arc::clone(&locks);
        joins.push(std::thread::spawn(move || {
            let client = TxnClient::new(&handles);
            let mut rng = SimRng::new(900 + t);
            let mut aborts = 0u64;
            for _ in 0..40 {
                let from = rng.below(8);
                let to = (from + 1 + rng.below(7)) % 8;
                let outcome = client
                    .run_locked(&locks, &[], &[from, to], |vals| {
                        let f = u64::from_le_bytes(
                            vals[&from].as_ref().unwrap()[..8].try_into().unwrap(),
                        );
                        let tv = u64::from_le_bytes(
                            vals[&to].as_ref().unwrap()[..8].try_into().unwrap(),
                        );
                        let amount = 3.min(f);
                        HashMap::from([
                            (from, (f - amount).to_le_bytes().to_vec()),
                            (to, (tv + amount).to_le_bytes().to_vec()),
                        ])
                    })
                    .unwrap();
                if outcome == TxnOutcome::Aborted {
                    aborts += 1;
                }
            }
            aborts
        }));
    }
    let aborts: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    assert_eq!(aborts, 0, "sorted stripe acquisition must prevent aborts");
    let total: u64 = (0..8u64)
        .map(|k| {
            let p = key_partition(k, N_SERVERS);
            let v = c.txn_servers[p].peek(k).unwrap();
            u64::from_le_bytes(v[..8].try_into().unwrap())
        })
        .sum();
    assert_eq!(total, 8 * 1000, "money created or destroyed");
    teardown(c);
}

/// Async one-sided operations overlap on one thread (the machinery the
/// pipelined coordinator relies on).
#[test]
fn async_memops_overlap() {
    let c = cluster();
    // Use server 0's version region as plain remote memory.
    let handle = &c.handles[0];
    let t = handle.register_thread();
    // Launch 6 concurrent writes, then 6 concurrent reads, from one thread.
    let tokens: Vec<_> = (0..6u64)
        .map(|i| t.write_async(0, i * 64, &(i + 100).to_le_bytes()).unwrap())
        .collect();
    for tok in tokens {
        t.wait_mem(tok).unwrap();
    }
    let tokens: Vec<_> = (0..6u64)
        .map(|i| t.read_async(0, i * 64, 8).unwrap())
        .collect();
    for (i, tok) in tokens.into_iter().enumerate() {
        let v = t.wait_mem(tok).unwrap();
        assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), i as u64 + 100);
    }
    teardown(c);
}
