//! The gateway↔backend RPC contract.
//!
//! Edge sessions translate decoded wire frames into Flock RPCs against
//! the kv backend. Keys travel as 64-bit FNV-1a hashes — the kvstore is
//! keyed by `u64`, and the cache-tier contract tolerates hash aliasing
//! (two colliding keys share a slot, exactly like a sharded cache whose
//! slot index is a key hash).
//!
//! Payload layouts (little-endian):
//!
//! * `RPC_GET`:  request `key_hash: u64`; response `[TAG_MISS]` or
//!   `[TAG_HIT, value...]`.
//! * `RPC_SET`:  request `key_hash: u64, value...`; response
//!   `[TAG_HIT]`.
//! * `RPC_PING`: request empty; response `[TAG_HIT]`.

/// RPC id of the GET handler.
pub const RPC_GET: u32 = 16;
/// RPC id of the SET handler.
pub const RPC_SET: u32 = 17;
/// RPC id of the PING handler.
pub const RPC_PING: u32 = 18;

/// First response byte: the key was found / the op succeeded.
pub const TAG_HIT: u8 = 1;
/// First response byte: the key does not exist.
pub const TAG_MISS: u8 = 0;

/// FNV-1a over the key bytes — the stable key-space mapping both the
/// edge and any future warm-up loader must share.
pub fn key_hash(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(key_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(key_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(key_hash(b"foobar"), 0x85944171f73967e8);
    }
}
