//! `flock-gateway` — a multi-tenant protocol gateway over Flock.
//!
//! The classic proxy/cache-tier topology (ROADMAP item 1, RDMAvisor in
//! PAPERS.md): edge threads terminate client connections speaking
//! ordinary cache wire protocols, decode requests, and fan them into
//! `flock-kvstore` over a *small, shared, capped* set of Flock
//! connections — many client flows per QP, which is exactly the
//! regime Flock's coalescing and QP scheduling are built for.
//!
//! Layers:
//!
//! * [`proto`] — pluggable wire protocols (memcached-text, RESP, ping)
//!   with incremental, panic-free decoders.
//! * [`edge`] — per-client sessions pumping bytes → frames → backend
//!   RPCs → encoded responses.
//! * [`gateway`] — tenant-keyed shared backend connections and session
//!   lifecycle; the tenant id rides the Flock connect handshake so the
//!   backend's QP scheduler can enforce per-tenant AQP share caps.
//! * [`tenant`] — the edge-side session → tenant registry.
//! * [`backend`] — the kv RPC handlers (GET/SET/PING) registered on a
//!   `FlockServer`.
//! * [`mirror`] — the kv backend with a one-sided value mirror and the
//!   [`ReadMode`]-steered client (`Rpc` / `OneSided` / `Adaptive`).
//! * [`hydra`] — the same bridge over `flock-hydralist`, plus a leaf
//!   mirror a client traverses with raw READs.
//! * [`rpc`] — the gateway↔backend payload contract (FNV-hashed keys).

pub mod backend;
pub mod edge;
pub mod gateway;
pub mod hydra;
pub mod mirror;
pub mod proto;
pub mod rpc;
pub mod tenant;

pub use backend::register_kv_backend;
pub use flock_kvstore::{AdaptivePolicy, ReadMode};
pub use hydra::{
    register_hydra_backend, register_hydra_mirror_backend, HydraMirror, HydraReader, LeafView,
    HYDRA_SEGMENT,
};
pub use mirror::{register_kv_mirror_backend, KvReadClient, KvReadStats, KV_SEGMENT};
pub use edge::{EdgeError, EdgeSession};
pub use gateway::{Gateway, GatewayConfig};
pub use proto::{
    Decoded, MemcachedText, PingProto, ProtoError, Request, Resp, Response, WireProtocol,
};
pub use rpc::key_hash;
pub use tenant::{SessionId, TenantRegistry};
