//! The hydralist backend bridge and its one-sided leaf mirror.
//!
//! [`register_hydra_backend`] puts a [`flock_hydralist::HydraList`]
//! behind the same GET/SET/PING RPC contract [`crate::register_kv_backend`]
//! uses for the hash store, so every edge protocol (memcached, RESP,
//! ping) works unchanged over an ordered index — values are 8-byte LE
//! `u64`s, the paper's §8.6 workload shape.
//!
//! [`HydraMirror`] adds the one-sided leg: the data-layer leaf list is
//! mirrored into an exported segment, one seqlock slot per arena node,
//! encoded as
//!
//! ```text
//! [min_key: u64][next: u64, u64::MAX = NIL][count: u32][pad: u32][(key, value) × count]
//! ```
//!
//! Every insert republishes exactly the touched nodes (via
//! [`flock_hydralist::HydraList::insert_watch`]), new split node first
//! so a forward-walking reader never follows a `next` into an
//! unpublished slot. [`HydraReader`] is that reader: it chases the leaf
//! chain from node 0 with raw READs, validating each leaf's version
//! word, and stops as soon as the next leaf's `min_key` proves the key
//! cannot be further right — the same stale-search-layer tolerance the
//! server-side lookup has, minus the search layer.

use std::sync::Arc;

use flock_core::error::Result;
use flock_core::onesided::{OneSidedReader, ReadStats, SegmentWriter, SlotLayout};
use flock_core::server::FlockServer;
use flock_core::{ConnectionHandle, FlThread, FlockError};
use flock_hydralist::HydraList;

use crate::rpc::{RPC_GET, RPC_PING, RPC_SET, TAG_HIT, TAG_MISS};

/// Export name of the mirrored leaf segment.
pub const HYDRA_SEGMENT: &str = "hydra-leaves";

/// Encoded-leaf sentinel for "no next node".
const NEXT_NIL: u64 = u64::MAX;

/// Fixed part of the leaf encoding preceding the entries.
const LEAF_HEADER: usize = 24;

/// Bytes of one `(key, value)` entry.
const ENTRY_BYTES: usize = 16;

/// Register GET/SET/PING handlers backed by `hydra`. GET replies
/// `[TAG_HIT, value × 8]` or `[TAG_MISS]`; SET takes `[key × 8, value × 8]`.
pub fn register_hydra_backend(server: &FlockServer, hydra: Arc<HydraList>) {
    let h_get = Arc::clone(&hydra);
    server.reg_handler(RPC_GET, move |req| {
        let Some(key) = read_u64(req, 0) else {
            return vec![TAG_MISS];
        };
        match h_get.get(key) {
            Some(v) => {
                let mut out = Vec::with_capacity(9);
                out.push(TAG_HIT);
                out.extend_from_slice(&v.to_le_bytes());
                out
            }
            None => vec![TAG_MISS],
        }
    });
    server.reg_handler(RPC_SET, move |req| {
        let (Some(key), Some(value)) = (read_u64(req, 0), read_u64(req, 8)) else {
            return vec![TAG_MISS];
        };
        hydra.insert(key, value);
        vec![TAG_HIT]
    });
    server.reg_handler(RPC_PING, |_req| vec![TAG_HIT]);
}

/// Register the same contract with SETs routed through a leaf mirror:
/// the index plus an exported segment one-sided readers traverse.
/// `max_nodes` bounds the mirrored arena (inserts that grow past it
/// still land in the index; the overflow leaves just aren't mirrored
/// and readers fall back to RPC).
pub fn register_hydra_mirror_backend(
    server: &FlockServer,
    hydra: Arc<HydraList>,
    max_nodes: u32,
) -> Result<Arc<HydraMirror>> {
    let mirror = HydraMirror::new(server, Arc::clone(&hydra), max_nodes)?;
    let h_get = Arc::clone(&hydra);
    server.reg_handler(RPC_GET, move |req| {
        let Some(key) = read_u64(req, 0) else {
            return vec![TAG_MISS];
        };
        match h_get.get(key) {
            Some(v) => {
                let mut out = Vec::with_capacity(9);
                out.push(TAG_HIT);
                out.extend_from_slice(&v.to_le_bytes());
                out
            }
            None => vec![TAG_MISS],
        }
    });
    let set_mirror = Arc::clone(&mirror);
    server.reg_handler(RPC_SET, move |req| {
        let (Some(key), Some(value)) = (read_u64(req, 0), read_u64(req, 8)) else {
            return vec![TAG_MISS];
        };
        set_mirror.insert(key, value);
        vec![TAG_HIT]
    });
    server.reg_handler(RPC_PING, |_req| vec![TAG_HIT]);
    Ok(mirror)
}

fn read_u64(req: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(req.get(at..at + 8)?.try_into().ok()?))
}

/// A [`HydraList`] whose data-layer leaves are mirrored into an
/// exported one-sided segment, slot = arena index.
pub struct HydraMirror {
    hydra: Arc<HydraList>,
    writer: Arc<SegmentWriter>,
    max_nodes: u32,
}

impl HydraMirror {
    /// Attach and export a leaf segment sized for `max_nodes` nodes of
    /// `hydra`'s configured capacity. Capacities above ~29 overflow the
    /// per-slot READ budget and are rejected by the reader side.
    pub fn new(
        server: &FlockServer,
        hydra: Arc<HydraList>,
        max_nodes: u32,
    ) -> Result<Arc<HydraMirror>> {
        let val_cap = (LEAF_HEADER + ENTRY_BYTES * hydra.node_capacity()) as u32;
        let layout = SlotLayout::for_value_cap(val_cap);
        let idx = server.attach_mreg(layout.stride as usize * max_nodes as usize);
        let mr = server.mem_region(idx).expect("region just attached");
        let writer = Arc::new(SegmentWriter::new(mr, 0, layout, max_nodes)?);
        server.export_segment(HYDRA_SEGMENT, idx, layout.stride, max_nodes, val_cap as u64)?;
        let mirror = Arc::new(HydraMirror {
            hydra,
            writer,
            max_nodes,
        });
        mirror.publish_all()?;
        Ok(mirror)
    }

    /// The mirrored index.
    pub fn hydra(&self) -> &Arc<HydraList> {
        &self.hydra
    }

    /// Insert and republish every touched leaf, newest node first.
    pub fn insert(&self, key: u64, value: u64) -> Option<u64> {
        let mut touched = [0usize; 4];
        let mut n = 0;
        let prev = self.hydra.insert_watch(key, value, &mut |idx| {
            if n < touched.len() {
                touched[n] = idx;
                n += 1;
            }
        });
        // Callback order is (new, old) on a split: the new node goes
        // live before the shrunken old node that points at it, so a
        // forward-walking reader never follows next into a stale slot.
        for &idx in &touched[..n] {
            let _ = self.publish_node(idx);
        }
        prev
    }

    /// Republish every node currently in the arena (bulk-load path).
    pub fn publish_all(&self) -> Result<()> {
        for idx in 0..self.hydra.node_count() {
            self.publish_node(idx)?;
        }
        Ok(())
    }

    /// Encode and seqlock-publish one arena node. Nodes past the
    /// mirrored bound are silently skipped.
    pub fn publish_node(&self, idx: usize) -> Result<()> {
        if idx >= self.max_nodes as usize {
            return Ok(());
        }
        let Some((min_key, next, entries)) = self.hydra.export_node(idx) else {
            return Ok(());
        };
        let mut body = Vec::with_capacity(LEAF_HEADER + ENTRY_BYTES * entries.len());
        body.extend_from_slice(&min_key.to_le_bytes());
        let next_word = match next {
            Some(n) => n as u64,
            None => NEXT_NIL,
        };
        body.extend_from_slice(&next_word.to_le_bytes());
        body.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        for (k, v) in &entries {
            body.extend_from_slice(&k.to_le_bytes());
            body.extend_from_slice(&v.to_le_bytes());
        }
        self.writer.publish(idx as u32, &body)?;
        Ok(())
    }
}

/// A borrowed decode of one mirrored leaf.
pub struct LeafView<'a> {
    /// Smallest key the node can hold.
    pub min_key: u64,
    /// Arena index of the next leaf, if any.
    pub next: Option<u32>,
    entries: &'a [u8],
}

impl<'a> LeafView<'a> {
    /// Decode `body` (the slot's value bytes). `None` on any framing
    /// violation — truncated header, count overrunning the body, or an
    /// out-of-range next pointer.
    pub fn decode(body: &'a [u8]) -> Option<LeafView<'a>> {
        if body.len() < LEAF_HEADER {
            return None;
        }
        let min_key = u64::from_le_bytes(body[0..8].try_into().ok()?);
        let next_word = u64::from_le_bytes(body[8..16].try_into().ok()?);
        let count = u32::from_le_bytes(body[16..20].try_into().ok()?) as usize;
        let entries = body.get(LEAF_HEADER..LEAF_HEADER + count * ENTRY_BYTES)?;
        let next = if next_word == NEXT_NIL {
            None
        } else {
            Some(u32::try_from(next_word).ok()?)
        };
        Some(LeafView {
            min_key,
            next,
            entries,
        })
    }

    /// Number of entries in the leaf.
    pub fn count(&self) -> usize {
        self.entries.len() / ENTRY_BYTES
    }

    /// The `i`-th `(key, value)` entry.
    pub fn entry(&self, i: usize) -> (u64, u64) {
        let at = i * ENTRY_BYTES;
        let k = u64::from_le_bytes(self.entries[at..at + 8].try_into().expect("8 bytes"));
        let v = u64::from_le_bytes(self.entries[at + 8..at + 16].try_into().expect("8 bytes"));
        (k, v)
    }

    /// Binary-search the sorted run for `key`.
    pub fn find(&self, key: u64) -> Option<u64> {
        let (mut lo, mut hi) = (0usize, self.count());
        while lo < hi {
            let mid = (lo + hi) / 2;
            let (k, v) = self.entry(mid);
            match k.cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(v),
            }
        }
        None
    }
}

/// Client-side one-sided traversal of the mirrored leaf chain.
///
/// One instance per application thread; the landing buffer is reused so
/// the traversal allocates nothing in steady state.
pub struct HydraReader {
    reader: OneSidedReader,
    buf: Vec<u8>,
    max_hops: u32,
}

impl HydraReader {
    /// Fetch the [`HYDRA_SEGMENT`] lease and build a reader over it.
    pub fn new(handle: &ConnectionHandle) -> Result<HydraReader> {
        let mut leases = handle.fetch_exports(Some(HYDRA_SEGMENT))?;
        let lease = leases
            .pop()
            .ok_or(FlockError::RemoteOpFailed("hydra segment not exported"))?;
        let reader = OneSidedReader::new(lease)?.with_max_retries(64);
        let buf = vec![0u8; reader.layout().stride as usize];
        Ok(HydraReader {
            reader,
            buf,
            max_hops: 256,
        })
    }

    /// One-sided reader counters (verbs, retries, failures).
    pub fn stats(&self) -> ReadStats {
        self.reader.stats()
    }

    /// Look up `key` by chasing the leaf chain from node 0.
    /// `Ok(None)` is an authoritative miss; errors (unpublished slot,
    /// retry exhaustion, chain past the mirrored bound) mean the mirror
    /// cannot answer and the caller should fall back to RPC.
    pub fn get(&mut self, t: &FlThread, key: u64) -> Result<Option<u64>> {
        let mut slot = 0u32;
        for _ in 0..self.max_hops {
            let v = self.reader.read_slot(t, slot, &mut self.buf)?;
            let body = &self.buf[SlotLayout::HEADER..SlotLayout::HEADER + v.len];
            let leaf =
                LeafView::decode(body).ok_or(FlockError::RemoteOpFailed("unpublished leaf"))?;
            if leaf.min_key > key {
                // The previous leaf was the rightmost candidate.
                return Ok(None);
            }
            if let Some(value) = leaf.find(key) {
                return Ok(Some(value));
            }
            match leaf.next {
                None => return Ok(None),
                Some(n) if n < self.reader.slots() => slot = n,
                Some(_) => return Err(FlockError::RemoteOpFailed("leaf beyond mirror")),
            }
        }
        Err(FlockError::RemoteOpFailed("leaf chain too long"))
    }
}
