//! The edge-side tenant registry: which tenant does a session act for?
//!
//! Real deployments derive the tenant from authentication (listener
//! port, TLS SNI, SASL user). Here the acceptor supplies it when a
//! session opens; the registry is the single source of truth mapping
//! live sessions to tenants, and the gateway keys its shared backend
//! connections off it.

use std::collections::BTreeMap;

use parking_lot::RwLock;

/// Identifies one edge session for its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

/// Session → tenant map. Sessions register at accept time and
/// unregister when their connection closes; ids are never reused (a
/// monotone counter), so a stale id can never alias a new session.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    next: u64,
    sessions: BTreeMap<SessionId, u32>,
}

impl TenantRegistry {
    /// Register a new session for `tenant`, returning its id.
    pub fn open(&self, tenant: u32) -> SessionId {
        let mut inner = self.inner.write();
        let id = SessionId(inner.next);
        inner.next += 1;
        inner.sessions.insert(id, tenant);
        id
    }

    /// Remove a session; returns its tenant if it was registered.
    pub fn close(&self, session: SessionId) -> Option<u32> {
        self.inner.write().sessions.remove(&session)
    }

    /// The tenant a live session acts for.
    pub fn tenant_of(&self, session: SessionId) -> Option<u32> {
        self.inner.read().sessions.get(&session).copied()
    }

    /// Live session count for `tenant`.
    pub fn sessions_of(&self, tenant: u32) -> usize {
        self.inner
            .read()
            .sessions
            .values()
            .filter(|&&t| t == tenant)
            .count()
    }

    /// Total live sessions.
    pub fn len(&self) -> usize {
        self.inner.read().sessions.len()
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.inner.read().sessions.is_empty()
    }

    /// Distinct tenants with at least one live session, ascending.
    pub fn tenants(&self) -> Vec<u32> {
        let inner = self.inner.read();
        let mut out: Vec<u32> = inner.sessions.values().copied().collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_register_and_ids_never_reuse() {
        let reg = TenantRegistry::default();
        let a = reg.open(1);
        let b = reg.open(2);
        let c = reg.open(1);
        assert_ne!(a, b);
        assert_eq!(reg.tenant_of(a), Some(1));
        assert_eq!(reg.sessions_of(1), 2);
        assert_eq!(reg.tenants(), vec![1, 2]);
        assert_eq!(reg.close(a), Some(1));
        assert_eq!(reg.close(a), None, "double close is inert");
        assert_eq!(reg.tenant_of(a), None);
        let d = reg.open(3);
        assert!(d.0 > c.0, "ids are monotone, never recycled");
        assert_eq!(reg.len(), 3);
        assert!(!reg.is_empty());
    }
}
