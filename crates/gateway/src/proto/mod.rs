//! Pluggable wire protocols for the gateway's edge.
//!
//! An edge session owns one [`WireProtocol`] implementation and feeds it
//! raw bytes as they arrive from the client socket. Decoding is
//! *incremental*: [`WireProtocol::decode`] looks at the buffered prefix
//! and either yields one complete frame (plus how many bytes it
//! consumed), asks for more bytes, or rejects the stream as malformed.
//!
//! Decoder contract (enforced by the proptest battery in
//! `tests/proto_props.rs`):
//!
//! * **Never panics** on arbitrary input — no indexing, no `unwrap`,
//!   no integer overflow on attacker-controlled lengths.
//! * **Never over-reads** — the reported `consumed` is at most the
//!   buffered length, and a frame is only reported once every one of
//!   its bytes is buffered.
//! * **Bounded buffering** — inputs that cannot possibly become a valid
//!   frame (oversized keys/values/lines) fail fast with
//!   [`ProtoError`] instead of forcing the edge to buffer forever.
//! * **Deterministic** — the same bytes always decode to the same
//!   frames regardless of how they were chunked across `decode` calls.

pub mod memcached;
pub mod ping;
pub mod resp;

pub use memcached::MemcachedText;
pub use ping::PingProto;
pub use resp::Resp;

/// Maximum key length accepted by any gateway protocol (memcached's
/// classic 250-byte limit).
pub const MAX_KEY_LEN: usize = 250;

/// Maximum value length accepted by any gateway protocol. Bounded well
/// below the Flock ring capacity so one SET always fits in a request
/// message.
pub const MAX_VALUE_LEN: usize = 8 * 1024;

/// Maximum length of a protocol text line (command + key + integers).
pub const MAX_LINE_LEN: usize = 512;

/// Append the decimal representation of `n` without allocating. The
/// encoders run inside the edge pump (a hot path the `hot-alloc` lint
/// walks), where a per-response `to_string` would churn the allocator.
pub(crate) fn push_decimal(out: &mut Vec<u8>, n: usize) {
    let mut buf = [0u8; 20]; // enough for u64::MAX
    let mut i = buf.len();
    let mut n = n;
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.extend_from_slice(&buf[i..]);
}

/// One decoded request frame, borrowing from the session's receive
/// buffer (the decoder never copies key/value bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request<'a> {
    /// Read a key.
    Get {
        /// The key bytes.
        key: &'a [u8],
    },
    /// Write a key.
    Set {
        /// The key bytes.
        key: &'a [u8],
        /// The value bytes.
        value: &'a [u8],
    },
    /// Liveness probe.
    Ping,
}

/// Outcome of one incremental decode attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded<'a> {
    /// A complete frame occupying the first `consumed` buffered bytes.
    Frame {
        /// The decoded request.
        req: Request<'a>,
        /// Bytes of the buffer this frame consumed (`<= buf.len()`).
        consumed: usize,
    },
    /// The buffered prefix is a valid but incomplete frame.
    NeedMore,
}

/// Why a byte stream was rejected. The edge reports the error to the
/// client and drops the session — a malformed stream has no recoverable
/// framing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// The bytes violate the protocol grammar.
    Malformed(&'static str),
    /// A key exceeded [`MAX_KEY_LEN`].
    KeyTooLong,
    /// A value exceeded [`MAX_VALUE_LEN`].
    ValueTooLong,
    /// A text line exceeded [`MAX_LINE_LEN`] without terminating.
    LineTooLong,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Malformed(why) => write!(f, "malformed request: {why}"),
            ProtoError::KeyTooLong => write!(f, "key exceeds {MAX_KEY_LEN} bytes"),
            ProtoError::ValueTooLong => write!(f, "value exceeds {MAX_VALUE_LEN} bytes"),
            ProtoError::LineTooLong => write!(f, "line exceeds {MAX_LINE_LEN} bytes"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// One response frame, borrowing the backend's reply bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response<'a> {
    /// GET result: the echoed key and the value, if the key exists.
    Value {
        /// The key the client asked for (memcached echoes it back).
        key: &'a [u8],
        /// The stored value, or `None` on a miss.
        value: Option<&'a [u8]>,
    },
    /// SET acknowledged.
    Stored,
    /// PING acknowledged.
    Pong,
    /// Protocol-level error report.
    Error(&'static str),
}

/// A wire protocol the gateway can speak on its edge.
pub trait WireProtocol: Send + Sync {
    /// Short protocol name (metrics, logs, bench output).
    fn name(&self) -> &'static str;

    /// Try to decode one frame from the buffered prefix `buf`.
    fn decode<'a>(&self, buf: &'a [u8]) -> Result<Decoded<'a>, ProtoError>;

    /// Encode a request (the client half — tests and load generators).
    fn encode_request(&self, req: &Request<'_>, out: &mut Vec<u8>);

    /// Encode a response frame into `out` (appends; never clears).
    fn encode_response(&self, resp: &Response<'_>, out: &mut Vec<u8>);
}

/// Find the first CRLF in `buf`, returning the index of the `\r`.
/// Enforces [`MAX_LINE_LEN`]: a longer prefix with no terminator is a
/// [`ProtoError::LineTooLong`], not an invitation to buffer forever.
pub(crate) fn find_crlf(buf: &[u8]) -> Result<Option<usize>, ProtoError> {
    let window = &buf[..buf.len().min(MAX_LINE_LEN + 2)];
    match window.windows(2).position(|w| w == b"\r\n") {
        Some(i) if i <= MAX_LINE_LEN => Ok(Some(i)),
        Some(_) => Err(ProtoError::LineTooLong),
        None if buf.len() > MAX_LINE_LEN => Err(ProtoError::LineTooLong),
        None => Ok(None),
    }
}

/// Parse an ASCII decimal `usize` with an overflow guard (wire bytes
/// must never panic the decoder).
pub(crate) fn parse_usize(tok: &[u8]) -> Result<usize, ProtoError> {
    if tok.is_empty() || tok.len() > 10 {
        return Err(ProtoError::Malformed("bad integer"));
    }
    let mut n: usize = 0;
    for &b in tok {
        if !b.is_ascii_digit() {
            return Err(ProtoError::Malformed("bad integer"));
        }
        n = n * 10 + (b - b'0') as usize;
    }
    Ok(n)
}

/// Validate a key token: non-empty, bounded, no whitespace or control
/// bytes (they would corrupt text-protocol framing on the way back).
pub(crate) fn check_key(key: &[u8]) -> Result<(), ProtoError> {
    if key.is_empty() {
        return Err(ProtoError::Malformed("empty key"));
    }
    if key.len() > MAX_KEY_LEN {
        return Err(ProtoError::KeyTooLong);
    }
    if key.iter().any(|&b| b <= b' ' || b == 0x7f) {
        return Err(ProtoError::Malformed("key contains whitespace or control bytes"));
    }
    Ok(())
}
