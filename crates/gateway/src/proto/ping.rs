//! Trivial line-based ping protocol (harness tests and liveness
//! checks): the only valid frame is `PING\r\n`, answered `PONG\r\n`.
//! GET/SET cannot be encoded; encoding them debug-asserts and emits an
//! error frame in release builds.

use super::{find_crlf, Decoded, ProtoError, Request, Response, WireProtocol};

/// The ping protocol handler (stateless).
#[derive(Debug, Default, Clone, Copy)]
pub struct PingProto;

impl WireProtocol for PingProto {
    fn name(&self) -> &'static str {
        "ping"
    }

    fn decode<'a>(&self, buf: &'a [u8]) -> Result<Decoded<'a>, ProtoError> {
        let Some(eol) = find_crlf(buf)? else {
            // Reject early once the prefix can no longer be `PING`.
            if !b"PING".starts_with(&buf[..buf.len().min(4)]) {
                return Err(ProtoError::Malformed("expected PING"));
            }
            return Ok(Decoded::NeedMore);
        };
        if &buf[..eol] != b"PING" {
            return Err(ProtoError::Malformed("expected PING"));
        }
        Ok(Decoded::Frame {
            req: Request::Ping,
            consumed: eol + 2,
        })
    }

    fn encode_request(&self, req: &Request<'_>, out: &mut Vec<u8>) {
        debug_assert!(matches!(req, Request::Ping), "ping protocol is ping-only");
        out.extend_from_slice(b"PING\r\n");
    }

    fn encode_response(&self, resp: &Response<'_>, out: &mut Vec<u8>) {
        match resp {
            Response::Pong => out.extend_from_slice(b"PONG\r\n"),
            Response::Error(why) => {
                out.extend_from_slice(b"ERROR ");
                out.extend_from_slice(why.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            // GET/SET responses cannot occur on a ping-only session.
            _ => out.extend_from_slice(b"ERROR unsupported\r\n"),
        }
    }
}
