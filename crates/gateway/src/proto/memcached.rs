//! Memcached-text-style protocol handler.
//!
//! The subset the gateway speaks (enough for GET/SET/PING workloads;
//! the grammar follows the classic memcached ASCII protocol):
//!
//! ```text
//! get <key>\r\n
//! set <key> <flags> <exptime> <len>\r\n<len bytes>\r\n
//! ping\r\n
//! ```
//!
//! Responses:
//!
//! ```text
//! VALUE <key> 0 <len>\r\n<len bytes>\r\nEND\r\n   (hit)
//! END\r\n                                          (miss)
//! STORED\r\n
//! PONG\r\n
//! CLIENT_ERROR <reason>\r\n
//! ```
//!
//! `<flags>` and `<exptime>` are parsed and ignored (the kvstore keeps
//! neither); responses always echo flags `0`.

use super::{
    check_key, find_crlf, parse_usize, Decoded, ProtoError, Request, Response, WireProtocol,
    MAX_VALUE_LEN,
};

/// The memcached-text protocol handler (stateless; one instance can be
/// shared by every session speaking this protocol).
#[derive(Debug, Default, Clone, Copy)]
pub struct MemcachedText;

impl WireProtocol for MemcachedText {
    fn name(&self) -> &'static str {
        "memcached-text"
    }

    fn decode<'a>(&self, buf: &'a [u8]) -> Result<Decoded<'a>, ProtoError> {
        let Some(eol) = find_crlf(buf)? else {
            return Ok(Decoded::NeedMore);
        };
        let line = &buf[..eol];
        let mut tokens = line.split(|&b| b == b' ').filter(|t| !t.is_empty());
        let cmd = tokens.next().ok_or(ProtoError::Malformed("empty command line"))?;
        match cmd {
            b"get" => {
                let key = tokens.next().ok_or(ProtoError::Malformed("get without key"))?;
                if tokens.next().is_some() {
                    // Multi-key get is real memcached; the gateway keeps
                    // one-key frames so a frame maps to one backend RPC.
                    return Err(ProtoError::Malformed("multi-key get unsupported"));
                }
                check_key(key)?;
                Ok(Decoded::Frame {
                    req: Request::Get { key },
                    consumed: eol + 2,
                })
            }
            b"set" => {
                let key = tokens.next().ok_or(ProtoError::Malformed("set without key"))?;
                check_key(key)?;
                let _flags = parse_usize(tokens.next().ok_or(ProtoError::Malformed("set without flags"))?)?;
                let _exptime =
                    parse_usize(tokens.next().ok_or(ProtoError::Malformed("set without exptime"))?)?;
                let len = parse_usize(tokens.next().ok_or(ProtoError::Malformed("set without length"))?)?;
                if tokens.next().is_some() {
                    return Err(ProtoError::Malformed("trailing tokens after set length"));
                }
                if len > MAX_VALUE_LEN {
                    return Err(ProtoError::ValueTooLong);
                }
                // Data block: <len bytes>\r\n after the command line.
                let data_start = eol + 2;
                let frame_end = data_start
                    .checked_add(len)
                    .and_then(|e| e.checked_add(2))
                    .ok_or(ProtoError::Malformed("length overflow"))?;
                if buf.len() < frame_end {
                    return Ok(Decoded::NeedMore);
                }
                if &buf[data_start + len..frame_end] != b"\r\n" {
                    return Err(ProtoError::Malformed("data block not CRLF-terminated"));
                }
                Ok(Decoded::Frame {
                    req: Request::Set {
                        key,
                        value: &buf[data_start..data_start + len],
                    },
                    consumed: frame_end,
                })
            }
            b"ping" => {
                if tokens.next().is_some() {
                    return Err(ProtoError::Malformed("ping takes no arguments"));
                }
                Ok(Decoded::Frame {
                    req: Request::Ping,
                    consumed: eol + 2,
                })
            }
            _ => Err(ProtoError::Malformed("unknown command")),
        }
    }

    fn encode_request(&self, req: &Request<'_>, out: &mut Vec<u8>) {
        match req {
            Request::Get { key } => {
                out.extend_from_slice(b"get ");
                out.extend_from_slice(key);
                out.extend_from_slice(b"\r\n");
            }
            Request::Set { key, value } => {
                out.extend_from_slice(b"set ");
                out.extend_from_slice(key);
                out.extend_from_slice(b" 0 0 ");
                super::push_decimal(out, value.len());
                out.extend_from_slice(b"\r\n");
                out.extend_from_slice(value);
                out.extend_from_slice(b"\r\n");
            }
            Request::Ping => out.extend_from_slice(b"ping\r\n"),
        }
    }

    fn encode_response(&self, resp: &Response<'_>, out: &mut Vec<u8>) {
        match resp {
            Response::Value { key, value: Some(v) } => {
                out.extend_from_slice(b"VALUE ");
                out.extend_from_slice(key);
                out.extend_from_slice(b" 0 ");
                super::push_decimal(out, v.len());
                out.extend_from_slice(b"\r\n");
                out.extend_from_slice(v);
                out.extend_from_slice(b"\r\nEND\r\n");
            }
            Response::Value { value: None, .. } => out.extend_from_slice(b"END\r\n"),
            Response::Stored => out.extend_from_slice(b"STORED\r\n"),
            Response::Pong => out.extend_from_slice(b"PONG\r\n"),
            Response::Error(why) => {
                out.extend_from_slice(b"CLIENT_ERROR ");
                out.extend_from_slice(why.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
        }
    }
}
