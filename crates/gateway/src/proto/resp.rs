//! RESP-style (Redis serialization protocol) handler.
//!
//! Requests are RESP arrays of bulk strings:
//!
//! ```text
//! *2\r\n$3\r\nGET\r\n$<k>\r\n<key>\r\n
//! *3\r\n$3\r\nSET\r\n$<k>\r\n<key>\r\n$<v>\r\n<value>\r\n
//! *1\r\n$4\r\nPING\r\n
//! ```
//!
//! Responses: bulk string (`$<len>\r\n<value>\r\n`) or null bulk
//! (`$-1\r\n`) for GET, `+OK\r\n` for SET, `+PONG\r\n` for PING,
//! `-ERR <reason>\r\n` for errors. Command names are case-insensitive,
//! as in Redis.

use super::{
    check_key, find_crlf, parse_usize, Decoded, ProtoError, Request, Response, WireProtocol,
    MAX_VALUE_LEN,
};

/// The RESP protocol handler (stateless).
#[derive(Debug, Default, Clone, Copy)]
pub struct Resp;

/// One parsed bulk string: byte range within the buffer plus where the
/// next element starts.
struct Bulk {
    start: usize,
    len: usize,
    next: usize,
}

/// Parse `$<len>\r\n<len bytes>\r\n` at `at`. `Ok(None)` means the
/// buffered prefix is valid but incomplete.
fn parse_bulk(buf: &[u8], at: usize) -> Result<Option<Bulk>, ProtoError> {
    let rest = buf.get(at..).unwrap_or(&[]);
    if rest.is_empty() {
        return Ok(None);
    }
    if rest[0] != b'$' {
        return Err(ProtoError::Malformed("expected bulk string"));
    }
    let Some(eol) = find_crlf(&rest[1..])? else {
        return Ok(None);
    };
    let len = parse_usize(&rest[1..1 + eol])?;
    if len > MAX_VALUE_LEN {
        return Err(ProtoError::ValueTooLong);
    }
    let start = 1 + eol + 2;
    let end = start
        .checked_add(len)
        .and_then(|e| e.checked_add(2))
        .ok_or(ProtoError::Malformed("length overflow"))?;
    if rest.len() < end {
        return Ok(None);
    }
    if &rest[start + len..end] != b"\r\n" {
        return Err(ProtoError::Malformed("bulk string not CRLF-terminated"));
    }
    Ok(Some(Bulk {
        start: at + start,
        len,
        next: at + end,
    }))
}

fn eq_ignore_case(a: &[u8], b: &str) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.as_bytes())
            .all(|(x, y)| x.eq_ignore_ascii_case(y))
}

impl WireProtocol for Resp {
    fn name(&self) -> &'static str {
        "resp"
    }

    fn decode<'a>(&self, buf: &'a [u8]) -> Result<Decoded<'a>, ProtoError> {
        if buf.is_empty() {
            return Ok(Decoded::NeedMore);
        }
        if buf[0] != b'*' {
            return Err(ProtoError::Malformed("expected array header"));
        }
        let Some(eol) = find_crlf(&buf[1..])? else {
            return Ok(Decoded::NeedMore);
        };
        let n_elems = parse_usize(&buf[1..1 + eol])?;
        if n_elems == 0 || n_elems > 3 {
            return Err(ProtoError::Malformed("unsupported array length"));
        }
        let mut at = 1 + eol + 2;
        let mut elems: [Option<Bulk>; 3] = [None, None, None];
        for slot in elems.iter_mut().take(n_elems) {
            match parse_bulk(buf, at)? {
                Some(b) => {
                    at = b.next;
                    *slot = Some(b);
                }
                None => return Ok(Decoded::NeedMore),
            }
        }
        let arg = |i: usize| -> &'a [u8] {
            match &elems[i] {
                Some(b) => &buf[b.start..b.start + b.len],
                // Unreachable: every slot up to n_elems was filled above,
                // and commands index only within n_elems.
                None => &[],
            }
        };
        let cmd = arg(0);
        if eq_ignore_case(cmd, "GET") {
            if n_elems != 2 {
                return Err(ProtoError::Malformed("GET takes one key"));
            }
            let key = arg(1);
            check_key(key)?;
            Ok(Decoded::Frame {
                req: Request::Get { key },
                consumed: at,
            })
        } else if eq_ignore_case(cmd, "SET") {
            if n_elems != 3 {
                return Err(ProtoError::Malformed("SET takes key and value"));
            }
            let key = arg(1);
            check_key(key)?;
            Ok(Decoded::Frame {
                req: Request::Set {
                    key,
                    value: arg(2),
                },
                consumed: at,
            })
        } else if eq_ignore_case(cmd, "PING") {
            if n_elems != 1 {
                return Err(ProtoError::Malformed("PING takes no arguments"));
            }
            Ok(Decoded::Frame {
                req: Request::Ping,
                consumed: at,
            })
        } else {
            Err(ProtoError::Malformed("unknown command"))
        }
    }

    fn encode_request(&self, req: &Request<'_>, out: &mut Vec<u8>) {
        fn bulk(out: &mut Vec<u8>, bytes: &[u8]) {
            out.push(b'$');
            super::push_decimal(out, bytes.len());
            out.extend_from_slice(b"\r\n");
            out.extend_from_slice(bytes);
            out.extend_from_slice(b"\r\n");
        }
        match req {
            Request::Get { key } => {
                out.extend_from_slice(b"*2\r\n");
                bulk(out, b"GET");
                bulk(out, key);
            }
            Request::Set { key, value } => {
                out.extend_from_slice(b"*3\r\n");
                bulk(out, b"SET");
                bulk(out, key);
                bulk(out, value);
            }
            Request::Ping => {
                out.extend_from_slice(b"*1\r\n");
                bulk(out, b"PING");
            }
        }
    }

    fn encode_response(&self, resp: &Response<'_>, out: &mut Vec<u8>) {
        match resp {
            Response::Value { value: Some(v), .. } => {
                out.push(b'$');
                super::push_decimal(out, v.len());
                out.extend_from_slice(b"\r\n");
                out.extend_from_slice(v);
                out.extend_from_slice(b"\r\n");
            }
            Response::Value { value: None, .. } => out.extend_from_slice(b"$-1\r\n"),
            Response::Stored => out.extend_from_slice(b"+OK\r\n"),
            Response::Pong => out.extend_from_slice(b"+PONG\r\n"),
            Response::Error(why) => {
                out.extend_from_slice(b"-ERR ");
                out.extend_from_slice(why.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
        }
    }
}
