//! Edge sessions: the per-client decode/dispatch pump.
//!
//! One [`EdgeSession`] stands for one client socket. The owning edge
//! thread feeds it raw bytes as they arrive; [`EdgeSession::pump`]
//! decodes complete frames, dispatches each as a Flock RPC on the
//! tenant's shared backend connection, and appends the encoded
//! responses to the caller's output buffer.
//!
//! This is the gateway's hot path (a `cargo xtask lint` hot-alloc entry
//! point): the session reuses its receive buffer and SET-payload
//! scratch across calls, so steady-state pumping allocates only when a
//! buffer must grow past its high-water mark.

use std::sync::Arc;

use bytes::Bytes;
use flock_core::client::FlThread;
use flock_core::error::FlockError;

use crate::proto::{Decoded, ProtoError, Request, Response, WireProtocol};
use crate::rpc::{key_hash, RPC_GET, RPC_PING, RPC_SET, TAG_HIT};
use crate::tenant::SessionId;

/// Why a session died. Protocol errors are the client's fault (the
/// error frame is already encoded into the output buffer); RPC errors
/// mean the backend connection failed.
#[derive(Debug)]
pub enum EdgeError {
    /// The client sent bytes that violate its wire protocol.
    Proto(ProtoError),
    /// The backend RPC failed (connection tear-down, timeout).
    Rpc(FlockError),
}

impl std::fmt::Display for EdgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeError::Proto(e) => write!(f, "protocol error: {e}"),
            EdgeError::Rpc(e) => write!(f, "backend error: {e}"),
        }
    }
}

impl std::error::Error for EdgeError {}

/// One client session on the gateway edge.
pub struct EdgeSession {
    session: SessionId,
    tenant: u32,
    proto: Arc<dyn WireProtocol>,
    /// The session's lane into the tenant's shared Flock connection.
    thread: FlThread,
    /// Undecoded input, compacted after every pump.
    inbuf: Vec<u8>,
    /// SET-payload assembly scratch (key hash + value), reused.
    scratch: Vec<u8>,
    frames: u64,
}

impl EdgeSession {
    pub(crate) fn new(
        session: SessionId,
        tenant: u32,
        proto: Arc<dyn WireProtocol>,
        thread: FlThread,
    ) -> EdgeSession {
        EdgeSession {
            session,
            tenant,
            proto,
            thread,
            inbuf: Vec::new(),
            scratch: Vec::new(),
            frames: 0,
        }
    }

    /// This session's id.
    pub fn id(&self) -> SessionId {
        self.session
    }

    /// The tenant this session acts for.
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// The protocol this session speaks.
    pub fn protocol(&self) -> &str {
        self.proto.name()
    }

    /// Frames dispatched over this session's lifetime.
    pub fn frames_dispatched(&self) -> u64 {
        self.frames
    }

    /// Bytes buffered awaiting a complete frame.
    pub fn buffered(&self) -> usize {
        self.inbuf.len()
    }

    /// Feed `input` bytes into the session: decode every complete
    /// frame, dispatch each to the backend, and append the encoded
    /// responses to `out`. Returns the number of frames dispatched.
    ///
    /// On a protocol error the error frame is appended to `out` (so the
    /// caller can flush it to the client before closing) and the
    /// session is dead — framing cannot be recovered mid-stream.
    pub fn pump(&mut self, input: &[u8], out: &mut Vec<u8>) -> Result<usize, EdgeError> {
        self.inbuf.extend_from_slice(input);
        let mut consumed = 0usize;
        let mut dispatched = 0usize;
        let result = loop {
            match self.proto.decode(&self.inbuf[consumed..]) {
                Ok(Decoded::NeedMore) => break Ok(dispatched),
                Ok(Decoded::Frame { req, consumed: n }) => {
                    debug_assert!(n <= self.inbuf.len() - consumed, "decoder over-read");
                    // Dispatch wants `&mut self.scratch` while `req`
                    // borrows `self.inbuf`; split the call by hashing
                    // the borrow away first.
                    let reply = match req {
                        Request::Get { key } => {
                            let hash = key_hash(key);
                            let reply = self
                                .thread
                                .call(RPC_GET, &hash.to_le_bytes())
                                .map_err(EdgeError::Rpc)?;
                            let resp = decode_get(&reply);
                            let resp = match resp {
                                Response::Value { value, .. } => Response::Value { key, value },
                                other => other,
                            };
                            self.proto.encode_response(&resp, out);
                            None
                        }
                        Request::Set { key, value } => {
                            self.scratch.clear();
                            self.scratch.extend_from_slice(&key_hash(key).to_le_bytes());
                            self.scratch.extend_from_slice(value);
                            Some(RPC_SET)
                        }
                        Request::Ping => Some(RPC_PING),
                    };
                    if let Some(rpc_id) = reply {
                        let payload: &[u8] = if rpc_id == RPC_SET { &self.scratch } else { b"ping" };
                        let reply = self
                            .thread
                            .call(rpc_id, payload)
                            .map_err(EdgeError::Rpc)?;
                        let resp = if reply.first() == Some(&TAG_HIT) {
                            if rpc_id == RPC_SET {
                                Response::Stored
                            } else {
                                Response::Pong
                            }
                        } else {
                            Response::Error("backend rejected request")
                        };
                        self.proto.encode_response(&resp, out);
                    }
                    consumed += n;
                    dispatched += 1;
                    self.frames += 1;
                }
                Err(e) => {
                    self.proto.encode_response(&Response::Error("malformed request"), out);
                    break Err(EdgeError::Proto(e));
                }
            }
        };
        // Compact: drop the decoded prefix, keep the partial tail.
        if consumed > 0 {
            self.inbuf.drain(..consumed);
        }
        result
    }
}

/// Interpret a GET reply: `[TAG_HIT, value...]` or `[TAG_MISS]`.
fn decode_get(reply: &Bytes) -> Response<'_> {
    match reply.first() {
        Some(&TAG_HIT) => Response::Value {
            key: &[],
            value: Some(&reply[1..]),
        },
        _ => Response::Value {
            key: &[],
            value: None,
        },
    }
}
