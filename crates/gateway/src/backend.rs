//! The kv backend: GET/SET/PING handlers over `flock-kvstore`,
//! registered on a [`FlockServer`]'s dispatch path.

use std::sync::Arc;

use flock_core::server::FlockServer;
use flock_kvstore::KvStore;

use crate::rpc::{RPC_GET, RPC_PING, RPC_SET, TAG_HIT, TAG_MISS};

/// Register the gateway's kv RPC handlers on `server`, backed by `kv`.
///
/// The handlers run on the server's dispatch shards, so per-tenant
/// issued/completed accounting (PR: tenant scheduler) covers them with
/// no extra wiring.
pub fn register_kv_backend(server: &FlockServer, kv: Arc<KvStore>) {
    let kv_get = Arc::clone(&kv);
    server.reg_handler(RPC_GET, move |req| {
        let Some(key) = read_key(req) else {
            return vec![TAG_MISS];
        };
        match kv_get.get(key) {
            Some((value, _version)) => {
                let mut out = Vec::with_capacity(1 + value.len());
                out.push(TAG_HIT);
                out.extend_from_slice(&value);
                out
            }
            None => vec![TAG_MISS],
        }
    });
    server.reg_handler(RPC_SET, move |req| {
        let Some(key) = read_key(req) else {
            return vec![TAG_MISS];
        };
        kv.put(key, &req[8..]);
        vec![TAG_HIT]
    });
    server.reg_handler(RPC_PING, |_req| vec![TAG_HIT]);
}

/// The leading key hash, or `None` for truncated requests (a handler
/// must not panic on a short payload).
fn read_key(req: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(req.get(..8)?.try_into().ok()?))
}
