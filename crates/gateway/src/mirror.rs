//! The mirrored kv backend and its one-sided read client.
//!
//! [`register_kv_mirror_backend`] is [`crate::register_kv_backend`]
//! plus a one-sided mirror: every SET, after updating the store,
//! seqlock-publishes `[key: u64][value]` into a slot of an exported
//! value segment (`flock_core::onesided::SegmentWriter`), carrying the
//! store's own version word so RPC readers and one-sided readers agree
//! on versions. Slots are keyed `key % slots`; on aliasing the slot
//! holds the last writer and the embedded key tells a reader whether
//! the slot is *its* key.
//!
//! [`KvReadClient`] is the client side of the crossover experiment: a
//! GET goes either through the coalesced RPC path or through a raw
//! one-sided READ + validation, steered by
//! [`flock_kvstore::ReadMode`] — `Rpc`, `OneSided`, or `Adaptive`
//! (EWMAs of observed value size, torn-read retry rate, and per-path
//! read latency, [`flock_kvstore::AdaptivePolicy`]). Any one-sided
//! miss — embedded key mismatch, unpublished slot, retry-bound
//! exhaustion — falls back to the authoritative RPC path.

use std::sync::Arc;

use flock_core::error::Result;
use flock_core::onesided::{OneSidedReader, SegmentWriter, SlotLayout};
use flock_core::server::FlockServer;
use flock_core::{ConnectionHandle, FlThread};
use flock_kvstore::{AdaptivePolicy, KvStore, ReadMode};
use flock_sync::clock;

use crate::rpc::{RPC_GET, RPC_PING, RPC_SET, TAG_HIT, TAG_MISS};

/// Export name of the mirrored value segment.
pub const KV_SEGMENT: &str = "kv-values";

/// Bytes of key prefix inside each mirrored slot value.
const KEY_PREFIX: usize = 8;

/// Register GET/SET/PING handlers backed by `kv`, with SETs mirrored
/// into an exported one-sided segment of `slots` slots holding values
/// up to `max_value` bytes. Returns the writer (tests and warm-up
/// loaders publish through it directly).
pub fn register_kv_mirror_backend(
    server: &FlockServer,
    kv: Arc<KvStore>,
    max_value: u32,
    slots: u32,
) -> Result<Arc<SegmentWriter>> {
    let val_cap = max_value + KEY_PREFIX as u32;
    let layout = SlotLayout::for_value_cap(val_cap);
    let idx = server.attach_mreg(layout.stride as usize * slots as usize);
    let mr = server.mem_region(idx).expect("region just attached");
    let writer = Arc::new(SegmentWriter::new(mr, 0, layout, slots)?);
    server.export_segment(KV_SEGMENT, idx, layout.stride, slots, val_cap as u64)?;

    let kv_get = Arc::clone(&kv);
    server.reg_handler(RPC_GET, move |req| {
        let Some(key) = read_key(req) else {
            return vec![TAG_MISS];
        };
        match kv_get.get(key) {
            Some((value, _version)) => {
                let mut out = Vec::with_capacity(1 + value.len());
                out.push(TAG_HIT);
                out.extend_from_slice(&value);
                out
            }
            None => vec![TAG_MISS],
        }
    });
    let set_writer = Arc::clone(&writer);
    server.reg_handler(RPC_SET, move |req| {
        let Some(key) = read_key(req) else {
            return vec![TAG_MISS];
        };
        let value = &req[8..];
        kv.put(key, value);
        // Mirror with the store's version word: one-sided readers see
        // the same version an RPC validator would. Oversize values
        // publish the bare key (a spill marker) so the slot never
        // retains a stale inline value — readers fall back to RPC.
        let word = kv.version_word(key).unwrap_or(1);
        let slot = (key % u64::from(set_writer.slots())) as u32;
        let inline = if value.len() <= max_value as usize {
            value
        } else {
            &[]
        };
        let mut payload = Vec::with_capacity(KEY_PREFIX + inline.len());
        payload.extend_from_slice(&key.to_le_bytes());
        payload.extend_from_slice(inline);
        // A full slot is impossible by construction (val_cap covers
        // the prefix); an error here would mean a corrupt layout.
        let _ = set_writer.publish_with_word(slot, &payload, word);
        vec![TAG_HIT]
    });
    server.reg_handler(RPC_PING, |_req| vec![TAG_HIT]);
    Ok(writer)
}

/// The leading key hash, or `None` for truncated requests.
fn read_key(req: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(req.get(..8)?.try_into().ok()?))
}

/// Per-path read counters a [`KvReadClient`] accumulates.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KvReadStats {
    /// GETs served by a validated one-sided READ.
    pub one_sided: u64,
    /// GETs served by the RPC path (chosen or fallen back to).
    pub rpc: u64,
    /// One-sided attempts abandoned to the RPC fallback.
    pub fallbacks: u64,
}

/// A client-side GET/SET front end honoring [`ReadMode`].
///
/// One instance per application thread (it owns the [`FlThread`] and a
/// reusable landing buffer, so the one-sided path stays allocation-free
/// in steady state).
pub struct KvReadClient {
    thread: FlThread,
    reader: OneSidedReader,
    mode: ReadMode,
    policy: AdaptivePolicy,
    buf: Vec<u8>,
    req: Vec<u8>,
    stats: KvReadStats,
}

impl KvReadClient {
    /// Build a client over `handle`: registers a thread and fetches the
    /// [`KV_SEGMENT`] lease over the control path.
    pub fn new(handle: &ConnectionHandle, mode: ReadMode) -> Result<KvReadClient> {
        let thread = handle.register_thread();
        let mut leases = handle.fetch_exports(Some(KV_SEGMENT))?;
        let lease = leases
            .pop()
            .ok_or(flock_core::FlockError::RemoteOpFailed("kv segment not exported"))?;
        let reader = OneSidedReader::new(lease)?.with_max_retries(8);
        let buf = vec![0u8; reader.layout().stride as usize];
        Ok(KvReadClient {
            thread,
            reader,
            mode,
            policy: AdaptivePolicy::new(),
            buf,
            req: Vec::new(),
            stats: KvReadStats::default(),
        })
    }

    /// The underlying Flock thread (for mixing in raw RPCs).
    pub fn thread(&self) -> &FlThread {
        &self.thread
    }

    /// Per-path counters so far.
    pub fn stats(&self) -> KvReadStats {
        self.stats
    }

    /// One-sided reader counters (verbs, retries, failures).
    pub fn reader_stats(&self) -> flock_core::onesided::ReadStats {
        self.reader.stats()
    }

    /// SET through the RPC path (writes always go to the store, which
    /// mirrors into the segment server-side). Reuses the client's
    /// request scratch, so steady-state SETs don't allocate.
    pub fn set(&mut self, key: u64, value: &[u8]) -> Result<()> {
        self.req.clear();
        self.req.extend_from_slice(&key.to_le_bytes());
        self.req.extend_from_slice(value);
        let reply = self.thread.call(RPC_SET, &self.req)?;
        if reply.first() == Some(&TAG_HIT) {
            Ok(())
        } else {
            Err(flock_core::FlockError::RemoteOpFailed("set rejected"))
        }
    }

    /// GET: `out` receives the value bytes on a hit (cleared either
    /// way); returns whether the key was found.
    ///
    /// Under [`ReadMode::Adaptive`] the *whole* GET is timed and the
    /// latency is attributed to the path that was chosen — a fallback's
    /// wasted READ is part of what choosing one-sided cost, and the
    /// value size a fallback learns from the RPC reply still feeds the
    /// size EWMA (the spill marker itself says nothing about size).
    pub fn get(&mut self, key: u64, out: &mut Vec<u8>) -> Result<bool> {
        out.clear();
        let adaptive = self.mode == ReadMode::Adaptive;
        let one_sided = match self.mode {
            ReadMode::Rpc => false,
            ReadMode::OneSided => true,
            ReadMode::Adaptive => self.policy.decide(),
        };
        let start = if adaptive { clock::now_ns() } else { 0 };
        let retries_before = self.reader.stats().retries;
        if one_sided {
            match self.get_one_sided(key, out) {
                Ok(Some(hit)) => {
                    self.stats.one_sided += 1;
                    if adaptive {
                        let spent = (self.reader.stats().retries - retries_before) as u32;
                        self.policy.observe_one_sided(
                            out.len(),
                            spent,
                            clock::now_ns().saturating_sub(start),
                        );
                    }
                    return Ok(hit);
                }
                Ok(None) => {
                    // Alias or unpublished slot: the RPC path decides.
                    self.stats.fallbacks += 1;
                }
                Err(_) => {
                    // Retry bound exhausted under write pressure — the
                    // exact signal Adaptive steers on.
                    self.stats.fallbacks += 1;
                }
            }
        }
        self.stats.rpc += 1;
        let reply = self.thread.call(RPC_GET, &key.to_le_bytes())?;
        let hit = reply.first() == Some(&TAG_HIT);
        if hit {
            out.extend_from_slice(&reply[1..]);
        }
        if adaptive {
            let lat = clock::now_ns().saturating_sub(start);
            if one_sided {
                let spent = (self.reader.stats().retries - retries_before) as u32;
                self.policy.observe_one_sided(out.len(), spent, lat);
            } else {
                self.policy.observe_rpc(out.len(), lat);
            }
        }
        Ok(hit)
    }

    /// The one-sided leg: READ + validate the key's slot. `Ok(Some)` is
    /// an authoritative hit/miss; `Ok(None)` means the slot cannot
    /// answer for this key (aliased or never published).
    fn get_one_sided(&mut self, key: u64, out: &mut Vec<u8>) -> Result<Option<bool>> {
        let slot = (key % u64::from(self.reader.slots())) as u32;
        let v = self.reader.read_slot(&self.thread, slot, &mut self.buf)?;
        // `len == KEY_PREFIX` is the oversize spill marker (and, by the
        // same token, an empty value) — either way the RPC path answers.
        if v.len <= KEY_PREFIX {
            return Ok(None); // never published, or value not inline
        }
        let body = &self.buf[SlotLayout::HEADER..SlotLayout::HEADER + v.len];
        let slot_key = u64::from_le_bytes(body[..KEY_PREFIX].try_into().expect("8 bytes"));
        if slot_key != key {
            return Ok(None); // alias holds a different key
        }
        out.extend_from_slice(&body[KEY_PREFIX..]);
        Ok(Some(true))
    }
}
