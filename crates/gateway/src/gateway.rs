//! The gateway: tenant-keyed shared backend connections plus session
//! lifecycle.
//!
//! Topology (ROADMAP item 1, RDMAvisor shape): many edge sessions fan
//! into *few* Flock connections — one shared [`ConnectionHandle`] per
//! tenant, each with a small lane count — so the backend's QP load
//! scales with tenant count, not client count (Flock's thesis). The
//! tenant id rides the connect handshake, which lets the backend's
//! `QpScheduler` group senders by tenant, enforce per-tenant AQP share
//! caps, and account issued/completed requests per tenant.

use std::collections::BTreeMap;
use std::sync::Arc;

use flock_core::client::{ConnectionHandle, HandleConfig};
use flock_core::domain::FlockDomain;
use flock_core::error::Result;
use flock_fabric::Node;
use parking_lot::Mutex;

use crate::edge::EdgeSession;
use crate::proto::WireProtocol;
use crate::tenant::{SessionId, TenantRegistry};

/// Gateway configuration.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Template for each tenant's shared backend connection; the
    /// `tenant` field is overwritten per tenant. `mem_threads` bounds
    /// how many sessions a tenant can open over the connection's
    /// lifetime (session lanes are registered threads and thread slots
    /// are not recycled).
    pub handle: HandleConfig,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        let mut handle = HandleConfig::default();
        // Few shared QPs per tenant — the whole point of the topology.
        handle.n_qps = 2;
        handle.mem_threads = 64;
        GatewayConfig { handle }
    }
}

/// The protocol gateway: maps tenants to shared backend connections and
/// opens per-client edge sessions over them.
pub struct Gateway {
    domain: Arc<FlockDomain>,
    node: Arc<Node>,
    server_name: String,
    cfg: GatewayConfig,
    registry: TenantRegistry,
    /// One shared backend connection per tenant, created on first
    /// session. `BTreeMap` keeps teardown order deterministic.
    conns: Mutex<BTreeMap<u32, ConnectionHandle>>,
}

impl Gateway {
    /// Create a gateway on `node` that forwards to the backend server
    /// listening as `server_name`.
    pub fn new(
        domain: Arc<FlockDomain>,
        node: Arc<Node>,
        server_name: &str,
        cfg: GatewayConfig,
    ) -> Gateway {
        Gateway {
            domain,
            node,
            server_name: server_name.to_string(),
            cfg,
            registry: TenantRegistry::default(),
            conns: Mutex::new(BTreeMap::new()),
        }
    }

    /// The session → tenant registry.
    pub fn registry(&self) -> &TenantRegistry {
        &self.registry
    }

    /// Open an edge session for `tenant` speaking `proto`. The tenant's
    /// shared backend connection is dialed on first use.
    pub fn open_session(&self, tenant: u32, proto: Arc<dyn WireProtocol>) -> Result<EdgeSession> {
        let thread = {
            let mut conns = self.conns.lock();
            let handle = match conns.entry(tenant) {
                std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::btree_map::Entry::Vacant(v) => {
                    let mut cfg = self.cfg.handle.clone();
                    cfg.tenant = tenant;
                    v.insert(ConnectionHandle::connect(
                        &self.domain,
                        &self.node,
                        &self.server_name,
                        cfg,
                    )?)
                }
            };
            handle.register_thread()
        };
        let session = self.registry.open(tenant);
        Ok(EdgeSession::new(session, tenant, proto, thread))
    }

    /// Close an edge session (unregister it from the tenant registry).
    /// The tenant's shared connection stays up for other sessions.
    pub fn close_session(&self, session: &EdgeSession) {
        self.registry.close(session.id());
    }

    /// Close a session by id (when the `EdgeSession` was consumed).
    pub fn close_session_id(&self, session: SessionId) {
        self.registry.close(session);
    }

    /// Tenants with a live backend connection, ascending.
    pub fn connected_tenants(&self) -> Vec<u32> {
        self.conns.lock().keys().copied().collect()
    }

    /// Gracefully close every tenant connection (detach from the
    /// backend, recycle QPs/MRs). Call after the last session quiesced;
    /// errors from individual detaches surface after all were tried.
    pub fn close(&self) -> Result<()> {
        let mut first_err = None;
        let mut conns = self.conns.lock();
        while let Some((_tenant, mut handle)) = conns.pop_first() {
            if let Err(e) = handle.close() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}
