//! Protocol-codec property battery (ISSUE 9 satellite 1).
//!
//! For both wire handlers (memcached-text and RESP):
//!
//! * encode → decode round-trips arbitrary keys/values, and pipelined
//!   frame sequences, with `consumed` exactly covering the input;
//! * decoding is chunking-independent: any split of the byte stream
//!   yields the same frames;
//! * arbitrary byte soup never panics the decoder and never over-reads
//!   (`consumed <= buf.len()`);
//! * targeted malformed inputs produce errors, not hangs or panics.

use flock_gateway::proto::{
    Decoded, MemcachedText, PingProto, ProtoError, Request, Resp, WireProtocol, MAX_KEY_LEN,
    MAX_LINE_LEN, MAX_VALUE_LEN,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Owned mirror of [`Request`] for comparing across buffers.
#[derive(Debug, Clone, PartialEq, Eq)]
enum OwnedReq {
    Get(Vec<u8>),
    Set(Vec<u8>, Vec<u8>),
    Ping,
}

impl OwnedReq {
    fn of(req: &Request<'_>) -> OwnedReq {
        match req {
            Request::Get { key } => OwnedReq::Get(key.to_vec()),
            Request::Set { key, value } => OwnedReq::Set(key.to_vec(), value.to_vec()),
            Request::Ping => OwnedReq::Ping,
        }
    }

    fn borrow(&self) -> Request<'_> {
        match self {
            OwnedReq::Get(k) => Request::Get { key: k },
            OwnedReq::Set(k, v) => Request::Set { key: k, value: v },
            OwnedReq::Ping => Request::Ping,
        }
    }
}

/// Map raw generator bytes to a valid key (non-empty, bounded, no
/// whitespace/control bytes).
fn to_key(raw: &[u8]) -> Vec<u8> {
    raw.iter().map(|b| b'a' + (b % 26)).collect()
}

/// Build one request from generator output.
fn to_req(op: u8, key_raw: &[u8], value: &[u8]) -> OwnedReq {
    match op % 3 {
        0 => OwnedReq::Get(to_key(key_raw)),
        1 => OwnedReq::Set(to_key(key_raw), value.to_vec()),
        _ => OwnedReq::Ping,
    }
}

/// Decode every complete frame in `buf`, asserting the decoder's
/// no-over-read contract at each step.
fn decode_all(proto: &dyn WireProtocol, buf: &[u8]) -> Result<Vec<OwnedReq>, ProtoError> {
    let mut at = 0usize;
    let mut out = Vec::new();
    loop {
        match proto.decode(&buf[at..])? {
            Decoded::Frame { req, consumed } => {
                assert!(consumed > 0, "a frame must consume bytes");
                assert!(consumed <= buf.len() - at, "decoder over-read");
                out.push(OwnedReq::of(&req));
                at += consumed;
            }
            Decoded::NeedMore => {
                assert_eq!(at, buf.len(), "NeedMore with a full frame buffered");
                return Ok(out);
            }
        }
        if at == buf.len() {
            return Ok(out);
        }
    }
}

/// Feed `buf` in chunks, accumulating undecoded bytes exactly like the
/// edge session does, and collect the decoded frames.
fn decode_chunked(
    proto: &dyn WireProtocol,
    buf: &[u8],
    chunks: &[usize],
) -> Result<Vec<OwnedReq>, ProtoError> {
    let mut pending: Vec<u8> = Vec::new();
    let mut out = Vec::new();
    let mut fed = 0usize;
    let mut chunk_idx = 0usize;
    while fed < buf.len() {
        let step = 1 + chunks.get(chunk_idx).copied().unwrap_or(0) % 7;
        chunk_idx += 1;
        let end = (fed + step).min(buf.len());
        pending.extend_from_slice(&buf[fed..end]);
        fed = end;
        while let Decoded::Frame { req, consumed } = proto.decode(&pending)? {
            assert!(consumed <= pending.len(), "decoder over-read");
            out.push(OwnedReq::of(&req));
            pending.drain(..consumed);
            if pending.is_empty() {
                break;
            }
        }
    }
    assert!(pending.is_empty(), "complete stream left undecoded bytes");
    Ok(out)
}

fn protocols() -> [&'static dyn WireProtocol; 2] {
    [&MemcachedText, &Resp]
}

proptest! {
    #[test]
    fn roundtrip_single_frame(
        op in 0u8..3,
        key_raw in vec(any::<u8>(), 1..64),
        value in vec(any::<u8>(), 0..256),
    ) {
        let req = to_req(op, &key_raw, &value);
        for proto in protocols() {
            let mut wire = Vec::new();
            proto.encode_request(&req.borrow(), &mut wire);
            match proto.decode(&wire) {
                Ok(Decoded::Frame { req: got, consumed }) => {
                    prop_assert_eq!(&OwnedReq::of(&got), &req, "{}", proto.name());
                    prop_assert_eq!(consumed, wire.len(), "{}", proto.name());
                }
                other => panic!("{}: expected frame, got {other:?}", proto.name()),
            }
        }
    }

    #[test]
    fn roundtrip_pipelined_stream(
        ops in vec((0u8..3, vec(any::<u8>(), 1..24), vec(any::<u8>(), 0..48)), 1..12),
        chunks in vec(0usize..7, 1..64),
    ) {
        let reqs: Vec<OwnedReq> =
            ops.iter().map(|(op, k, v)| to_req(*op, k, v)).collect();
        for proto in protocols() {
            let mut wire = Vec::new();
            for r in &reqs {
                proto.encode_request(&r.borrow(), &mut wire);
            }
            // One-shot decode sees every frame.
            let oneshot = decode_all(proto, &wire).expect("valid stream");
            prop_assert_eq!(&oneshot, &reqs, "{}", proto.name());
            // Chunked decode (arbitrary splits) sees the same frames.
            let chunked = decode_chunked(proto, &wire, &chunks).expect("valid stream");
            prop_assert_eq!(&chunked, &reqs, "{}", proto.name());
        }
    }

    #[test]
    fn every_prefix_is_needmore_never_a_lie(
        op in 0u8..3,
        key_raw in vec(any::<u8>(), 1..16),
        value in vec(any::<u8>(), 0..32),
        cut in any::<usize>(),
    ) {
        // Any strict prefix of a single valid frame must yield NeedMore
        // (the frame is incomplete), never a frame and never an error.
        let req = to_req(op, &key_raw, &value);
        for proto in protocols() {
            let mut wire = Vec::new();
            proto.encode_request(&req.borrow(), &mut wire);
            let cut = cut % wire.len(); // strict prefix
            match proto.decode(&wire[..cut]) {
                Ok(Decoded::NeedMore) => {}
                other => panic!(
                    "{}: prefix {cut}/{} gave {other:?}",
                    proto.name(),
                    wire.len()
                ),
            }
        }
    }

    #[test]
    fn byte_soup_never_panics_or_overreads(raw in vec(any::<u8>(), 0..600)) {
        for proto in protocols() {
            match proto.decode(&raw) {
                Ok(Decoded::Frame { consumed, .. }) => {
                    prop_assert!(consumed <= raw.len(), "{} over-read", proto.name());
                }
                Ok(Decoded::NeedMore) | Err(_) => {}
            }
        }
        // The ping decoder too.
        match PingProto.decode(&raw) {
            Ok(Decoded::Frame { consumed, .. }) => prop_assert!(consumed <= raw.len()),
            Ok(Decoded::NeedMore) | Err(_) => {}
        }
    }

    #[test]
    fn textish_soup_never_panics(
        raw in vec(0u8..128, 0..300),
    ) {
        // ASCII-biased soup exercises the text parsers' token paths
        // (random high bytes bail too early to reach them).
        for proto in protocols() {
            match proto.decode(&raw) {
                Ok(Decoded::Frame { consumed, .. }) => {
                    prop_assert!(consumed <= raw.len());
                }
                Ok(Decoded::NeedMore) | Err(_) => {}
            }
        }
    }
}

#[test]
fn memcached_malformed_inputs_error() {
    let p = MemcachedText;
    let cases: &[&[u8]] = &[
        b"gut key\r\n",                      // unknown command
        b"get\r\n",                          // missing key
        b"get a b\r\n",                      // multi-key
        b"set k 0 0 abc\r\n",                // non-numeric length
        b"set k 0 0\r\n",                    // missing length
        b"set k 0 0 3 junk\r\n",             // trailing tokens
        b"set k 0 0 99999999999\r\n",        // overflowing length
        b"set k 0 0 3\r\nabcXY",             // data not CRLF-terminated
        b"ping now\r\n",                     // ping with arguments
        b"\r\n",                             // empty command line
    ];
    for c in cases {
        assert!(p.decode(c).is_err(), "{:?} must be rejected", String::from_utf8_lossy(c));
    }
    // Oversized value length fails fast, before the data arrives.
    let huge = format!("set k 0 0 {}\r\n", MAX_VALUE_LEN + 1);
    assert_eq!(p.decode(huge.as_bytes()), Err(ProtoError::ValueTooLong));
    // Oversized key.
    let mut long_key = b"get ".to_vec();
    long_key.extend(std::iter::repeat_n(b'k', MAX_KEY_LEN + 1));
    long_key.extend_from_slice(b"\r\n");
    assert_eq!(p.decode(&long_key), Err(ProtoError::KeyTooLong));
    // Unterminated line beyond the line bound.
    let no_eol = vec![b'g'; MAX_LINE_LEN + 8];
    assert_eq!(p.decode(&no_eol), Err(ProtoError::LineTooLong));
}

#[test]
fn resp_malformed_inputs_error() {
    let p = Resp;
    let cases: &[&[u8]] = &[
        b"+PING\r\n",                            // not an array
        b"*0\r\n",                               // empty array
        b"*4\r\n",                               // too many elements
        b"*x\r\n",                               // non-numeric count
        b"*1\r\n+PING\r\n",                      // element not a bulk string
        b"*1\r\n$abc\r\n",                       // non-numeric bulk length
        b"*1\r\n$4\r\nPINGx!",                   // bulk not CRLF-terminated
        b"*2\r\n$4\r\nPING\r\n$1\r\na\r\n",      // PING with arguments
        b"*1\r\n$3\r\nGET\r\n",                  // GET without key
        b"*2\r\n$4\r\nEVAL\r\n$1\r\na\r\n",      // unknown command
        b"*2\r\n$3\r\nGET\r\n$0\r\n\r\n",        // empty key
    ];
    for c in cases {
        assert!(p.decode(c).is_err(), "{:?} must be rejected", String::from_utf8_lossy(c));
    }
    let huge = format!("*2\r\n$3\r\nGET\r\n${}\r\n", MAX_VALUE_LEN + 1);
    assert_eq!(p.decode(huge.as_bytes()), Err(ProtoError::ValueTooLong));
}

#[test]
fn ping_protocol_is_ping_only() {
    let p = PingProto;
    assert!(matches!(
        p.decode(b"PING\r\n"),
        Ok(Decoded::Frame { req: Request::Ping, consumed: 6 })
    ));
    assert!(matches!(p.decode(b"PI"), Ok(Decoded::NeedMore)));
    assert!(p.decode(b"PONG\r\n").is_err());
    assert!(p.decode(b"X").is_err(), "non-PING prefix fails fast");
    // Pipelined pings decode one at a time.
    let two = b"PING\r\nPING\r\n";
    let Ok(Decoded::Frame { consumed, .. }) = p.decode(two) else {
        panic!("first ping");
    };
    assert!(matches!(
        p.decode(&two[consumed..]),
        Ok(Decoded::Frame { req: Request::Ping, .. })
    ));
}

#[test]
fn memcached_value_may_contain_crlf() {
    // Length-prefixed framing must not get confused by CRLF inside the
    // value bytes.
    let p = MemcachedText;
    let wire = b"set k 0 0 6\r\nab\r\ncd\r\n";
    match p.decode(wire) {
        Ok(Decoded::Frame { req: Request::Set { key, value }, consumed }) => {
            assert_eq!(key, b"k");
            assert_eq!(value, b"ab\r\ncd");
            assert_eq!(consumed, wire.len());
        }
        other => panic!("{other:?}"),
    }
}
