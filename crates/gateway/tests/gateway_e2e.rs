//! End-to-end gateway tests: edge sessions speaking all three wire
//! protocols against a kvstore-backed Flock server, with per-tenant
//! accounting visible in the server's fairness snapshot.

use std::sync::Arc;

use flock_core::client::HandleConfig;
use flock_core::server::{FlockServer, ServerConfig};
use flock_core::FlockDomain;
use flock_gateway::proto::{MemcachedText, PingProto, Resp};
use flock_gateway::{register_kv_backend, EdgeError, Gateway, GatewayConfig};
use flock_kvstore::{KvConfig, KvStore};

fn kv_server(domain: &FlockDomain, name: &str) -> (FlockServer, Arc<KvStore>) {
    let node = domain.add_node(&format!("node-{name}"));
    let server = FlockServer::listen(domain, &node, name, ServerConfig::default());
    let kv = Arc::new(KvStore::new(KvConfig::default()));
    register_kv_backend(&server, Arc::clone(&kv));
    (server, kv)
}

fn gateway(domain: &Arc<FlockDomain>, name: &str) -> Gateway {
    let gw_node = domain.add_node(&format!("gw-{name}"));
    let mut cfg = GatewayConfig::default();
    cfg.handle = HandleConfig {
        n_qps: 2,
        mem_threads: 8,
        ..HandleConfig::default()
    };
    Gateway::new(Arc::clone(domain), gw_node, name, cfg)
}

#[test]
fn three_protocols_share_one_store() {
    let domain = Arc::new(FlockDomain::with_defaults());
    let (server, kv) = kv_server(&domain, "kv1");
    let gw = gateway(&domain, "kv1");

    let mut mc = gw.open_session(1, Arc::new(MemcachedText)).unwrap();
    let mut rs = gw.open_session(2, Arc::new(Resp)).unwrap();
    let mut pg = gw.open_session(3, Arc::new(PingProto)).unwrap();

    let mut out = Vec::new();
    // Memcached tenant writes...
    assert_eq!(mc.pump(b"set foo 0 0 3\r\nbar\r\n", &mut out).unwrap(), 1);
    assert_eq!(out, b"STORED\r\n");
    out.clear();
    assert_eq!(mc.pump(b"get foo\r\n", &mut out).unwrap(), 1);
    assert_eq!(out, b"VALUE foo 0 3\r\nbar\r\nEND\r\n");
    out.clear();
    assert_eq!(mc.pump(b"get nope\r\n", &mut out).unwrap(), 1);
    assert_eq!(out, b"END\r\n");
    out.clear();
    assert_eq!(mc.pump(b"ping\r\n", &mut out).unwrap(), 1);
    assert_eq!(out, b"PONG\r\n");
    out.clear();

    // ...and the RESP tenant reads them through the same store.
    assert_eq!(rs.pump(b"*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n", &mut out).unwrap(), 1);
    assert_eq!(out, b"$3\r\nbar\r\n");
    out.clear();
    assert_eq!(
        rs.pump(b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n", &mut out)
            .unwrap(),
        1
    );
    assert_eq!(out, b"+OK\r\n");
    out.clear();
    assert_eq!(rs.pump(b"*1\r\n$4\r\nPING\r\n", &mut out).unwrap(), 1);
    assert_eq!(out, b"+PONG\r\n");
    out.clear();

    // Ping tenant.
    assert_eq!(pg.pump(b"PING\r\nPING\r\n", &mut out).unwrap(), 2);
    assert_eq!(out, b"PONG\r\nPONG\r\n");
    out.clear();

    // The store holds both keys (hashed), written through two protocols.
    assert_eq!(kv.len(), 2);

    // Per-tenant accounting reached the backend scheduler: three tenant
    // rows, each with completed requests matching its traffic.
    let snap = server.fairness_snapshot();
    let t1 = snap.tenant(1).expect("memcached tenant row");
    let t2 = snap.tenant(2).expect("resp tenant row");
    let t3 = snap.tenant(3).expect("ping tenant row");
    assert_eq!(t1.completed, 4);
    assert_eq!(t2.completed, 3);
    assert_eq!(t3.completed, 2);
    assert!(t1.senders == 1 && t2.senders == 1 && t3.senders == 1);

    gw.close_session(&mc);
    gw.close_session(&rs);
    gw.close_session(&pg);
    assert!(gw.registry().is_empty());
    gw.close().unwrap();
    server.shutdown(&domain);
}

#[test]
fn sessions_of_one_tenant_share_one_connection() {
    let domain = Arc::new(FlockDomain::with_defaults());
    let (server, _kv) = kv_server(&domain, "kv2");
    let gw = gateway(&domain, "kv2");

    let mut sessions: Vec<_> = (0..4)
        .map(|_| gw.open_session(7, Arc::new(MemcachedText)).unwrap())
        .collect();
    assert_eq!(gw.connected_tenants(), vec![7], "one shared connection");
    assert_eq!(gw.registry().sessions_of(7), 4);

    let mut out = Vec::new();
    for (i, s) in sessions.iter_mut().enumerate() {
        out.clear();
        let wire = format!("set key{i} 0 0 2\r\nv{i}\r\n");
        assert_eq!(s.pump(wire.as_bytes(), &mut out).unwrap(), 1);
        assert_eq!(out, b"STORED\r\n");
    }
    let snap = server.fairness_snapshot();
    let row = snap.tenant(7).expect("tenant row");
    assert_eq!(row.senders, 1, "4 sessions share 1 sender");
    assert_eq!(row.completed, 4);

    for s in &sessions {
        gw.close_session(s);
    }
    gw.close().unwrap();
    server.shutdown(&domain);
}

#[test]
fn split_frames_reassemble_across_pumps() {
    let domain = Arc::new(FlockDomain::with_defaults());
    let (server, _kv) = kv_server(&domain, "kv3");
    let gw = gateway(&domain, "kv3");
    let mut s = gw.open_session(1, Arc::new(MemcachedText)).unwrap();

    let mut out = Vec::new();
    assert_eq!(s.pump(b"set foo 0 0 3\r\nb", &mut out).unwrap(), 0);
    assert!(out.is_empty());
    assert!(s.buffered() > 0);
    assert_eq!(s.pump(b"ar\r\nget fo", &mut out).unwrap(), 1);
    assert_eq!(out, b"STORED\r\n");
    out.clear();
    assert_eq!(s.pump(b"o\r\n", &mut out).unwrap(), 1);
    assert_eq!(out, b"VALUE foo 0 3\r\nbar\r\nEND\r\n");
    assert_eq!(s.frames_dispatched(), 2);
    assert_eq!(s.buffered(), 0);

    gw.close_session(&s);
    gw.close().unwrap();
    server.shutdown(&domain);
}

#[test]
fn malformed_stream_reports_error_and_dies() {
    let domain = Arc::new(FlockDomain::with_defaults());
    let (server, _kv) = kv_server(&domain, "kv4");
    let gw = gateway(&domain, "kv4");
    let mut s = gw.open_session(1, Arc::new(Resp)).unwrap();

    let mut out = Vec::new();
    let err = s.pump(b"not resp at all\r\n", &mut out).unwrap_err();
    assert!(matches!(err, EdgeError::Proto(_)), "{err}");
    assert!(
        out.starts_with(b"-ERR"),
        "client gets an error frame before the close: {:?}",
        String::from_utf8_lossy(&out)
    );

    gw.close_session(&s);
    gw.close().unwrap();
    server.shutdown(&domain);
}
