//! End-to-end tests of the one-sided gateway bridges: the mirrored kv
//! backend with [`ReadMode`]-steered clients, and the hydralist bridge
//! with its one-sided leaf traversal.

use std::sync::Arc;

use flock_core::client::HandleConfig;
use flock_core::server::{FlockServer, ServerConfig};
use flock_core::{ConnectionHandle, FlockDomain};
use flock_gateway::proto::MemcachedText;
use flock_gateway::{
    key_hash, register_hydra_backend, register_hydra_mirror_backend, register_kv_mirror_backend,
    Gateway, GatewayConfig, HydraReader, KvReadClient, ReadMode,
};
use flock_hydralist::{HydraConfig, HydraList};
use flock_kvstore::{KvConfig, KvStore};

fn connect(domain: &FlockDomain, name: &str) -> ConnectionHandle {
    let client = domain.add_node(&format!("c-{name}"));
    ConnectionHandle::connect(domain, &client, name, HandleConfig::default()).unwrap()
}

#[test]
fn one_sided_client_agrees_with_rpc_client() {
    let domain = FlockDomain::with_defaults();
    let node = domain.add_node("node-m1");
    let server = FlockServer::listen(&domain, &node, "m1", ServerConfig::default());
    let kv = Arc::new(KvStore::new(KvConfig::default()));
    register_kv_mirror_backend(&server, Arc::clone(&kv), 64, 128).unwrap();

    let handle = connect(&domain, "m1");
    let mut rpc = KvReadClient::new(&handle, ReadMode::Rpc).unwrap();
    let mut os = KvReadClient::new(&handle, ReadMode::OneSided).unwrap();

    for k in 0..32u64 {
        rpc.set(k, format!("value-{k}").as_bytes()).unwrap();
    }
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for k in 0..32u64 {
        assert!(rpc.get(k, &mut a).unwrap());
        assert!(os.get(k, &mut b).unwrap());
        assert_eq!(a, b, "paths disagree on key {k}");
        assert_eq!(a, format!("value-{k}").as_bytes());
    }
    // A missing key: the one-sided leg cannot prove absence (slot never
    // published) and falls back to RPC, which answers miss.
    assert!(!os.get(999, &mut b).unwrap());
    assert!(b.is_empty());

    let s = os.stats();
    assert_eq!(s.one_sided, 32, "all mirrored hits served one-sided");
    assert_eq!(s.fallbacks, 1, "only the miss fell back");
    assert_eq!(s.rpc, 1);
    assert_eq!(rpc.stats().one_sided, 0, "Rpc mode never touches the mirror");
    server.shutdown(&domain);
}

#[test]
fn aliased_and_oversize_slots_fall_back_to_rpc() {
    let domain = FlockDomain::with_defaults();
    let node = domain.add_node("node-m2");
    let server = FlockServer::listen(&domain, &node, "m2", ServerConfig::default());
    let kv = Arc::new(KvStore::new(KvConfig::default()));
    // 4 slots: keys 1 and 5 alias (1 % 4 == 5 % 4).
    register_kv_mirror_backend(&server, Arc::clone(&kv), 16, 4).unwrap();

    let handle = connect(&domain, "m2");
    let mut os = KvReadClient::new(&handle, ReadMode::OneSided).unwrap();
    os.set(1, b"one").unwrap();
    os.set(5, b"five").unwrap(); // evicts key 1's mirror slot

    let mut out = Vec::new();
    assert!(os.get(5, &mut out).unwrap());
    assert_eq!(out, b"five");
    assert!(os.get(1, &mut out).unwrap(), "aliased key still readable");
    assert_eq!(out, b"one", "alias must not leak the wrong value");
    assert_eq!(os.stats().fallbacks, 1, "alias fell back");

    // An oversize value spills: the slot is re-published as a marker,
    // never serving the stale small value.
    os.set(5, &[0xEE; 100]).unwrap();
    assert!(os.get(5, &mut out).unwrap());
    assert_eq!(out, vec![0xEE; 100], "stale inline value served");
    assert_eq!(os.stats().fallbacks, 2, "oversize fell back");
    server.shutdown(&domain);
}

/// Adaptive mode learns from observed value sizes: once the EWMA of
/// returned values crosses the cutover, it stops burning READ verbs on
/// a mirror that will only spill.
#[test]
fn adaptive_mode_stops_probing_when_values_grow() {
    let domain = FlockDomain::with_defaults();
    let node = domain.add_node("node-m3");
    let server = FlockServer::listen(&domain, &node, "m3", ServerConfig::default());
    let kv = Arc::new(KvStore::new(KvConfig::default()));
    register_kv_mirror_backend(&server, Arc::clone(&kv), 200, 64).unwrap();

    let handle = connect(&domain, "m3");
    let mut ad = KvReadClient::new(&handle, ReadMode::Adaptive).unwrap();
    let mut out = Vec::new();

    // Small values: adaptive starts (and stays) one-sided, except the
    // deterministic probe at read PROBE_PERIOD, which takes the RPC
    // path to keep its latency EWMA live.
    ad.set(1, &[7u8; 32]).unwrap();
    for _ in 0..16 {
        assert!(ad.get(1, &mut out).unwrap());
    }
    assert_eq!(ad.stats().one_sided, 15);
    assert_eq!(ad.stats().rpc, 1, "read 16 probes the RPC path");

    // Large values (above the mirror cap): every probe spills to RPC,
    // and each RPC reply feeds the size EWMA until probing stops.
    ad.set(2, &[9u8; 4096]).unwrap();
    for _ in 0..256 {
        assert!(ad.get(2, &mut out).unwrap());
        assert_eq!(out.len(), 4096);
    }
    let s = ad.stats();
    assert_eq!(s.one_sided, 15, "large values never served one-sided");
    assert!(
        s.fallbacks < 64,
        "adaptive kept probing a spilling mirror: {} fallbacks",
        s.fallbacks
    );
    server.shutdown(&domain);
}

/// The hydralist bridge speaks the same backend contract as the kv
/// one, so an unmodified edge session (memcached protocol) runs over
/// an ordered index. Values must be exactly 8 bytes (the index stores
/// u64s).
#[test]
fn hydra_backend_serves_memcached_sessions() {
    let domain = Arc::new(FlockDomain::with_defaults());
    let node = domain.add_node("node-h1");
    let server = FlockServer::listen(&domain, &node, "h1", ServerConfig::default());
    let hydra = Arc::new(HydraList::default());
    register_hydra_backend(&server, Arc::clone(&hydra));

    let gw_node = domain.add_node("gw-h1");
    let mut cfg = GatewayConfig::default();
    cfg.handle = HandleConfig {
        n_qps: 2,
        mem_threads: 8,
        ..HandleConfig::default()
    };
    let gw = Gateway::new(Arc::clone(&domain), gw_node, "h1", cfg);
    let mut s = gw.open_session(1, Arc::new(MemcachedText)).unwrap();

    let mut out = Vec::new();
    assert_eq!(s.pump(b"set foo 0 0 8\r\nAAAABBBB\r\n", &mut out).unwrap(), 1);
    assert_eq!(out, b"STORED\r\n");
    out.clear();
    assert_eq!(s.pump(b"get foo\r\n", &mut out).unwrap(), 1);
    assert_eq!(out, b"VALUE foo 0 8\r\nAAAABBBB\r\nEND\r\n");
    out.clear();
    assert_eq!(s.pump(b"get nope\r\n", &mut out).unwrap(), 1);
    assert_eq!(out, b"END\r\n");

    // The value really lives in the ordered index, keyed by the FNV
    // hash the gateway puts on the wire.
    assert_eq!(
        hydra.get(key_hash(b"foo")),
        Some(u64::from_le_bytes(*b"AAAABBBB"))
    );
    gw.close_session(&s);
    gw.close().unwrap();
    server.shutdown(&domain);
}

/// One-sided traversal of the mirrored leaf chain returns exactly what
/// the server-side index returns — across enough keys to force many
/// splits — and misses are authoritative.
#[test]
fn hydra_one_sided_traversal_agrees_with_index() {
    let domain = FlockDomain::with_defaults();
    let node = domain.add_node("node-h2");
    let server = FlockServer::listen(&domain, &node, "h2", ServerConfig::default());
    let hydra = Arc::new(HydraList::new(HydraConfig {
        node_capacity: 8,
        sync_search_updates: true,
    }));
    let mirror = register_hydra_mirror_backend(&server, Arc::clone(&hydra), 64).unwrap();

    // Shuffled inserts (stride walk of an odd generator mod 257) force
    // splits at every position, not just the tail.
    let mut key = 1u64;
    for i in 0..200u64 {
        mirror.insert(key * 3, i);
        key = (key * 75) % 257;
    }
    assert!(hydra.node_count() > 8, "workload must split many times");

    let handle = connect(&domain, "h2");
    let t = handle.register_thread();
    let mut reader = HydraReader::new(&handle).unwrap();
    for probe in 0..=(257 * 3) {
        assert_eq!(
            reader.get(&t, probe).unwrap(),
            hydra.get(probe),
            "traversal diverges from index at key {probe}"
        );
    }
    assert_eq!(reader.stats().failures, 0);
    server.shutdown(&domain);
}
