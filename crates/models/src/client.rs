//! Client-side model: closed-loop thread generators, the TCQ leader/flush
//! pipeline (coalescing emerges from queueing at the lane), the FaRM-style
//! lock-serialized lane, the UD submit path, credit handling, and the
//! sender-side thread scheduler driving the real Algorithm 1.

use flock_core::msg;
use flock_core::sched::thread::{assign_threads, ThreadLoadStats};
use flock_sim::{Ns, Sim};

use crate::net::{transmit, NetMsg};
use crate::world::{AppLogic, LaneState, Req, ReqId, ReqKind, SystemKind, World};

/// Kick off the closed loop for every thread (call once at t=0).
pub fn start_all_threads(w: &mut World, sim: &mut Sim<World>) {
    let n_clients = w.clients.len();
    for client in 0..n_clients {
        let n_threads = w.clients[client].threads.len();
        for thread in 0..n_threads {
            for _ in 0..w.outstanding {
                issue_one(w, sim, client, thread);
            }
        }
        if w.system == SystemKind::Flock && w.thread_sched && !w.clients[client].threads.is_empty()
        {
            let interval = Ns::from_micros(500);
            sim.after(interval, move |w: &mut World, sim| {
                thread_sched_tick(w, sim, client);
            });
        }
    }
}

/// Issue one new request from `thread` (closed loop).
pub fn issue_one(w: &mut World, sim: &mut Sim<World>, client: usize, thread: usize) {
    let now = sim.now();
    // Draw the workload op.
    let (kind, size, resp_size, key) = match &w.app {
        AppLogic::Echo => {
            let size = w.clients[client].threads[thread].req_size;
            (ReqKind::Echo, size, size, 0u64)
        }
        AppLogic::Hydra(app) => {
            let keyspace = app.keyspace();
            let t = &mut w.clients[client].threads[thread];
            let key = t.rng.below(keyspace);
            if t.rng.chance(0.9) {
                (ReqKind::Get, 16, 8, key)
            } else {
                // Scan of range 64; the server replies with an 8 B count.
                (ReqKind::Scan, 16, 8, key)
            }
        }
        AppLogic::Txn => unreachable!("txn experiments start via coord::start_all"),
    };
    let req = Req {
        issued: now,
        client,
        thread,
        server: 0,
        size,
        resp_size,
        kind,
        key,
        txn: None,
    };
    let t = &mut w.clients[client].threads[thread];
    t.inflight += 1;
    t.bytes += size as u64;
    t.reqs += 1;
    t.sizes.record(size as u32);
    let id = w.alloc_req(req);
    enqueue_submit(w, sim, client, thread, id);
}

/// Queue a request on the thread's submit pipeline: the (single-threaded)
/// application thread hands requests to the transport one at a time, so a
/// thread that just led a flush cannot coalesce with itself.
pub fn enqueue_submit(
    w: &mut World,
    sim: &mut Sim<World>,
    client: usize,
    thread: usize,
    id: ReqId,
) {
    let now = sim.now();
    let t = &mut w.clients[client].threads[thread];
    t.submit_queue.push_back(id);
    if !t.submitting {
        t.submitting = true;
        let at = t.next_free.max(now);
        sim.at(at, move |w: &mut World, sim| {
            thread_submit_next(w, sim, client, thread);
        });
    }
}

/// Pop and submit the thread's next request; reschedule while more wait.
fn thread_submit_next(w: &mut World, sim: &mut Sim<World>, client: usize, thread: usize) {
    let now = sim.now();
    let Some(id) = w.clients[client].threads[thread].submit_queue.pop_front() else {
        w.clients[client].threads[thread].submitting = false;
        return;
    };
    let join_cost = Ns(w.cost.cpu_sync_ns) + w.cost.memcpy_time(w.reqs[id].size);
    {
        let t = &mut w.clients[client].threads[thread];
        t.next_free = now + join_cost;
    }
    submit(w, sim, id); // may extend next_free if the thread leads
    let t = &mut w.clients[client].threads[thread];
    if t.submit_queue.is_empty() {
        t.submitting = false;
    } else {
        let at = t.next_free.max(now);
        sim.at(at, move |w: &mut World, sim| {
            thread_submit_next(w, sim, client, thread);
        });
    }
}

/// Route a request into the system-specific send path.
pub fn submit(w: &mut World, sim: &mut Sim<World>, id: ReqId) {
    let req = w.reqs[id].clone();
    match w.system {
        SystemKind::Flock | SystemKind::LockShare | SystemKind::NoShare => {
            let lane = w.clients[req.client].threads[req.thread].assigned_qp[req.server];
            submit_lane(w, sim, req.client, req.server, lane, id);
        }
        SystemKind::UdRpc => {
            // Client CPU to post the send: a latency adder (client cores
            // are not the bottleneck in these experiments).
            let delay = Ns(w.cost.cpu_doorbell_ns + w.cost.cpu_codec_ns);
            let (client, server) = (req.client, req.server);
            sim.after(delay, move |w: &mut World, sim| {
                transmit(
                    w,
                    sim,
                    None,
                    w.reqs[id].size + 32,
                    NetMsg::UdReq {
                        client,
                        server,
                        req: id,
                    },
                );
            });
        }
    }
}

/// Enqueue on a QP lane; start a leader if the lane is idle.
pub fn submit_lane(
    w: &mut World,
    sim: &mut Sim<World>,
    client: usize,
    server: usize,
    lane: usize,
    id: ReqId,
) {
    let now = sim.now();
    let qp = &mut w.clients[client].qps[server][lane];
    qp.pending.push_back(id);
    if qp.state == LaneState::Idle {
        qp.state = LaneState::Busy;
        // This thread becomes the leader: its CPU is occupied for the
        // whole flush (collect, copy, doorbell), so it cannot pipeline
        // its own next request into this batch.
        let thread = w.reqs[id].thread;
        let flush_cpu =
            Ns(w.cost.cpu_doorbell_ns + w.cost.cpu_codec_ns) + w.cost.memcpy_time(w.reqs[id].size);
        let prep = lane_prep_time(w, client, server, lane);
        let t = &mut w.clients[client].threads[thread];
        t.next_free = t.next_free.max(now + prep + flush_cpu);
        sim.after(prep, move |w: &mut World, sim| {
            lane_flush(w, sim, client, server, lane);
        });
    }
}

/// Time between a leader taking over and draining the batch: TCQ enqueue +
/// header setup for Flock; lock acquisition for the FaRM-style baseline.
fn lane_prep_time(w: &World, client: usize, server: usize, lane: usize) -> Ns {
    let qp = &w.clients[client].qps[server][lane];
    match w.system {
        SystemKind::Flock => Ns(w.cost.cpu_sync_ns + w.cost.cpu_codec_ns),
        SystemKind::LockShare => {
            // Lock handoff: contended transfer when someone queued behind.
            let contended = qp.pending.len() > 1;
            Ns(if contended {
                w.cost.cpu_lock_contended_ns
            } else {
                w.cost.cpu_sync_ns
            } + w.cost.cpu_codec_ns)
        }
        SystemKind::NoShare => Ns(w.cost.cpu_sync_ns + w.cost.cpu_codec_ns),
        SystemKind::UdRpc => unreachable!("UD path has no lanes"),
    }
}

/// The leader drains a batch, settles credits, and sends one message.
pub fn lane_flush(w: &mut World, sim: &mut Sim<World>, client: usize, server: usize, lane: usize) {
    let now = sim.now();
    let batch_limit = w.batch_limit;
    let warmup = w.warmup;

    // Credit gate.
    let (send_renewal, degree_report) = {
        let qp = &mut w.clients[client].qps[server][lane];
        if qp.pending.is_empty() {
            qp.state = LaneState::Idle;
            return;
        }
        if qp.active && qp.credits.credits() == 0 {
            if !qp.credits.renewal_in_flight() {
                qp.credits.mark_requested();
                let degree = qp.degrees.median().clamp(1, u16::MAX as u32) as u16;
                qp.degrees.clear();
                qp.state = LaneState::WaitCredits;
                (true, degree)
            } else {
                qp.state = LaneState::WaitCredits;
                (false, 0)
            }
        } else {
            (false, 0)
        }
    };
    if w.clients[client].qps[server][lane].state == LaneState::WaitCredits {
        if send_renewal {
            transmit(
                w,
                sim,
                Some(w.clients[client].qps[server][lane].global_id),
                32,
                NetMsg::Renewal {
                    client,
                    server,
                    lane,
                    degree: degree_report,
                },
            );
        }
        return; // resumed by `on_grant`
    }

    // Drain the batch.
    let k_max = {
        let qp = &w.clients[client].qps[server][lane];
        let avail = if qp.active {
            qp.credits.credits() as usize
        } else {
            usize::MAX // drain mode (deactivated QP finishing its work)
        };
        qp.pending.len().min(batch_limit).min(avail.max(1))
    };
    // The leader provides a bounded buffer budget "as per their requested
    // payload" (paper §4.2): large payloads crowd small ones out of the
    // batch, which is exactly the head-of-line blocking Algorithm 1
    // avoids by separating size classes.
    const BATCH_BYTE_BUDGET: usize = 2048;
    let (batch, msg_bytes, renewal): (Vec<ReqId>, usize, Option<u16>) = {
        let mut k = 0;
        let mut bytes = 0usize;
        while k < k_max {
            let id = w.clients[client].qps[server][lane].pending[k];
            let sz = w.reqs[id].size;
            if k > 0 && bytes + sz > BATCH_BYTE_BUDGET {
                break;
            }
            bytes += sz;
            k += 1;
        }
        let qp = &mut w.clients[client].qps[server][lane];
        let batch: Vec<ReqId> = qp.pending.drain(..k).collect();
        if qp.active {
            qp.credits.try_consume(k as u32);
        }
        qp.degrees.record(k as u32);
        qp.messages += 1;
        qp.requests += k as u64;
        let renewal = if qp.active && qp.credits.should_request_renewal() {
            qp.credits.mark_requested();
            let d = qp.degrees.median().clamp(1, u16::MAX as u32) as u16;
            qp.degrees.clear();
            Some(d)
        } else {
            None
        };
        (batch, 0usize, renewal)
    };
    let _ = msg_bytes;
    if now >= warmup {
        w.stats.degree.record(batch.len() as u64);
    }

    // Per-batch CPU: copy each payload + one doorbell for the message.
    let mut cpu = Ns(w.cost.cpu_doorbell_ns);
    let mut sizes = Vec::with_capacity(batch.len());
    for &id in &batch {
        cpu += w.cost.memcpy_time(w.reqs[id].size);
        sizes.push(w.reqs[id].size);
    }
    let bytes = msg::encoded_size(sizes);

    if let Some(degree) = renewal {
        transmit(
            w,
            sim,
            Some(w.clients[client].qps[server][lane].global_id),
            32,
            NetMsg::Renewal {
                client,
                server,
                lane,
                degree,
            },
        );
    }

    sim.after(cpu, move |w: &mut World, sim| {
        let key = w.clients[client].qps[server][lane].global_id;
        transmit(
            w,
            sim,
            Some(key),
            bytes,
            NetMsg::Request {
                client,
                server,
                lane,
                reqs: batch,
            },
        );
        // Hand leadership to the next batch, or go idle.
        let qp = &mut w.clients[client].qps[server][lane];
        if qp.pending.is_empty() {
            qp.state = LaneState::Idle;
        } else {
            let prep = lane_prep_time(w, client, server, lane);
            sim.after(prep, move |w: &mut World, sim| {
                lane_flush(w, sim, client, server, lane);
            });
        }
    });
}

/// A coalesced response message arrived at the client.
pub fn on_response_message(
    w: &mut World,
    sim: &mut Sim<World>,
    client: usize,
    _server: usize,
    _lane: usize,
    reqs: Vec<ReqId>,
) {
    let _ = client;
    // The response dispatcher relays entries to threads after its next
    // poll sweep; per-entry relay cost is small (it never touches the
    // RDMA stack).
    let sweep = Ns(w.cost.cpu_dispatcher_poll_ns);
    let per_entry = Ns(w.cost.cpu_ring_poll_ns);
    for (i, id) in reqs.into_iter().enumerate() {
        sim.after(
            sweep + per_entry * (i as u64 + 1),
            move |w: &mut World, sim| {
                complete_request(w, sim, id);
            },
        );
    }
}

/// A UD response packet arrived at the client.
pub fn on_ud_response(w: &mut World, sim: &mut Sim<World>, _client: usize, req: ReqId) {
    // Client pays the UD receive path per packet.
    let delay = w.cost.ud_rx_cpu();
    sim.after(delay, move |w: &mut World, sim| {
        complete_request(w, sim, req);
    });
}

/// A one-sided read finished (raw read or txn validation).
pub fn on_read_complete(w: &mut World, sim: &mut Sim<World>, _client: usize, req: ReqId) {
    if w.reqs[req].txn.is_some() {
        crate::coord::on_phase_done(w, sim, req);
        return;
    }
    // Raw read driver: record and immediately reissue (closed loop).
    let now = sim.now();
    w.record_completion(req, now);
    let r = w.reqs[req].clone();
    w.reqs[req].issued = now;
    let (client, server, key) = (r.client, r.server, r.key);
    transmit(
        w,
        sim,
        Some(key),
        r.size,
        NetMsg::ReadReq {
            client,
            server,
            qp_key: key,
            req,
        },
    );
}

/// A request completed end-to-end: record and refill the window.
pub fn complete_request(w: &mut World, sim: &mut Sim<World>, id: ReqId) {
    if w.reqs[id].txn.is_some() {
        crate::coord::on_phase_done(w, sim, id);
        return;
    }
    let now = sim.now();
    w.record_completion(id, now);
    let (client, thread) = (w.reqs[id].client, w.reqs[id].thread);
    w.release_req(id);
    let migrating = {
        let t = &mut w.clients[client].threads[thread];
        t.inflight -= 1;
        t.assigned_qp != t.target_qp
    };
    if migrating {
        // Migration safety (paper §5.2): stop issuing, drain the old QP,
        // then adopt the new assignment and resume the parked window.
        let t = &mut w.clients[client].threads[thread];
        t.parked += 1;
        if t.inflight == 0 {
            t.assigned_qp = t.target_qp.clone();
            let n = std::mem::take(&mut t.parked);
            for _ in 0..n {
                issue_one(w, sim, client, thread);
            }
        }
    } else {
        issue_one(w, sim, client, thread);
    }
}

/// A credit grant / decline / activation notice arrived.
pub fn on_grant(
    w: &mut World,
    sim: &mut Sim<World>,
    client: usize,
    server: usize,
    lane: usize,
    grant: Option<u32>,
) {
    let resume = {
        let qp = &mut w.clients[client].qps[server][lane];
        match grant {
            Some(n) if n > 0 => {
                if qp.active {
                    qp.credits.grant(n);
                } else {
                    qp.credits.reactivate(n);
                    qp.active = true;
                }
            }
            _ => {
                qp.credits.decline();
                qp.active = false;
            }
        }
        qp.state == LaneState::WaitCredits && !qp.pending.is_empty()
    };
    if resume {
        w.clients[client].qps[server][lane].state = LaneState::Busy;
        let prep = lane_prep_time(w, client, server, lane);
        sim.after(prep, move |w: &mut World, sim| {
            lane_flush(w, sim, client, server, lane);
        });
    } else if w.clients[client].qps[server][lane].state == LaneState::WaitCredits {
        w.clients[client].qps[server][lane].state = LaneState::Idle;
    }
}

/// Periodic sender-side thread scheduling (real Algorithm 1).
pub fn thread_sched_tick(w: &mut World, sim: &mut Sim<World>, client: usize) {
    let n_servers = w.servers.len();
    for server in 0..n_servers {
        let n_lanes = w.clients[client].qps[server].len();
        let n_threads = w.clients[client].threads.len();
        let active: Vec<usize> = w.clients[client].qps[server]
            .iter()
            .enumerate()
            .filter(|(_, q)| q.active)
            .map(|(i, _)| i)
            .collect();
        // Reactive scheduling (paper §5.2): with every lane active and
        // enough lanes for a 1:1 mapping, the initial assignment stands.
        if active.len() == n_lanes && n_threads <= n_lanes {
            continue;
        }
        let active = if active.is_empty() { vec![0] } else { active };
        let stats: Vec<ThreadLoadStats> = w.clients[client]
            .threads
            .iter_mut()
            .enumerate()
            .map(|(i, t)| ThreadLoadStats {
                thread_id: i as u32,
                median_req_size: t.sizes.median(),
                requests: t.reqs,
                bytes: t.bytes,
            })
            .collect();
        for (tid, rank) in assign_threads(&stats, active.len()) {
            w.clients[client].threads[tid as usize].target_qp[server] = active[rank];
        }
    }
    for t in w.clients[client].threads.iter_mut() {
        t.reqs = 0;
        t.bytes = 0;
    }
    let interval = Ns::from_micros(500);
    sim.after(interval, move |w: &mut World, sim| {
        thread_sched_tick(w, sim, client);
    });
}
