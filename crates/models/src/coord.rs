//! The transaction model: FlockTX / FaSST coordinators as event-driven
//! state machines over the network pipeline, executing *real* lock/version
//! logic against per-server key-value stores so that aborts emerge from
//! genuine conflicts.
//!
//! Each (client, thread, coroutine) triple owns one [`TxnSlot`] running a
//! closed loop of transactions through the phases of paper Fig. 13.
//! FlockTX validates read sets with one-sided reads; the FaSST model
//! validates with RPCs (UD has no one-sided verbs).

use std::collections::HashMap;

use flock_kvstore::{KvConfig, KvStore, LOCK_BIT};
use flock_sim::{Ns, Sim};
use flock_txn::protocol::{key_partition, replicas_of};
use flock_txn::workloads::{Smallbank, Tatp, TxnSpec};

use crate::net::{transmit, NetMsg};
use crate::world::{Req, ReqId, ReqKind, SystemKind, TxnPhase, World};

/// Which benchmark drives the transaction mix.
#[derive(Debug, Clone)]
pub enum TxnWorkload {
    /// TATP (read-intensive).
    Tatp(Tatp),
    /// Smallbank (write-intensive).
    Smallbank(Smallbank),
}

/// Shared transaction-engine state: the per-server stores and lock table.
pub struct TxnEngine {
    /// Primary store per server.
    pub stores: Vec<KvStore>,
    /// Lock ownership: `(server, key) → slot` (prevents foreign unlocks).
    pub lock_owners: HashMap<(usize, u64), usize>,
    /// The workload generator.
    pub workload: TxnWorkload,
    /// Validate with RPCs instead of one-sided reads (FaSST mode).
    pub validate_via_rpc: bool,
}

impl TxnEngine {
    /// Build an engine with `n_servers` stores, preloaded from the
    /// workload's load set.
    pub fn new(n_servers: usize, workload: TxnWorkload, validate_via_rpc: bool) -> TxnEngine {
        let stores: Vec<KvStore> = (0..n_servers)
            .map(|_| {
                KvStore::new(KvConfig {
                    partitions: 1,
                    stripes: 64,
                })
            })
            .collect();
        let load: Vec<(u64, Vec<u8>)> = match &workload {
            TxnWorkload::Tatp(t) => t.load_keys().collect(),
            TxnWorkload::Smallbank(s) => s.load_keys().collect(),
        };
        for (k, v) in load {
            stores[key_partition(k, n_servers)].put(k, &v);
        }
        TxnEngine {
            stores,
            lock_owners: HashMap::new(),
            workload,
            validate_via_rpc,
        }
    }
}

/// Coordinator-side phase of a transaction slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordPhase {
    /// Waiting for execute responses.
    Execute,
    /// Waiting for validation results.
    Validate,
    /// Waiting for replica ACKs.
    Log,
    /// Waiting for commit ACKs.
    Commit,
    /// Waiting for abort ACKs.
    Aborting,
}

/// One coroutine's transaction state.
#[derive(Debug)]
pub struct TxnSlot {
    /// Originating client.
    pub client: usize,
    /// Originating thread.
    pub thread: usize,
    /// Active transaction key sets.
    pub spec: TxnSpec,
    /// Start timestamp (for latency).
    pub started: Ns,
    /// Coordinator phase.
    pub phase: CoordPhase,
    /// Responses outstanding in the current phase.
    pub pending: usize,
    /// A conflict or validation failure happened.
    pub failed: bool,
    /// Read-set version words captured at execution.
    pub read_words: Vec<(usize, u64, u64)>,
    /// Servers where this slot holds write locks.
    pub locked_servers: Vec<usize>,
}

/// Create slots (`coroutines` per thread) and start every transaction.
pub fn start_all(w: &mut World, sim: &mut Sim<World>, coroutines: usize) {
    let n_clients = w.clients.len();
    for client in 0..n_clients {
        let n_threads = w.clients[client].threads.len();
        for thread in 0..n_threads {
            for _ in 0..coroutines {
                let slot = w.txns.len();
                w.txns.push(TxnSlot {
                    client,
                    thread,
                    spec: TxnSpec {
                        reads: vec![],
                        writes: vec![],
                        kind: "",
                    },
                    started: Ns::ZERO,
                    phase: CoordPhase::Execute,
                    pending: 0,
                    failed: false,
                    read_words: Vec::new(),
                    locked_servers: Vec::new(),
                });
                start_txn(w, sim, slot);
            }
        }
        if w.system == SystemKind::Flock && w.thread_sched {
            sim.after(Ns::from_micros(100), move |w: &mut World, sim| {
                crate::client::thread_sched_tick(w, sim, client);
            });
        }
    }
}

/// Begin a fresh transaction on `slot`.
pub fn start_txn(w: &mut World, sim: &mut Sim<World>, slot: usize) {
    let now = sim.now();
    let (client, thread) = (w.txns[slot].client, w.txns[slot].thread);
    let workload = w.txn_engine.as_ref().expect("txn engine").workload.clone();
    let spec = {
        let rng = &mut w.clients[client].threads[thread].rng;
        match &workload {
            TxnWorkload::Tatp(t) => t.next(rng),
            TxnWorkload::Smallbank(s) => s.next(rng),
        }
    };
    let n_servers = w.servers.len();
    let groups = group_keys(&spec, n_servers);
    {
        let s = &mut w.txns[slot];
        s.spec = spec;
        s.started = now;
        s.phase = CoordPhase::Execute;
        s.pending = groups.len();
        s.failed = false;
        s.read_words.clear();
        s.locked_servers.clear();
    }
    for (server, (reads, writes)) in groups {
        let n_keys = reads.len() + writes.len();
        issue_txn_rpc(
            w,
            sim,
            slot,
            server,
            TxnPhase::Execute,
            32 + 24 * n_keys,
            16 + 48 * n_keys,
        );
    }
}

/// Split a spec's keys by owning server.
fn group_keys(spec: &TxnSpec, n: usize) -> HashMap<usize, (Vec<u64>, Vec<u64>)> {
    let mut groups: HashMap<usize, (Vec<u64>, Vec<u64>)> = HashMap::new();
    for &k in &spec.reads {
        groups.entry(key_partition(k, n)).or_default().0.push(k);
    }
    for &k in &spec.writes {
        groups.entry(key_partition(k, n)).or_default().1.push(k);
    }
    groups
}

/// Issue one transaction-phase RPC through the active transport.
fn issue_txn_rpc(
    w: &mut World,
    sim: &mut Sim<World>,
    slot: usize,
    server: usize,
    phase: TxnPhase,
    size: usize,
    resp_size: usize,
) {
    let (client, thread) = (w.txns[slot].client, w.txns[slot].thread);
    let id = w.alloc_req(Req {
        issued: sim.now(),
        client,
        thread,
        server,
        size,
        resp_size,
        kind: ReqKind::Txn(phase),
        key: 0,
        txn: Some(slot),
    });
    crate::client::submit(w, sim, id);
}

/// Issue a one-sided validation read of `key`'s version word.
fn issue_validation_read(
    w: &mut World,
    sim: &mut Sim<World>,
    slot: usize,
    server: usize,
    key: u64,
) {
    let (client, thread) = (w.txns[slot].client, w.txns[slot].thread);
    let lane = w.clients[client].threads[thread].assigned_qp[server];
    let qp_key = w.clients[client].qps[server][lane].global_id;
    let id = w.alloc_req(Req {
        issued: sim.now(),
        client,
        thread,
        server,
        size: 8,
        resp_size: 8,
        kind: ReqKind::Read,
        key,
        txn: Some(slot),
    });
    transmit(
        w,
        sim,
        Some(qp_key),
        8,
        NetMsg::ReadReq {
            client,
            server,
            qp_key,
            req: id,
        },
    );
}

/// Nominal server CPU cost of a txn-phase request.
pub fn phase_cost(w: &World, phase: TxnPhase, id: ReqId) -> Ns {
    let slot = w.reqs[id].txn.expect("txn request");
    let server = w.reqs[id].server;
    let n = w.servers.len();
    let s = &w.txns[slot];
    let n_keys = match phase {
        TxnPhase::Execute => s
            .spec
            .reads
            .iter()
            .chain(s.spec.writes.iter())
            .filter(|&&k| key_partition(k, n) == server)
            .count(),
        TxnPhase::Validate => s
            .read_words
            .iter()
            .filter(|(sv, _, _)| *sv == server)
            .count(),
        TxnPhase::Log | TxnPhase::Commit | TxnPhase::Abort => s
            .spec
            .writes
            .iter()
            .filter(|&&k| key_partition(k, n) == server || phase == TxnPhase::Log)
            .count(),
    };
    crate::server::txn_phase_nominal(w, phase, n_keys.max(1))
}

/// Apply the server-side effects of a txn-phase request (real locks and
/// version words; paper §8.5.1).
pub fn serve_phase(w: &mut World, phase: TxnPhase, id: ReqId) {
    let slot = w.reqs[id].txn.expect("txn request");
    let server = w.reqs[id].server;
    let n = w.servers.len();
    let mut engine = w.txn_engine.take().expect("txn engine");
    {
        let s = &mut w.txns[slot];
        let store = &engine.stores[server];
        match phase {
            TxnPhase::Execute => {
                let writes: Vec<u64> = s
                    .spec
                    .writes
                    .iter()
                    .copied()
                    .filter(|&k| key_partition(k, n) == server)
                    .collect();
                let reads: Vec<u64> = s
                    .spec
                    .reads
                    .iter()
                    .copied()
                    .filter(|&k| key_partition(k, n) == server)
                    .collect();
                let mut acquired = Vec::new();
                let mut ok = true;
                for &k in &writes {
                    if store.try_lock(k) {
                        engine.lock_owners.insert((server, k), slot);
                        acquired.push(k);
                    } else {
                        ok = false;
                        break;
                    }
                }
                if !ok {
                    for k in acquired {
                        store.unlock(k);
                        engine.lock_owners.remove(&(server, k));
                    }
                    s.failed = true;
                } else {
                    if !writes.is_empty() {
                        s.locked_servers.push(server);
                    }
                    for &k in &reads {
                        let word = store.version_word(k).unwrap_or(0);
                        s.read_words.push((server, k, word));
                    }
                }
            }
            TxnPhase::Validate => {
                // FaSST-style RPC validation: check this server's read set.
                for (sv, k, word) in s.read_words.iter() {
                    if *sv != server {
                        continue;
                    }
                    match store.version_word(*k) {
                        Some(now_word) if now_word == *word && now_word & LOCK_BIT == 0 => {}
                        _ => s.failed = true,
                    }
                }
            }
            TxnPhase::Log => {
                // Replica append: modelled cost only (values are not
                // needed for the timing experiments).
            }
            TxnPhase::Commit => {
                for &k in s
                    .spec
                    .writes
                    .iter()
                    .filter(|&&k| key_partition(k, n) == server)
                {
                    if engine.lock_owners.get(&(server, k)) == Some(&slot) {
                        store.update_and_unlock(k, &(slot as u64).to_le_bytes());
                        engine.lock_owners.remove(&(server, k));
                    }
                }
            }
            TxnPhase::Abort => {
                for &k in s
                    .spec
                    .writes
                    .iter()
                    .filter(|&&k| key_partition(k, n) == server)
                {
                    if engine.lock_owners.get(&(server, k)) == Some(&slot) {
                        store.unlock(k);
                        engine.lock_owners.remove(&(server, k));
                    }
                }
            }
        }
    }
    w.txn_engine = Some(engine);
}

/// A phase response (or validation read) completed at the coordinator.
pub fn on_phase_done(w: &mut World, sim: &mut Sim<World>, id: ReqId) {
    let slot = w.reqs[id].txn.expect("txn request");
    // One-sided validation comparison happens at the coordinator.
    if w.reqs[id].kind == ReqKind::Read {
        let key = w.reqs[id].key;
        let server = w.reqs[id].server;
        let engine = w.txn_engine.as_ref().expect("txn engine");
        let expect = w.txns[slot]
            .read_words
            .iter()
            .find(|(sv, k, _)| *sv == server && *k == key)
            .map(|(_, _, word)| *word);
        let current = engine.stores[server].version_word(key);
        let ok = matches!((expect, current), (Some(e), Some(c)) if e == c && c & LOCK_BIT == 0);
        if !ok {
            w.txns[slot].failed = true;
        }
    }
    w.release_req(id);

    w.txns[slot].pending -= 1;
    if w.txns[slot].pending > 0 {
        return;
    }
    let phase = w.txns[slot].phase;
    let failed = w.txns[slot].failed;
    match phase {
        CoordPhase::Execute => {
            if failed {
                start_abort(w, sim, slot);
            } else if w.txns[slot].read_words.is_empty() {
                start_log(w, sim, slot);
            } else {
                start_validate(w, sim, slot);
            }
        }
        CoordPhase::Validate => {
            if failed {
                start_abort(w, sim, slot);
            } else {
                start_log(w, sim, slot);
            }
        }
        CoordPhase::Log => start_commit(w, sim, slot),
        CoordPhase::Commit => finish(w, sim, slot, true),
        CoordPhase::Aborting => finish(w, sim, slot, false),
    }
}

fn start_validate(w: &mut World, sim: &mut Sim<World>, slot: usize) {
    let validate_via_rpc = w.txn_engine.as_ref().expect("engine").validate_via_rpc;
    w.txns[slot].phase = CoordPhase::Validate;
    if validate_via_rpc {
        let servers: Vec<usize> = {
            let mut v: Vec<usize> = w.txns[slot].read_words.iter().map(|(s, _, _)| *s).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        w.txns[slot].pending = servers.len();
        for server in servers {
            issue_txn_rpc(w, sim, slot, server, TxnPhase::Validate, 32, 16);
        }
    } else {
        let reads: Vec<(usize, u64)> = w.txns[slot]
            .read_words
            .iter()
            .map(|(s, k, _)| (*s, *k))
            .collect();
        w.txns[slot].pending = reads.len();
        for (server, key) in reads {
            issue_validation_read(w, sim, slot, server, key);
        }
    }
}

fn start_log(w: &mut World, sim: &mut Sim<World>, slot: usize) {
    let n = w.servers.len();
    let write_groups: Vec<(usize, usize)> = {
        let groups = group_keys(&w.txns[slot].spec, n);
        groups
            .into_iter()
            .filter(|(_, (_, wr))| !wr.is_empty())
            .map(|(s, (_, wr))| (s, wr.len()))
            .collect()
    };
    if write_groups.is_empty() {
        // Read-only transaction: validated, done.
        finish(w, sim, slot, true);
        return;
    }
    w.txns[slot].phase = CoordPhase::Log;
    w.txns[slot].pending = write_groups.len() * 2;
    for (primary, n_keys) in write_groups {
        for replica in replicas_of(primary, n) {
            issue_txn_rpc(w, sim, slot, replica, TxnPhase::Log, 24 + 40 * n_keys, 16);
        }
    }
}

fn start_commit(w: &mut World, sim: &mut Sim<World>, slot: usize) {
    let n = w.servers.len();
    let write_groups: Vec<(usize, usize)> = {
        let groups = group_keys(&w.txns[slot].spec, n);
        groups
            .into_iter()
            .filter(|(_, (_, wr))| !wr.is_empty())
            .map(|(s, (_, wr))| (s, wr.len()))
            .collect()
    };
    w.txns[slot].phase = CoordPhase::Commit;
    w.txns[slot].pending = write_groups.len();
    for (primary, n_keys) in write_groups {
        issue_txn_rpc(
            w,
            sim,
            slot,
            primary,
            TxnPhase::Commit,
            24 + 40 * n_keys,
            16,
        );
    }
}

fn start_abort(w: &mut World, sim: &mut Sim<World>, slot: usize) {
    let locked: Vec<usize> = w.txns[slot].locked_servers.clone();
    if locked.is_empty() {
        finish(w, sim, slot, false);
        return;
    }
    w.txns[slot].phase = CoordPhase::Aborting;
    w.txns[slot].pending = locked.len();
    for server in locked {
        issue_txn_rpc(w, sim, slot, server, TxnPhase::Abort, 24, 16);
    }
}

fn finish(w: &mut World, sim: &mut Sim<World>, slot: usize, committed: bool) {
    let now = sim.now();
    if w.txns[slot].started >= w.warmup {
        if committed {
            w.stats.commits += 1;
            w.stats.completed.record(1);
            w.stats
                .latency
                .record((now - w.txns[slot].started).as_nanos());
        } else {
            w.stats.aborts += 1;
        }
    }
    start_txn(w, sim, slot);
}
