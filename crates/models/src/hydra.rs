//! The HydraList index service model (paper §8.6): a real index behind
//! modelled per-operation service times.

use flock_hydralist::{HydraConfig, HydraList};
use flock_sim::Ns;

/// The index application: a real `HydraList` plus nominal CPU costs.
pub struct HydraApp {
    index: HydraList,
    keyspace: u64,
    get_ns: u64,
    scan_ns: u64,
    /// Operations actually executed (observability).
    pub executed: u64,
}

impl HydraApp {
    /// Build and preload an index with `keys` entries (8 B keys/values,
    /// like the paper's 32 M-key setup, scaled to fit the test machine).
    pub fn new(keys: u64) -> HydraApp {
        let index = HydraList::new(HydraConfig::default());
        for k in 0..keys {
            index.insert(k, k.wrapping_mul(0x9E37_79B9));
        }
        HydraApp {
            index,
            keyspace: keys,
            // Point lookup: search-layer descent + node binary search.
            get_ns: 380,
            // Scan of 64: locate + walk ~1 node boundary + 64 copies.
            scan_ns: 380 + 64 * 16,
            executed: 0,
        }
    }

    /// Key universe size.
    pub fn keyspace(&self) -> u64 {
        self.keyspace
    }

    /// Nominal CPU time of a get.
    pub fn get_cost(&self) -> Ns {
        Ns(self.get_ns)
    }

    /// Nominal CPU time of a scan(64).
    pub fn scan_cost(&self) -> Ns {
        Ns(self.scan_ns)
    }

    /// Execute the real operation (the server replies with an 8 B count,
    /// so results only feed this sanity check).
    pub fn execute(&mut self, key: u64, is_scan: bool) {
        self.executed += 1;
        if is_scan {
            let out = self.index.scan(key, 64);
            debug_assert!(out.len() <= 64);
        } else {
            let _ = self.index.get(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preload_and_execute() {
        let mut app = HydraApp::new(1000);
        assert_eq!(app.keyspace(), 1000);
        app.execute(10, false);
        app.execute(10, true);
        assert_eq!(app.executed, 2);
        assert!(app.scan_cost() > app.get_cost());
    }
}
