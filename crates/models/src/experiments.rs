//! Per-figure experiment drivers: world builders, run loops, and reports.

use flock_core::credit::{CreditState, MedianWindow};
use flock_core::sched::qp::{QpScheduler, QpSchedulerConfig};
use flock_fabric::cache::Eviction;
use flock_fabric::{ConnCache, CostModel};
use flock_sim::{BankedServer, MultiServer, Ns, Sim, SimRng};

use crate::coord::{TxnEngine, TxnWorkload};
use crate::hydra::HydraApp;
use crate::net::{transmit, NetMsg};
use crate::world::{
    AppLogic, ClientNode, LaneState, QpModel, Req, ReqKind, ServerNode, Stats, SystemKind,
    ThreadModel, World,
};

/// What a run measured.
#[derive(Debug, Clone)]
pub struct Report {
    /// Millions of completed operations (or transactions) per second.
    pub mops: f64,
    /// Median end-to-end latency, microseconds.
    pub median_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Mean coalescing degree (requests per message), 0 for UD.
    pub degree: f64,
    /// Server NIC connection-cache hit ratio.
    pub cache_hit: f64,
    /// Server core-pool utilization in [0, 1].
    pub server_cpu: f64,
    /// Client→server messages on the wire.
    pub messages: u64,
    /// Client→server packets on the wire.
    pub packets: u64,
    /// Transaction commits (txn runs).
    pub commits: u64,
    /// Transaction aborts (txn runs).
    pub aborts: u64,
    /// Median get latency (index runs), microseconds.
    pub get_median_us: f64,
    /// p99 get latency (index runs), microseconds.
    pub get_p99_us: f64,
    /// Median scan latency (index runs), microseconds.
    pub scan_median_us: f64,
    /// p99 scan latency (index runs), microseconds.
    pub scan_p99_us: f64,
}

/// Configuration for the RPC-family experiments (Figures 2(b), 6–12,
/// 16–18).
#[derive(Clone)]
pub struct RpcConfig {
    /// The client stack.
    pub system: SystemKind,
    /// Number of client nodes.
    pub n_clients: usize,
    /// Application threads per client.
    pub threads_per_client: usize,
    /// Closed-loop outstanding requests per thread.
    pub outstanding: usize,
    /// Request payload bytes.
    pub req_size: usize,
    /// QP lanes per client (connected systems).
    pub lanes_per_client: usize,
    /// TCQ batch bound (1 disables coalescing).
    pub batch_limit: usize,
    /// Server `MAX_AQP` (Flock only).
    pub max_aqp: usize,
    /// Credits per grant (`C`, paper default 32).
    pub grant_size: u32,
    /// Whether the Flock receiver-side QP scheduler and credits run.
    pub scheduling: bool,
    /// Whether the sender-side thread scheduler (Algorithm 1) runs.
    pub thread_sched: bool,
    /// Server CPU cores.
    pub server_cores: usize,
    /// Per-request handler cost (echo app).
    pub handler_ns: u64,
    /// Fraction of threads sending `large_size` requests (Figure 11).
    pub large_fraction: f64,
    /// Large request size (Figure 11).
    pub large_size: usize,
    /// Virtual measurement window (after warmup).
    pub duration: Ns,
    /// Virtual warmup.
    pub warmup: Ns,
    /// Experiment seed.
    pub seed: u64,
    /// Cost model.
    pub cost: CostModel,
    /// Index service size (None = echo app).
    pub hydra_keys: Option<u64>,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            system: SystemKind::Flock,
            n_clients: 23,
            threads_per_client: 8,
            outstanding: 1,
            req_size: 64,
            lanes_per_client: 8,
            batch_limit: 16,
            max_aqp: 256,
            grant_size: 32,
            scheduling: true,
            thread_sched: true,
            server_cores: 32,
            handler_ns: 260,
            large_fraction: 0.0,
            large_size: 1024,
            duration: Ns::from_millis(10),
            warmup: Ns::from_millis(3),
            seed: 42,
            cost: CostModel::default(),
            hydra_keys: None,
        }
    }
}

fn build_server(cost: &CostModel, cores: usize, max_aqp: usize, grant_size: u32) -> ServerNode {
    ServerNode {
        nic: BankedServer::new(cost.nic_processing_units),
        cache: ConnCache::with_policy(cost.nic_cache_entries, Eviction::Random, 0xFEED),
        tx_link: MultiServer::new(1),
        rx_link: MultiServer::new(1),
        cores: MultiServer::new(cores),
        sched_cpu: MultiServer::new(1),
        qp_sched: QpScheduler::new(QpSchedulerConfig {
            max_aqp,
            grant_size,
        }),
    }
}

fn build_world(cfg: &RpcConfig, n_servers: usize) -> World {
    let mut rng = SimRng::new(cfg.seed);
    let mut servers: Vec<ServerNode> = (0..n_servers)
        .map(|_| build_server(&cfg.cost, cfg.server_cores, cfg.max_aqp, cfg.grant_size))
        .collect();

    let mut clients = Vec::with_capacity(cfg.n_clients);
    for c in 0..cfg.n_clients {
        let mut qps_per_server = Vec::with_capacity(n_servers);
        for s in 0..n_servers {
            let mut lanes = Vec::with_capacity(cfg.lanes_per_client);
            for l in 0..cfg.lanes_per_client {
                lanes.push(QpModel {
                    global_id: World::qp_global_id(c, s, l),
                    server: s,
                    pending: Default::default(),
                    state: LaneState::Idle,
                    credits: if cfg.system == SystemKind::Flock && cfg.scheduling {
                        CreditState::new(cfg.grant_size)
                    } else {
                        CreditState::new(u32::MAX / 2)
                    },
                    degrees: MedianWindow::new(64),
                    active: true,
                    messages: 0,
                    requests: 0,
                    srv_pending: Default::default(),
                    srv_busy: false,
                });
            }
            qps_per_server.push(lanes);
        }
        let n_large = (cfg.threads_per_client as f64 * cfg.large_fraction).round() as usize;
        let threads = (0..cfg.threads_per_client)
            .map(|t| ThreadModel {
                assigned_qp: vec![t % cfg.lanes_per_client.max(1); n_servers],
                target_qp: vec![t % cfg.lanes_per_client.max(1); n_servers],
                parked: 0,
                inflight: 0,
                bytes: 0,
                reqs: 0,
                sizes: MedianWindow::new(64),
                rng: rng.fork(t as u64 * 1000 + c as u64),
                req_size: if t >= cfg.threads_per_client - n_large {
                    cfg.large_size
                } else {
                    cfg.req_size
                },
                next_free: Ns::ZERO,
                submit_queue: Default::default(),
                submitting: false,
            })
            .collect();
        clients.push(ClientNode {
            nic: BankedServer::new(cfg.cost.nic_processing_units),
            tx_link: MultiServer::new(1),
            rx_link: MultiServer::new(1),
            qps: qps_per_server,
            threads,
        });
    }

    // Register senders with the scheduler; adopt its initial active set.
    if cfg.system == SystemKind::Flock && cfg.scheduling {
        for (s, server) in servers.iter_mut().enumerate() {
            for (c, client) in clients.iter_mut().enumerate() {
                server
                    .qp_sched
                    .register_sender(c as u32, cfg.lanes_per_client);
                let map = server.qp_sched.active_map(c as u32).expect("registered");
                for (l, active) in map.into_iter().enumerate() {
                    client.qps[s][l].active = active;
                }
            }
        }
    }

    let app = match cfg.hydra_keys {
        Some(keys) => AppLogic::Hydra(HydraApp::new(keys)),
        None => AppLogic::Echo,
    };

    World {
        cost: cfg.cost.clone(),
        rng,
        system: cfg.system,
        clients,
        servers,
        reqs: Vec::new(),
        free: Vec::new(),
        stats: Stats::default(),
        warmup: cfg.warmup,
        batch_limit: cfg.batch_limit,
        thread_sched: cfg.thread_sched,
        outstanding: cfg.outstanding,
        handler_ns: cfg.handler_ns,
        app,
        txns: Vec::new(),
        txn_engine: None,
    }
}

fn finish_run(w: &World, elapsed: Ns) -> Report {
    let total_lanes: usize = w
        .clients
        .iter()
        .map(|c| c.qps.iter().map(|q| q.len()).sum::<usize>())
        .sum();
    let _ = total_lanes;
    let cache_hit = {
        let (h, m) = w.servers.iter().fold((0u64, 0u64), |(h, m), s| {
            (h + s.cache.hits(), m + s.cache.misses())
        });
        if h + m == 0 {
            1.0
        } else {
            h as f64 / (h + m) as f64
        }
    };
    Report {
        mops: w.stats.completed.mops(elapsed),
        median_us: w.stats.latency.median_us(),
        p99_us: w.stats.latency.p99_us(),
        degree: w.stats.degree.mean(),
        cache_hit,
        server_cpu: w.servers[0].cores.utilization(elapsed + w.warmup),
        messages: w.stats.messages,
        packets: w.stats.packets,
        commits: w.stats.commits,
        aborts: w.stats.aborts,
        get_median_us: w.stats.get_latency.median_us(),
        get_p99_us: w.stats.get_latency.p99_us(),
        scan_median_us: w.stats.scan_latency.median_us(),
        scan_p99_us: w.stats.scan_latency.p99_us(),
    }
}

/// Like [`run_rpc`] but also returns client 0's thread→lane map and lane
/// active flags (debug/diagnostics).
pub fn run_rpc_debug(cfg: &RpcConfig) -> (Report, Vec<usize>, Vec<bool>, usize, u64) {
    let mut w = build_world(cfg, 1);
    let mut sim: Sim<World> = Sim::new();
    sim.at(Ns::ZERO, |w: &mut World, sim| {
        crate::client::start_all_threads(w, sim);
    });
    if cfg.system == SystemKind::Flock && cfg.scheduling {
        sim.at(Ns::from_millis(1), move |w: &mut World, sim| {
            crate::server::qp_sched_tick(w, sim, 0, Ns::from_millis(1));
        });
    }
    let t_end = cfg.warmup + cfg.duration;
    sim.run_until(&mut w, t_end);
    let map = w.clients[0]
        .threads
        .iter()
        .map(|t| t.assigned_qp[0])
        .collect();
    let active = w.clients[0].qps[0].iter().map(|q| q.active).collect();
    let total_active = w.servers[0].qp_sched.total_active();
    (
        finish_run(&w, cfg.duration),
        map,
        active,
        total_active,
        w.stats.grants_sent,
    )
}

/// Run an RPC-family experiment (echo or index app).
pub fn run_rpc(cfg: &RpcConfig) -> Report {
    let mut w = build_world(cfg, 1);
    let mut sim: Sim<World> = Sim::new();
    sim.at(Ns::ZERO, |w: &mut World, sim| {
        crate::client::start_all_threads(w, sim);
    });
    if cfg.system == SystemKind::Flock && cfg.scheduling {
        sim.at(Ns::from_millis(1), move |w: &mut World, sim| {
            crate::server::qp_sched_tick(w, sim, 0, Ns::from_millis(1));
        });
    }
    let t_end = cfg.warmup + cfg.duration;
    sim.run_until(&mut w, t_end);
    finish_run(&w, cfg.duration)
}

/// Configuration for the raw RC-read sweep (Figure 2(a)).
#[derive(Clone)]
pub struct RawReadConfig {
    /// Number of client nodes (paper: 22).
    pub n_clients: usize,
    /// Total QPs across all clients.
    pub total_qps: usize,
    /// Outstanding reads per QP.
    pub outstanding_per_qp: usize,
    /// Read size in bytes (paper: 16).
    pub read_size: usize,
    /// Measurement window.
    pub duration: Ns,
    /// Warmup.
    pub warmup: Ns,
    /// Cost model.
    pub cost: CostModel,
}

impl Default for RawReadConfig {
    fn default() -> Self {
        RawReadConfig {
            n_clients: 22,
            total_qps: 176,
            outstanding_per_qp: 2,
            read_size: 16,
            duration: Ns::from_millis(5),
            warmup: Ns::from_millis(1),
            cost: CostModel::default(),
        }
    }
}

/// Run the raw one-sided read experiment (Figure 2(a)).
pub fn run_raw_read(cfg: &RawReadConfig) -> Report {
    let rpc_cfg = RpcConfig {
        system: SystemKind::NoShare,
        n_clients: cfg.n_clients,
        threads_per_client: 1,
        lanes_per_client: cfg.total_qps.div_ceil(cfg.n_clients),
        scheduling: false,
        duration: cfg.duration,
        warmup: cfg.warmup,
        cost: cfg.cost.clone(),
        ..RpcConfig::default()
    };
    let mut w = build_world(&rpc_cfg, 1);
    let mut sim: Sim<World> = Sim::new();
    let per_client = cfg.total_qps.div_ceil(cfg.n_clients);
    let n_clients = cfg.n_clients;
    let outstanding = cfg.outstanding_per_qp;
    let read_size = cfg.read_size;
    let mut assigned = 0usize;
    let total = cfg.total_qps;
    sim.at(Ns::ZERO, move |w: &mut World, sim| {
        for client in 0..n_clients {
            for lane in 0..per_client {
                if assigned >= total {
                    break;
                }
                assigned += 1;
                let key = w.clients[client].qps[0][lane].global_id;
                for _ in 0..outstanding {
                    let id = w.alloc_req(Req {
                        issued: sim.now(),
                        client,
                        thread: 0,
                        server: 0,
                        size: 32,
                        resp_size: read_size,
                        kind: ReqKind::Read,
                        key,
                        txn: None,
                    });
                    transmit(
                        w,
                        sim,
                        Some(key),
                        32,
                        NetMsg::ReadReq {
                            client,
                            server: 0,
                            qp_key: key,
                            req: id,
                        },
                    );
                }
            }
        }
    });
    let t_end = cfg.warmup + cfg.duration;
    sim.run_until(&mut w, t_end);
    finish_run(&w, cfg.duration)
}

/// Configuration for the transaction experiments (Figures 14–15).
#[derive(Clone)]
pub struct TxnConfig {
    /// Base RPC/system configuration.
    pub rpc: RpcConfig,
    /// Number of servers (paper: 3).
    pub n_servers: usize,
    /// Coroutines per thread submitting transactions (paper: 19 of 20).
    pub coroutines: usize,
    /// The workload.
    pub workload: TxnWorkload,
    /// Validate with RPCs (FaSST) instead of one-sided reads (FlockTX).
    pub validate_via_rpc: bool,
}

/// Run a transaction experiment.
pub fn run_txn(cfg: &TxnConfig) -> Report {
    let mut w = build_world(&cfg.rpc, cfg.n_servers);
    w.app = AppLogic::Txn;
    w.txn_engine = Some(TxnEngine::new(
        cfg.n_servers,
        cfg.workload.clone(),
        cfg.validate_via_rpc,
    ));
    let mut sim: Sim<World> = Sim::new();
    let coroutines = cfg.coroutines;
    sim.at(Ns::ZERO, move |w: &mut World, sim| {
        crate::coord::start_all(w, sim, coroutines);
    });
    if cfg.rpc.system == SystemKind::Flock && cfg.rpc.scheduling {
        for s in 0..cfg.n_servers {
            sim.at(Ns::from_millis(1), move |w: &mut World, sim| {
                crate::server::qp_sched_tick(w, sim, s, Ns::from_millis(1));
            });
        }
    }
    let t_end = cfg.rpc.warmup + cfg.rpc.duration;
    sim.run_until(&mut w, t_end);
    finish_run(&w, cfg.rpc.duration)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(cfg: &mut RpcConfig) {
        cfg.duration = Ns::from_millis(2);
        cfg.warmup = Ns::from_millis(1);
        cfg.n_clients = 4;
    }

    #[test]
    fn flock_echo_run_produces_throughput() {
        let mut cfg = RpcConfig::default();
        quick(&mut cfg);
        cfg.threads_per_client = 4;
        cfg.lanes_per_client = 4;
        let r = run_rpc(&cfg);
        assert!(r.mops > 0.1, "mops={}", r.mops);
        assert!(r.median_us > 0.5, "median={}", r.median_us);
        assert!(r.p99_us >= r.median_us);
    }

    #[test]
    fn ud_echo_run_produces_throughput() {
        let mut cfg = RpcConfig::default();
        quick(&mut cfg);
        cfg.system = SystemKind::UdRpc;
        cfg.threads_per_client = 4;
        let r = run_rpc(&cfg);
        assert!(r.mops > 0.1, "mops={}", r.mops);
        assert_eq!(r.degree, 0.0, "UD cannot coalesce");
    }

    #[test]
    fn flock_coalesces_under_contention() {
        let mut cfg = RpcConfig::default();
        quick(&mut cfg);
        cfg.threads_per_client = 16;
        cfg.lanes_per_client = 2; // heavy sharing
        cfg.outstanding = 8;
        let r = run_rpc(&cfg);
        assert!(r.degree > 1.2, "degree={}", r.degree);
    }

    #[test]
    fn lockshare_never_coalesces() {
        let mut cfg = RpcConfig::default();
        quick(&mut cfg);
        cfg.system = SystemKind::LockShare;
        cfg.scheduling = false;
        cfg.threads_per_client = 8;
        cfg.lanes_per_client = 2;
        cfg.outstanding = 8;
        cfg.batch_limit = 1;
        let r = run_rpc(&cfg);
        assert!((r.degree - 1.0).abs() < 1e-9, "degree={}", r.degree);
    }

    #[test]
    fn raw_read_thrashes_beyond_cache_capacity() {
        let mut small = RawReadConfig::default();
        small.total_qps = 176;
        small.duration = Ns::from_millis(2);
        small.warmup = Ns::from_millis(1);
        let mut big = small.clone();
        big.total_qps = 2816;
        let r_small = run_raw_read(&small);
        let r_big = run_raw_read(&big);
        assert!(r_small.cache_hit > 0.95, "hit={}", r_small.cache_hit);
        assert!(r_big.cache_hit < 0.6, "hit={}", r_big.cache_hit);
        assert!(
            r_small.mops > r_big.mops * 1.5,
            "no thrash: {} vs {}",
            r_small.mops,
            r_big.mops
        );
    }

    #[test]
    fn txn_smallbank_commits_and_aborts() {
        let mut rpc = RpcConfig::default();
        rpc.n_clients = 4;
        rpc.threads_per_client = 2;
        rpc.lanes_per_client = 2;
        rpc.duration = Ns::from_millis(2);
        rpc.warmup = Ns::from_millis(1);
        let cfg = TxnConfig {
            rpc,
            n_servers: 3,
            coroutines: 4,
            workload: TxnWorkload::Smallbank(flock_txn::Smallbank::new(100)),
            validate_via_rpc: false,
        };
        let r = run_txn(&cfg);
        assert!(r.commits > 100, "commits={}", r.commits);
        // Hot 4% of 100 accounts = 4 accounts with 90% of traffic: real
        // lock conflicts must produce aborts.
        assert!(r.aborts > 0, "aborts={}", r.aborts);
    }

    #[test]
    fn txn_tatp_mostly_read_commits() {
        let mut rpc = RpcConfig::default();
        rpc.n_clients = 4;
        rpc.threads_per_client = 2;
        rpc.lanes_per_client = 2;
        rpc.duration = Ns::from_millis(2);
        rpc.warmup = Ns::from_millis(1);
        let cfg = TxnConfig {
            rpc,
            n_servers: 3,
            coroutines: 4,
            workload: TxnWorkload::Tatp(flock_txn::Tatp::new(10_000)),
            validate_via_rpc: false,
        };
        let r = run_txn(&cfg);
        assert!(r.commits > 100, "commits={}", r.commits);
        let abort_rate = r.aborts as f64 / (r.commits + r.aborts) as f64;
        assert!(abort_rate < 0.05, "abort rate {abort_rate}");
    }

    #[test]
    fn hydra_index_run() {
        let mut cfg = RpcConfig::default();
        quick(&mut cfg);
        cfg.threads_per_client = 4;
        cfg.hydra_keys = Some(100_000);
        let r = run_rpc(&cfg);
        assert!(r.mops > 0.1);
        assert!(r.scan_median_us > 0.0);
        assert!(r.get_median_us > 0.0);
        assert!(
            r.scan_median_us >= r.get_median_us,
            "scans are heavier than gets"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let mut cfg = RpcConfig::default();
        quick(&mut cfg);
        cfg.threads_per_client = 4;
        let a = run_rpc(&cfg);
        let b = run_rpc(&cfg);
        assert_eq!(a.mops, b.mops);
        assert_eq!(a.median_us, b.median_us);
        assert_eq!(a.messages, b.messages);
    }
}
