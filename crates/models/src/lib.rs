#![warn(missing_docs)]

//! # flock-models
//!
//! Discrete-event models of the Flock paper's evaluation clusters (see
//! DESIGN.md §2 for the substitution rationale: the figures depend on
//! hardware parallelism — RNIC processing units, a connection-state cache,
//! 32-core servers, 24 nodes — that cannot exist on the test machine, so
//! they are reproduced in virtual time).
//!
//! The models reuse the *real* Flock policy code: the message codec, the
//! credit state machine, the receiver-side QP scheduler, and Algorithm 1
//! all come from [`flock_core`]; the transaction experiments run real
//! lock/version logic from [`flock_kvstore`]; the index experiments run a
//! real [`flock_hydralist`] index. Only time is simulated.
//!
//! Entry points live in [`experiments`]: [`experiments::run_rpc`],
//! [`experiments::run_raw_read`], and [`experiments::run_txn`].

pub mod client;
pub mod coord;
pub mod experiments;
pub mod hydra;
pub mod net;
pub mod server;
pub mod world;

pub use experiments::{
    run_raw_read, run_rpc, run_txn, RawReadConfig, Report, RpcConfig, TxnConfig,
};
pub use world::SystemKind;
