//! The simulation world: nodes, requests, statistics.
//!
//! One `World` type covers every experiment family (raw verbs, RPC
//! systems, transactions, the index service); per-experiment drivers in
//! [`crate::experiments`] configure the relevant parts. All model state is
//! deterministic: randomness flows from the experiment seed.

use std::collections::VecDeque;

use flock_core::credit::{CreditState, MedianWindow};
use flock_core::sched::qp::QpScheduler;
use flock_fabric::{ConnCache, CostModel};
use flock_sim::{BankedServer, Counter, Histogram, MultiServer, Ns, SimRng};

/// Which communication system a client stack models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Flock: TCQ coalescing + credits + symbiotic scheduling.
    Flock,
    /// FaRM-style lock-shared RC QPs (no coalescing).
    LockShare,
    /// One dedicated RC QP per thread (no sharing).
    NoShare,
    /// eRPC/FaSST-style UD RPC.
    UdRpc,
}

/// Identifies a request in the world's slab.
pub type ReqId = usize;

/// What a request is for (drives service time and per-kind stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Plain RPC with fixed handler cost.
    Echo,
    /// Index point lookup.
    Get,
    /// Index range scan.
    Scan,
    /// Transaction phase RPC (execute/log/commit/abort).
    Txn(TxnPhase),
    /// One-sided read (raw or validation).
    Read,
}

/// Transaction phases (paper Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnPhase {
    /// Execution: lock writes, read values.
    Execute,
    /// One-sided validation read.
    Validate,
    /// Log to a replica.
    Log,
    /// Commit on a primary.
    Commit,
    /// Abort (unlock).
    Abort,
}

/// A request in flight.
#[derive(Debug, Clone)]
pub struct Req {
    /// Issue timestamp (for latency).
    pub issued: Ns,
    /// Originating client index.
    pub client: usize,
    /// Originating thread index within the client.
    pub thread: usize,
    /// Destination server index.
    pub server: usize,
    /// Request payload bytes.
    pub size: usize,
    /// Response payload bytes.
    pub resp_size: usize,
    /// What this request is.
    pub kind: ReqKind,
    /// Key targeted by the request (index/raw experiments).
    pub key: u64,
    /// Owning transaction slot (txn experiments).
    pub txn: Option<usize>,
}

/// State of a QP lane's send side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneState {
    /// No leader active.
    Idle,
    /// A leader is preparing or sending a batch.
    Busy,
    /// A leader is parked waiting for a credit grant.
    WaitCredits,
}

/// Closed-loop generator state for one application thread.
#[derive(Debug)]
pub struct ThreadModel {
    /// The QP lane this thread currently submits on, per server.
    pub assigned_qp: Vec<usize>,
    /// The scheduler's target lane, per server. Adopted only once the
    /// thread has drained its outstanding requests (migration safety,
    /// paper §5.2).
    pub target_qp: Vec<usize>,
    /// Refills withheld while draining for a migration.
    pub parked: usize,
    /// Requests currently in flight.
    pub inflight: usize,
    /// Stats for Algorithm 1 since the last scheduling pass.
    pub bytes: u64,
    /// Requests since the last scheduling pass.
    pub reqs: u64,
    /// Median request size tracker.
    pub sizes: MedianWindow,
    /// Per-thread RNG (workload draws).
    pub rng: SimRng,
    /// Fixed request size for this thread (mixed-size experiments).
    pub req_size: usize,
    /// The thread's CPU is busy submitting until this instant: a thread
    /// that just led a flush cannot enqueue its next request behind
    /// itself (it is single-threaded), so its own outstanding requests
    /// never self-coalesce.
    pub next_free: Ns,
    /// Requests issued but not yet handed to the transport (the thread
    /// submits them one at a time).
    pub submit_queue: VecDeque<ReqId>,
    /// A submit event is scheduled.
    pub submitting: bool,
}

/// One QP lane of a client connection (Flock / lock-share model).
#[derive(Debug)]
pub struct QpModel {
    /// Globally unique QP id (cache key on the server NIC).
    pub global_id: u64,
    /// Destination server.
    pub server: usize,
    /// Requests waiting for the next batch.
    pub pending: VecDeque<ReqId>,
    /// Send-side state.
    pub state: LaneState,
    /// Credit state (real Flock code).
    pub credits: CreditState,
    /// Coalescing degrees since the last renewal (for the report).
    pub degrees: MedianWindow,
    /// Whether the server scheduler keeps this QP active.
    pub active: bool,
    /// Messages sent on this QP (coalescing accounting).
    pub messages: u64,
    /// Requests sent on this QP.
    pub requests: u64,
    /// Server-side: requests landed in this lane's ring, not yet picked
    /// up by a dispatcher sweep.
    pub srv_pending: VecDeque<ReqId>,
    /// Server-side: a dispatcher is currently processing this lane.
    pub srv_busy: bool,
}

/// A client node: its NIC, link, QP lanes and threads.
#[derive(Debug)]
pub struct ClientNode {
    /// NIC processing units.
    pub nic: BankedServer,
    /// Egress/ingress link serialization (full duplex: two stations).
    pub tx_link: MultiServer,
    /// Ingress link.
    pub rx_link: MultiServer,
    /// QP lanes to each server: `qps[server][lane]`.
    pub qps: Vec<Vec<QpModel>>,
    /// Application threads.
    pub threads: Vec<ThreadModel>,
}

/// A server node.
#[derive(Debug)]
pub struct ServerNode {
    /// NIC processing units.
    pub nic: BankedServer,
    /// NIC connection cache.
    pub cache: ConnCache,
    /// Egress link.
    pub tx_link: MultiServer,
    /// Ingress link.
    pub rx_link: MultiServer,
    /// CPU cores handling requests.
    pub cores: MultiServer,
    /// The scheduler thread (credit handling + redistribution).
    pub sched_cpu: MultiServer,
    /// Receiver-side QP scheduler (real Flock code).
    pub qp_sched: QpScheduler,
}

/// Aggregated measurements (recorded only after warmup).
#[derive(Debug, Default)]
pub struct Stats {
    /// Completed requests (transactions in txn experiments).
    pub completed: Counter,
    /// End-to-end request latency.
    pub latency: Histogram,
    /// Latency of index gets.
    pub get_latency: Histogram,
    /// Latency of index scans.
    pub scan_latency: Histogram,
    /// Coalescing degree per message.
    pub degree: Histogram,
    /// Messages that crossed the wire client→server.
    pub messages: u64,
    /// Wire packets client→server.
    pub packets: u64,
    /// Grant/decline notices sent by servers.
    pub grants_sent: u64,
    /// Transaction aborts.
    pub aborts: u64,
    /// Transaction commits.
    pub commits: u64,
}

/// The world.
pub struct World {
    /// Timing constants.
    pub cost: CostModel,
    /// World RNG (forked into threads).
    pub rng: SimRng,
    /// Which client stack is being modelled.
    pub system: SystemKind,
    /// Clients.
    pub clients: Vec<ClientNode>,
    /// Servers.
    pub servers: Vec<ServerNode>,
    /// Request slab (never shrinks; slots recycled via `free`).
    pub reqs: Vec<Req>,
    /// Recycled request slots.
    pub free: Vec<ReqId>,
    /// Measurements.
    pub stats: Stats,
    /// Measurement starts here.
    pub warmup: Ns,
    /// TCQ batch bound (1 disables coalescing).
    pub batch_limit: usize,
    /// Run the sender-side thread scheduler (Algorithm 1).
    pub thread_sched: bool,
    /// Closed-loop outstanding requests per thread.
    pub outstanding: usize,
    /// Extra per-request server CPU cost.
    pub handler_ns: u64,
    /// Per-request response handler (experiment-specific app logic).
    pub app: AppLogic,
    /// Transaction slots (txn experiments).
    pub txns: Vec<crate::coord::TxnSlot>,
    /// Shared transaction engine state (txn experiments).
    pub txn_engine: Option<crate::coord::TxnEngine>,
}

/// Server-side application logic.
pub enum AppLogic {
    /// Fixed-cost echo (cost from `World::handler_ns`).
    Echo,
    /// HydraList service: real index, modelled service times.
    Hydra(crate::hydra::HydraApp),
    /// FlockTX/FaSST servers: real `TxnServer` logic per partition.
    Txn,
}

impl World {
    /// Allocate a request slot.
    pub fn alloc_req(&mut self, req: Req) -> ReqId {
        if let Some(id) = self.free.pop() {
            self.reqs[id] = req;
            id
        } else {
            self.reqs.push(req);
            self.reqs.len() - 1
        }
    }

    /// Release a request slot.
    pub fn release_req(&mut self, id: ReqId) {
        self.free.push(id);
    }

    /// Global QP id for the server NIC cache.
    pub fn qp_global_id(client: usize, server: usize, lane: usize) -> u64 {
        ((client as u64) << 24) | ((server as u64) << 12) | lane as u64
    }

    /// Record a completed request at `now`.
    pub fn record_completion(&mut self, id: ReqId, now: Ns) {
        let req = &self.reqs[id];
        if req.issued >= self.warmup {
            let lat = (now - req.issued).as_nanos();
            self.stats.completed.record(req.size as u64);
            self.stats.latency.record(lat);
            match req.kind {
                ReqKind::Get => self.stats.get_latency.record(lat),
                ReqKind::Scan => self.stats.scan_latency.record(lat),
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qp_global_ids_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in 0..50 {
            for s in 0..4 {
                for l in 0..16 {
                    assert!(seen.insert(World::qp_global_id(c, s, l)));
                }
            }
        }
    }
}
