//! The network pipeline: client NIC → link → wire → peer link → peer NIC,
//! with connection-cache charging at the server NIC — plus the central
//! delivery dispatcher.

use flock_sim::{Ns, Sim};

use crate::world::{ReqId, World};

/// A message travelling through the modelled network.
#[derive(Debug, Clone)]
pub enum NetMsg {
    /// A (possibly coalesced) request message on a QP lane.
    Request {
        /// Source client.
        client: usize,
        /// Destination server.
        server: usize,
        /// QP lane index at the client (per server).
        lane: usize,
        /// The coalesced requests.
        reqs: Vec<ReqId>,
    },
    /// The coalesced response message.
    Response {
        /// Destination client.
        client: usize,
        /// Source server.
        server: usize,
        /// QP lane.
        lane: usize,
        /// Requests answered.
        reqs: Vec<ReqId>,
    },
    /// A credit renewal (write-with-imm) carrying the median degree.
    Renewal {
        /// Source client.
        client: usize,
        /// Destination server.
        server: usize,
        /// QP lane.
        lane: usize,
        /// Reported median coalescing degree.
        degree: u16,
    },
    /// A credit grant / decline / (re)activation notice.
    Grant {
        /// Destination client.
        client: usize,
        /// Source server.
        server: usize,
        /// QP lane.
        lane: usize,
        /// `Some(n)`: n credits (QP active); `None`: deactivated.
        grant: Option<u32>,
    },
    /// A UD request packet (one request per packet).
    UdReq {
        /// Source client.
        client: usize,
        /// Destination server.
        server: usize,
        /// The request.
        req: ReqId,
    },
    /// A UD response packet.
    UdResp {
        /// Destination client.
        client: usize,
        /// Source server.
        server: usize,
        /// The request answered.
        req: ReqId,
    },
    /// A one-sided read request (raw read or txn validation).
    ReadReq {
        /// Source client.
        client: usize,
        /// Destination server.
        server: usize,
        /// NIC cache key for the QP carrying the read.
        qp_key: u64,
        /// The request.
        req: ReqId,
    },
    /// The read's data coming back.
    ReadResp {
        /// Destination client.
        client: usize,
        /// Source server.
        server: usize,
        /// NIC cache key.
        qp_key: u64,
        /// The request.
        req: ReqId,
    },
}

impl NetMsg {
    fn endpoints(&self) -> (usize, usize) {
        match *self {
            NetMsg::Request { client, server, .. }
            | NetMsg::Response { client, server, .. }
            | NetMsg::Renewal { client, server, .. }
            | NetMsg::Grant { client, server, .. }
            | NetMsg::UdReq { client, server, .. }
            | NetMsg::UdResp { client, server, .. }
            | NetMsg::ReadReq { client, server, .. }
            | NetMsg::ReadResp { client, server, .. } => (client, server),
        }
    }

    fn is_client_to_server(&self) -> bool {
        matches!(
            self,
            NetMsg::Request { .. }
                | NetMsg::Renewal { .. }
                | NetMsg::UdReq { .. }
                | NetMsg::ReadReq { .. }
        )
    }
}

/// Wire serialization time only (no propagation): used for link stations.
fn serialize_time(w: &World, bytes: usize) -> Ns {
    let packets = w.cost.packets(bytes);
    let total = bytes + packets * w.cost.packet_overhead_bytes;
    Ns((total as u64 * w.cost.wire_ns_per_kb) / 1024)
}

/// Send `msg` of `bytes` through the full pipeline. `qp_key` banks the NIC
/// processing units and keys the *server* connection cache (`None` uses a
/// shared-key UD path that never thrashes).
pub fn transmit(
    w: &mut World,
    sim: &mut Sim<World>,
    qp_key: Option<u64>,
    bytes: usize,
    msg: NetMsg,
) {
    let now = sim.now();
    let (client, server) = msg.endpoints();
    let c2s = msg.is_client_to_server();
    // UD traffic has no per-connection NIC state (no cache pressure), but
    // it still spreads across the NIC's processing units: bank by the
    // originating thread.
    let key = qp_key.unwrap_or_else(|| match &msg {
        NetMsg::UdReq { req, .. } | NetMsg::UdResp { req, .. } => {
            0x8000_0000_0000_0000 | ((client as u64) << 16) | w.reqs[*req].thread as u64
        }
        _ => u64::MAX,
    });
    let cacheable = qp_key.is_some();

    let read_extra = match &msg {
        NetMsg::ReadReq { .. } | NetMsg::ReadResp { .. } => Ns(w.cost.nic_read_extra_ns),
        _ => Ns::ZERO,
    };
    // Source NIC. The client side has few QPs: always a cache hit. The
    // server side pays its cache on both rx and tx of connected QPs.
    let (src_nic_end, _hit) = if c2s {
        let (_, end) =
            w.clients[client]
                .nic
                .admit(key, now, w.cost.nic_service(bytes, true) + read_extra);
        (end, true)
    } else {
        let hit = if cacheable {
            w.servers[server].cache.access(key)
        } else {
            true
        };
        let (_, end) =
            w.servers[server]
                .nic
                .admit(key, now, w.cost.nic_service(bytes, hit) + read_extra);
        (end, hit)
    };

    // Source link.
    let ser = serialize_time(w, bytes);
    let (_, tx_end) = if c2s {
        w.clients[client].tx_link.admit(src_nic_end, ser)
    } else {
        w.servers[server].tx_link.admit(src_nic_end, ser)
    };

    if w.warmup <= now && c2s {
        w.stats.messages += 1;
        w.stats.packets += w.cost.packets(bytes) as u64;
    }

    // Propagation, then the destination side continues in a fresh event so
    // destination resources are admitted in arrival-time order.
    let arrival = tx_end + Ns(w.cost.wire_propagation_ns);
    sim.at(arrival, move |w: &mut World, sim| {
        arrive(w, sim, key, cacheable, bytes, msg);
    });
}

/// Destination-side half of the pipeline.
fn arrive(
    w: &mut World,
    sim: &mut Sim<World>,
    key: u64,
    cacheable: bool,
    bytes: usize,
    msg: NetMsg,
) {
    let now = sim.now();
    let (client, server) = msg.endpoints();
    let c2s = msg.is_client_to_server();
    let read_extra = match &msg {
        NetMsg::ReadReq { .. } | NetMsg::ReadResp { .. } => Ns(w.cost.nic_read_extra_ns),
        _ => Ns::ZERO,
    };
    let ser = serialize_time(w, bytes);
    let (_, rx_end) = if c2s {
        w.servers[server].rx_link.admit(now, ser)
    } else {
        w.clients[client].rx_link.admit(now, ser)
    };
    // Destination NIC: the server side pays the connection cache.
    let nic_end = if c2s {
        let hit = if cacheable {
            w.servers[server].cache.access(key)
        } else {
            true
        };
        let (_, end) =
            w.servers[server]
                .nic
                .admit(key, rx_end, w.cost.nic_service(bytes, hit) + read_extra);
        end
    } else {
        let (_, end) =
            w.clients[client]
                .nic
                .admit(key, rx_end, w.cost.nic_service(bytes, true) + read_extra);
        end
    };
    sim.at(nic_end, move |w: &mut World, sim| deliver(w, sim, msg));
}

/// Route a fully delivered message to its model.
fn deliver(w: &mut World, sim: &mut Sim<World>, msg: NetMsg) {
    match msg {
        NetMsg::Request {
            client,
            server,
            lane,
            reqs,
        } => crate::server::on_request_message(w, sim, client, server, lane, reqs),
        NetMsg::Response {
            client,
            server,
            lane,
            reqs,
        } => crate::client::on_response_message(w, sim, client, server, lane, reqs),
        NetMsg::Renewal {
            client,
            server,
            lane,
            degree,
        } => crate::server::on_renewal(w, sim, client, server, lane, degree),
        NetMsg::Grant {
            client,
            server,
            lane,
            grant,
        } => crate::client::on_grant(w, sim, client, server, lane, grant),
        NetMsg::UdReq {
            client,
            server,
            req,
        } => crate::server::on_ud_request(w, sim, client, server, req),
        NetMsg::UdResp { client, req, .. } => crate::client::on_ud_response(w, sim, client, req),
        NetMsg::ReadReq {
            client,
            server,
            qp_key,
            req,
        } => {
            // One-sided: the server CPU is never involved. The NIC already
            // charged the inbound processing; turn the data around.
            let resp_bytes = w.reqs[req].resp_size.max(1);
            transmit(
                w,
                sim,
                Some(qp_key),
                resp_bytes,
                NetMsg::ReadResp {
                    client,
                    server,
                    qp_key,
                    req,
                },
            );
        }
        NetMsg::ReadResp { client, req, .. } => {
            crate::client::on_read_complete(w, sim, client, req);
        }
    }
}
