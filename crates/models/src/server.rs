//! Server-side model: request dispatch over the core pool, application
//! service (echo / index / transactions), response coalescing, and the QP
//! scheduler actor running the real Flock scheduling code.

use flock_core::msg;
use flock_core::sched::qp::SenderQp;
use flock_sim::{Ns, Sim};

use crate::net::{transmit, NetMsg};
use crate::world::{AppLogic, ReqId, ReqKind, TxnPhase, World};

/// A coalesced request message landed in a server ring. Requests queue
/// per lane; a dispatcher sweep drains everything pending for the lane and
/// coalesces the responses into one message (paper §4.3) — under load this
/// produces response convoys, which in turn seed client-side coalescing.
pub fn on_request_message(
    w: &mut World,
    sim: &mut Sim<World>,
    client: usize,
    server: usize,
    lane: usize,
    reqs: Vec<ReqId>,
) {
    let qp = &mut w.clients[client].qps[server][lane];
    qp.srv_pending.extend(reqs);
    if !qp.srv_busy {
        qp.srv_busy = true;
        server_lane_sweep(w, sim, client, server, lane);
    }
}

/// One dispatcher visit to a lane: drain its ring, execute, respond.
fn server_lane_sweep(
    w: &mut World,
    sim: &mut Sim<World>,
    client: usize,
    server: usize,
    lane: usize,
) {
    // Only Flock's dispatcher coalesces responses across a lane's backlog
    // (paper §4.3); the FaRM-style baselines — and Flock with coalescing
    // disabled (Figure 10 ablation) — answer message by message.
    let max_sweep = if w.system == crate::world::SystemKind::Flock && w.batch_limit > 1 {
        64
    } else {
        1
    };
    let now = sim.now();
    let reqs: Vec<ReqId> = {
        let qp = &mut w.clients[client].qps[server][lane];
        let k = qp.srv_pending.len().min(max_sweep);
        qp.srv_pending.drain(..k).collect()
    };
    if reqs.is_empty() {
        w.clients[client].qps[server][lane].srv_busy = false;
        return;
    }
    // Core service: detect the message(s), then per request decode + app
    // execution + response staging; one doorbell posts the coalesced
    // response. A seeded jitter term models service-time variance.
    let mut svc = Ns(w.cost.cpu_ring_sweep_ns)
        + w.cost.ring_detect_cpu()
        + Ns(w.cost.cpu_doorbell_ns + w.cost.cpu_codec_ns);
    for &id in &reqs {
        svc += Ns(w.cost.cpu_codec_ns)
            + app_cost(w, id)
            + w.cost.memcpy_time(w.reqs[id].size)
            + w.cost.memcpy_time(w.reqs[id].resp_size);
    }
    svc += Ns(w.rng.exp(0.15 * svc.as_nanos() as f64) as u64);
    let (_, end) = w.servers[server].cores.admit(now, svc);
    sim.at(end, move |w: &mut World, sim| {
        // Execute application effects at processing time.
        for &id in &reqs {
            serve_request(w, id);
        }
        let bytes = msg::encoded_size(reqs.iter().map(|&id| w.reqs[id].resp_size));
        let key = w.clients[client].qps[server][lane].global_id;
        transmit(
            w,
            sim,
            Some(key),
            bytes,
            NetMsg::Response {
                client,
                server,
                lane,
                reqs,
            },
        );
        server_lane_sweep(w, sim, client, server, lane);
    });
}

/// A UD request packet arrived (eRPC/FaSST server path).
pub fn on_ud_request(
    w: &mut World,
    sim: &mut Sim<World>,
    client: usize,
    server: usize,
    req: ReqId,
) {
    let now = sim.now();
    // Per-packet server CPU: CQ poll + recv-buffer recycle + session
    // bookkeeping + decode + app + response post.
    let mut svc = w.cost.ud_rx_cpu()
        + Ns(w.cost.cpu_erpc_session_ns + 2 * w.cost.cpu_codec_ns + w.cost.cpu_doorbell_ns)
        + app_cost(w, req)
        + w.cost.memcpy_time(w.reqs[req].resp_size);
    svc += Ns(w.rng.exp(0.15 * svc.as_nanos() as f64) as u64);
    let (_, end) = w.servers[server].cores.admit(now, svc);
    sim.at(end, move |w: &mut World, sim| {
        serve_request(w, req);
        let bytes = w.reqs[req].resp_size + 32;
        transmit(
            w,
            sim,
            None,
            bytes,
            NetMsg::UdResp {
                client,
                server,
                req,
            },
        );
    });
}

/// Nominal application cost of a request (charged to the core pool).
fn app_cost(w: &World, id: ReqId) -> Ns {
    match w.reqs[id].kind {
        ReqKind::Echo => Ns(w.handler_ns),
        ReqKind::Get => match &w.app {
            AppLogic::Hydra(app) => app.get_cost(),
            _ => Ns(w.handler_ns),
        },
        ReqKind::Scan => match &w.app {
            AppLogic::Hydra(app) => app.scan_cost(),
            _ => Ns(w.handler_ns),
        },
        ReqKind::Txn(phase) => crate::coord::phase_cost(w, phase, id),
        ReqKind::Read => Ns::ZERO, // one-sided: no CPU (never reaches here)
    }
}

/// Execute application effects for one request at processing time.
fn serve_request(w: &mut World, id: ReqId) {
    match w.reqs[id].kind {
        ReqKind::Echo => {}
        ReqKind::Get | ReqKind::Scan => {
            // Run the real index (results drive nothing downstream in the
            // paper's workload — the server replies with an 8 B count —
            // but the real data structure keeps the model honest).
            let key = w.reqs[id].key;
            let is_scan = w.reqs[id].kind == ReqKind::Scan;
            if let AppLogic::Hydra(app) = &mut w.app {
                app.execute(key, is_scan);
            }
        }
        ReqKind::Txn(phase) => crate::coord::serve_phase(w, phase, id),
        ReqKind::Read => {}
    }
}

/// A credit renewal arrived at the QP scheduler.
pub fn on_renewal(
    w: &mut World,
    sim: &mut Sim<World>,
    client: usize,
    server: usize,
    lane: usize,
    degree: u16,
) {
    let now = sim.now();
    // The dedicated scheduler thread polls the RCQ and grants: a CQE
    // poll, a utilization bump, and one posted write back.
    let svc = Ns(220);
    let (_, end) = w.servers[server].sched_cpu.admit(now, svc);
    sim.at(end, move |w: &mut World, sim| {
        let decision = w.servers[server].qp_sched.on_credit_request(
            SenderQp {
                sender: client as u32,
                qp: lane,
            },
            degree,
        );
        w.stats.grants_sent += 1;
        transmit(
            w,
            sim,
            Some(w.clients[client].qps[server][lane].global_id),
            32,
            NetMsg::Grant {
                client,
                server,
                lane,
                grant: decision,
            },
        );
    });
}

/// Periodic QP redistribution (real Flock scheduler code); proactively
/// notifies clients of activations/deactivations like the runtime does.
pub fn qp_sched_tick(w: &mut World, sim: &mut Sim<World>, server: usize, interval: Ns) {
    let changes = w.servers[server].qp_sched.redistribute();
    let grant_size = w.servers[server].qp_sched.config().grant_size;
    for (sq, now_active) in changes {
        let client = sq.sender as usize;
        let lane = sq.qp;
        if client >= w.clients.len() || lane >= w.clients[client].qps[server].len() {
            continue;
        }
        let grant = if now_active { Some(grant_size) } else { None };
        transmit(
            w,
            sim,
            Some(w.clients[client].qps[server][lane].global_id),
            32,
            NetMsg::Grant {
                client,
                server,
                lane,
                grant,
            },
        );
    }
    sim.after(interval, move |w: &mut World, sim| {
        qp_sched_tick(w, sim, server, interval);
    });
}

/// What a phase RPC costs on the server (used by the per-request cost
/// accounting in this module).
pub fn txn_phase_nominal(w: &World, phase: TxnPhase, n_keys: usize) -> Ns {
    let per_key = match phase {
        TxnPhase::Execute => 220, // hash lookup + lock CAS + copy out
        TxnPhase::Validate => 80, // word read
        TxnPhase::Log => 140,     // backup insert
        TxnPhase::Commit => 180,  // install + unlock
        TxnPhase::Abort => 90,    // unlock
    };
    Ns(w.handler_ns / 2 + per_key * n_keys as u64)
}
