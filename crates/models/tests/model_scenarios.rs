//! Scenario tests for the discrete-event models beyond the unit tests in
//! `experiments.rs`: FaSST-style RPC validation, scheduler dynamics, and
//! cross-system sanity relations.

use flock_models::coord::TxnWorkload;
use flock_models::{
    run_raw_read, run_rpc, run_txn, RawReadConfig, RpcConfig, SystemKind, TxnConfig,
};
use flock_sim::Ns;
use flock_txn::{Smallbank, Tatp};

fn quick_rpc() -> RpcConfig {
    let mut cfg = RpcConfig::default();
    cfg.n_clients = 4;
    cfg.threads_per_client = 4;
    cfg.lanes_per_client = 4;
    cfg.duration = Ns::from_millis(2);
    cfg.warmup = Ns::from_millis(1);
    cfg
}

#[test]
fn fasst_mode_validates_via_rpc_and_still_commits() {
    let mut rpc = quick_rpc();
    rpc.system = SystemKind::UdRpc;
    let cfg = TxnConfig {
        rpc,
        n_servers: 3,
        coroutines: 4,
        workload: TxnWorkload::Tatp(Tatp::new(5_000)),
        validate_via_rpc: true,
    };
    let r = run_txn(&cfg);
    assert!(r.commits > 100, "commits={}", r.commits);
    // Read-intensive with RPC validation: abort rate stays small.
    let rate = r.aborts as f64 / (r.commits + r.aborts) as f64;
    assert!(rate < 0.10, "abort rate {rate}");
}

#[test]
fn flocktx_beats_fasst_on_smallbank() {
    let mk = |system, via_rpc| {
        let mut rpc = quick_rpc();
        rpc.system = system;
        rpc.n_clients = 6;
        rpc.threads_per_client = 4;
        rpc.lanes_per_client = 4;
        run_txn(&TxnConfig {
            rpc,
            n_servers: 3,
            coroutines: 8,
            workload: TxnWorkload::Smallbank(Smallbank::new(10_000)),
            validate_via_rpc: via_rpc,
        })
    };
    let flock = mk(SystemKind::Flock, false);
    let fasst = mk(SystemKind::UdRpc, true);
    assert!(
        flock.mops > fasst.mops,
        "flock {} vs fasst {}",
        flock.mops,
        fasst.mops
    );
    assert!(flock.median_us < fasst.median_us);
}

#[test]
fn qp_scheduler_respects_max_aqp_under_pressure() {
    let mut cfg = quick_rpc();
    cfg.n_clients = 8;
    cfg.threads_per_client = 16;
    cfg.lanes_per_client = 16; // 128 lanes requested
    cfg.max_aqp = 32;
    cfg.outstanding = 4;
    let r = run_rpc(&cfg);
    // Sharing forced at 4x oversubscription: coalescing must appear.
    assert!(r.degree > 1.3, "degree {}", r.degree);
    assert!(r.mops > 1.0);
}

#[test]
fn raw_read_peak_beats_ud_rpc_plateau_by_up_to_2x() {
    // The paper's §2.2 gap between Figure 2(a)'s peak and 2(b)'s plateau.
    let mut read_cfg = RawReadConfig::default();
    read_cfg.total_qps = 176;
    read_cfg.duration = Ns::from_millis(2);
    read_cfg.warmup = Ns::from_millis(1);
    let reads = run_raw_read(&read_cfg);

    let mut ud = RpcConfig::default();
    ud.system = SystemKind::UdRpc;
    ud.n_clients = 22;
    ud.threads_per_client = 8;
    ud.outstanding = 4;
    ud.handler_ns = 50;
    ud.cost.cpu_erpc_session_ns = 150;
    ud.duration = Ns::from_millis(2);
    ud.warmup = Ns::from_millis(1);
    let udr = run_rpc(&ud);

    let gap = reads.mops / udr.mops;
    assert!(
        (1.2..=2.5).contains(&gap),
        "gap {gap} (reads {} vs ud {})",
        reads.mops,
        udr.mops
    );
}

#[test]
fn larger_payloads_cost_throughput() {
    let small = run_rpc(&quick_rpc());
    let mut big_cfg = quick_rpc();
    big_cfg.req_size = 2048;
    let big = run_rpc(&big_cfg);
    assert!(small.mops > big.mops, "{} vs {}", small.mops, big.mops);
}

#[test]
fn more_server_cores_help_the_cpu_bound_system() {
    let mut cfg = quick_rpc();
    cfg.system = SystemKind::UdRpc;
    cfg.n_clients = 16;
    cfg.threads_per_client = 16;
    cfg.outstanding = 4;
    cfg.server_cores = 8;
    let few = run_rpc(&cfg);
    cfg.server_cores = 32;
    let many = run_rpc(&cfg);
    assert!(
        many.mops > few.mops * 1.5,
        "cores 8 -> {} vs cores 32 -> {}",
        few.mops,
        many.mops
    );
}
