//! End-to-end tenant-isolation battery: an aggressor tenant hammering
//! the server through the gateway must not degrade a well-behaved
//! victim's p99 beyond a fixed bound — *when its active-QP share is
//! capped*. Uncapped, the same aggressor visibly hurts the victims,
//! which is what makes the capped bound meaningful rather than vacuous.
//!
//! Runs the same deterministic virtual-time scenarios as
//! `BENCH_tenant.json` (quick preset), so a failure here reproduces
//! exactly under `cargo run -p flock-bench --bin bench_tenant -- --quick`.

use flock_bench::tenant::{run_hot_key_storm, run_interference, run_zipf_mix, TenantWorkload};

/// A capped aggressor may cost victims at most 30% p99 over running
/// alone — the acceptance bound for receiver-side tenant isolation.
const CAPPED_DISTURBANCE_BOUND: f64 = 1.3;

#[test]
fn capped_aggressor_bounds_victim_p99_disturbance() {
    let out = run_interference(TenantWorkload::preset(true));
    assert!(
        out.baseline_p99_us > 0.0,
        "baseline must measure something, got {:?}",
        out
    );
    assert!(
        out.capped_ratio <= CAPPED_DISTURBANCE_BOUND,
        "capped aggressor must not degrade victim p99 beyond {CAPPED_DISTURBANCE_BOUND}x \
         baseline, got {:.3}x ({:.1} us vs {:.1} us baseline)",
        out.capped_ratio,
        out.capped_p99_us,
        out.baseline_p99_us
    );
    // The cap is what does the work: the same aggressor left uncapped
    // must hurt the victims more than the capped one does.
    assert!(
        out.uncapped_ratio > out.capped_ratio,
        "uncapped aggressor should disturb victims more than a capped one, \
         got uncapped {:.3}x vs capped {:.3}x",
        out.uncapped_ratio,
        out.capped_ratio
    );
    // And the scheduler actually enforced the share: mid-run the
    // aggressor holds no more than its cap.
    assert!(
        out.capped_aggr_lanes <= out.aggr_cap,
        "capped aggressor held {} active lanes, cap is {}",
        out.capped_aggr_lanes,
        out.aggr_cap
    );
    // Uncapped, the aggressor's wide connection out-earns every victim
    // (utilization-proportional sharing working as designed — just not
    // what a multi-tenant operator wants).
    assert!(
        out.uncapped_aggr_lanes > out.aggr_cap,
        "uncapped aggressor should hold more lanes than the cap would allow, got {}",
        out.uncapped_aggr_lanes
    );
}

#[test]
fn equal_load_tenants_get_equal_service() {
    // Zipf mix: same offered load per tenant -> Jain's index near 1 on
    // both bench-side throughput and the server's own completed counts.
    let mix = run_zipf_mix(TenantWorkload::preset(true));
    assert!(
        mix.jains_tput >= 0.9,
        "per-tenant throughput under equal load should be fair, Jain's = {:.3}",
        mix.jains_tput
    );
    assert!(
        mix.jains_completed >= 0.99,
        "server-side completed counts should match equal offered load, Jain's = {:.3}",
        mix.jains_completed
    );
    // Server accounting and bench accounting agree op-for-op.
    for t in &mix.tenants {
        assert_eq!(
            t.ops, t.completed,
            "tenant {} bench ops vs server completed",
            t.tenant
        );
    }
}

#[test]
fn hot_key_contention_does_not_break_tenant_fairness() {
    let storm = run_hot_key_storm(TenantWorkload::preset(true));
    assert!(
        storm.jains_tput >= 0.9,
        "hot-key storm should stay fair across tenants, Jain's = {:.3}",
        storm.jains_tput
    );
    // Single-key workload really did collapse onto one key.
    assert_eq!(storm.store_keys, 1, "storm writes one key");
}
