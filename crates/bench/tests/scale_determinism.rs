//! Two runs of the same seeded virtual-time sweep must render
//! byte-identical JSON — the property CI's bench-scale smoke job diffs
//! for, and the foundation of `BENCH_scale.json` being reviewable: a
//! diff in the checked-in file always means a code change, never
//! scheduling noise.

use flock_bench::scale::{run_sweep, Workload};

#[test]
fn quick_sweep_is_byte_identical_across_runs() {
    let w = Workload {
        reqs_per_thread: 4,
        window: 2,
        payload: 16,
    };
    let a = run_sweep(true, w, false);
    let b = run_sweep(true, w, false);
    assert_eq!(a, b, "virtual-time sweep must be deterministic");
    assert!(
        a.contains("\"schema\": \"flock-bench-scale/v1\""),
        "rendered JSON must carry the schema tag CI greps for"
    );
}
