//! Two runs of the multi-tenant gateway suite must render byte-identical
//! JSON — the property CI's bench-tenant smoke job diffs for, and what
//! makes `BENCH_tenant.json` reviewable: a diff in the checked-in file
//! always means a code change, never scheduling noise.

use flock_bench::tenant::run_tenant_suite;

#[test]
fn quick_suite_is_byte_identical_across_runs() {
    let a = run_tenant_suite(true, false);
    let b = run_tenant_suite(true, false);
    assert_eq!(a, b, "tenant suite must be deterministic");
    assert!(
        a.contains("\"schema\": \"flock-bench-tenant/v1\""),
        "rendered JSON must carry the schema tag CI greps for"
    );
}
