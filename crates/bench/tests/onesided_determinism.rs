//! Two runs of the crossover suite must render byte-identical JSON —
//! the property CI's bench-onesided smoke job diffs for, and what makes
//! `BENCH_onesided.json` reviewable: a diff in the checked-in file
//! always means a code change, never scheduling noise.

use flock_bench::onesided::run_onesided_suite;

#[test]
fn quick_suite_is_byte_identical_across_runs() {
    let a = run_onesided_suite(true, false);
    let b = run_onesided_suite(true, false);
    assert_eq!(a, b, "onesided suite must be deterministic");
    assert!(
        a.contains("\"schema\": \"flock-bench-onesided/v1\""),
        "rendered JSON must carry the schema tag CI greps for"
    );
}
