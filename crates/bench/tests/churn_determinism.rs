//! Two runs of the churn suite must render byte-identical JSON — the
//! property CI's bench-churn smoke job diffs for, and what makes
//! `BENCH_churn.json` reviewable: a diff in the checked-in file always
//! means a code change, never scheduling noise.

use flock_bench::churn::{run_churn_load, run_churn_suite, run_storm, ChurnWorkload};

#[test]
fn quick_suite_is_byte_identical_across_runs() {
    let a = run_churn_suite(true, false);
    let b = run_churn_suite(true, false);
    assert_eq!(a, b, "churn suite must be deterministic");
    assert!(
        a.contains("\"schema\": \"flock-bench-churn/v1\""),
        "rendered JSON must carry the schema tag CI greps for"
    );
}

#[test]
fn warm_wave_beats_cold_wave() {
    // The headline acceptance property at smoke scale: reconnecting into
    // pooled QPs and cached MRs must be an order of magnitude faster
    // than the cold control path.
    let mut w = ChurnWorkload::preset(true);
    w.storm_clients = 4;
    let storm = run_storm(w);
    assert!(
        storm.warm_speedup >= 10.0,
        "warm TTFR should be >=10x faster than cold, got {:.1}x (cold {:.1} us, warm {:.1} us)",
        storm.warm_speedup,
        storm.cold_median_us,
        storm.warm_median_us
    );
    assert!(storm.server_warm_leases >= w.storm_clients as u64);
}

#[test]
fn churn_disturbance_is_bounded() {
    // Steady-cohort p99 under connect/disconnect churn stays within 20%
    // of the no-churn baseline (quiescence never stalls dispatch).
    let mut w = ChurnWorkload::preset(true);
    w.steady_clients = 2;
    w.reqs_per_steady = 16;
    w.churners = 2;
    w.churn_rounds = 2;
    let churn = run_churn_load(w);
    assert!(churn.churn_events >= 4);
    assert!(
        churn.disturbance_ratio <= 1.2,
        "churn p99 within 20% of baseline, got {:.3}x ({:.1} us vs {:.1} us)",
        churn.disturbance_ratio,
        churn.churn_p99_us,
        churn.baseline_p99_us
    );
}
