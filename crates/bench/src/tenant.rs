//! Multi-tenant gateway benchmark: edge sessions speaking real wire
//! protocols fan into a kvstore-backed Flock server over *shared,
//! capped* per-tenant connections, inside the deterministic
//! virtual-time lab ([`VirtualLab`]).
//!
//! Three scenarios, each a pure function of its configuration (two runs
//! render byte-identical JSON — the CI determinism diff):
//!
//! 1. **Zipf-skewed GET/SET mix** — every tenant drives a 90/10
//!    GET/SET mix over a shared key space with Zipf(0.99) popularity.
//!    Reported per tenant: throughput, p99, server-side completed
//!    count; plus Jain's fairness index over per-tenant throughput
//!    (equal offered load, so fair means ≈ 1.0).
//! 2. **Hot-key storm** — the same cohort collapses onto a single key
//!    (80/20 GET/SET). Key-level contention must not break tenant-level
//!    fairness.
//! 3. **Tenant interference** — one aggressor tenant (many busy edge
//!    sessions over a wide connection) against N well-behaved victims,
//!    run three ways: victims alone (baseline), aggressor uncapped, and
//!    aggressor under a per-tenant AQP share cap. The victim p99
//!    disturbance ratio (vs baseline) is the headline: caps must hold
//!    it near 1, while the uncapped run shows what lane-stealing costs.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use flock_core::server::{FlockServer, ServerConfig};
use flock_core::FlockDomain;
use flock_fabric::FabricConfig;
use flock_gateway::proto::{MemcachedText, Request, WireProtocol};
use flock_gateway::{register_kv_backend, Gateway, GatewayConfig};
use flock_kvstore::{KvConfig, KvStore};
use flock_sim::rng::{SimRng, ZipfTable};
use flock_sim::vtime::VirtualLab;
use flock_sync::clock;

use crate::arrival::RateRamp;

/// Knobs shared by the three scenarios.
#[derive(Debug, Clone, Copy)]
pub struct TenantWorkload {
    /// Tenants in the mix/storm scenarios (equal offered load each).
    pub tenants: usize,
    /// Edge sessions per tenant.
    pub sessions_per_tenant: usize,
    /// Requests each edge session issues.
    pub reqs_per_session: u64,
    /// Key-space size for the Zipf mix.
    pub keys: usize,
    /// SET value bytes.
    pub payload: usize,
    /// Root seed for the per-session workload RNGs.
    pub seed: u64,
    /// Well-behaved tenants in the interference scenario.
    pub victims: usize,
    /// Target requests per victim session in the interference scenario,
    /// split equally across the three stages of the arrival-rate ramp
    /// (the realized count is the ramp schedule's draw, identical in
    /// all three runs).
    pub victim_reqs: u64,
    /// Busy edge sessions the aggressor tenant drives.
    pub aggr_sessions: usize,
    /// Per-tenant AQP cap applied to the aggressor in the capped run.
    pub aggr_cap: usize,
    /// Server MAX_AQP budget for the interference scenario.
    pub max_aqp: usize,
}

impl TenantWorkload {
    /// Scenario sizes for a sweep: CI smoke (`quick`) or the checked-in
    /// `BENCH_tenant.json`.
    pub fn preset(quick: bool) -> TenantWorkload {
        if quick {
            TenantWorkload {
                tenants: 3,
                sessions_per_tenant: 2,
                reqs_per_session: 24,
                keys: 16,
                payload: 32,
                seed: 42,
                victims: 3,
                victim_reqs: 96,
                aggr_sessions: 6,
                aggr_cap: 2,
                max_aqp: 8,
            }
        } else {
            TenantWorkload {
                tenants: 4,
                sessions_per_tenant: 2,
                reqs_per_session: 96,
                keys: 64,
                payload: 32,
                seed: 42,
                victims: 3,
                victim_reqs: 128,
                aggr_sessions: 6,
                aggr_cap: 2,
                max_aqp: 8,
            }
        }
    }
}

/// Elastic fabric: QP pool and MR cache on, like the churn suite, but
/// with enough NIC lanes that per-tenant fairness is decided by the
/// receiver's QP scheduler, not by which NIC lane a connection happens
/// to share.
fn elastic_fabric() -> FabricConfig {
    let mut fc = FabricConfig::default();
    fc.qpool.enabled = true;
    fc.mr_cache.enabled = true;
    fc.nic_lanes = 6;
    fc
}

/// Mean inter-request gap for mix-scenario sessions (virtual ns).
/// Open-loop pacing: tenants are latency-sensitive clients, and paced
/// arrivals are what the receiver-side scheduler's utilization
/// accounting is designed around.
const MIX_GAP_NS: f64 = 5_000.0;

/// Nominal mean inter-request gap for victim sessions in the
/// interference scenario (virtual ns) — the middle stage of the ramp.
const VICTIM_GAP_NS: f64 = 2_000.0;

/// The victims' open-loop arrival-rate ramp: each session walks slow →
/// nominal → fast offered load (mean gaps 2x, 1x, 0.5x the nominal), an
/// equal target share of `victim_reqs` per stage. The p99 comparison
/// then covers the whole rate range rather than one operating point, so
/// a cap that only holds at light load cannot pass. The schedule is
/// drawn from each session's own RNG, identically in all three runs.
fn victim_ramp(victim_reqs: u64) -> RateRamp {
    RateRamp::per_stage_target(
        &[2.0 * VICTIM_GAP_NS, VICTIM_GAP_NS, 0.5 * VICTIM_GAP_NS],
        victim_reqs / 3,
    )
}

/// Edge sessions per victim tenant: enough concurrency that the
/// tenant's AQP share translates into batching delay when squeezed.
const VICTIM_SESSIONS: usize = 4;

/// Virtual ns after `go` before the aggressor's sessions start
/// hammering: deep into the victims' slow ramp stage, so the burst
/// lands on a converged worker cut (see the aggressor task body).
/// Scaled with the ramp so the burst hits the same *phase* of the
/// victims' slow stage at every `victim_reqs` (the realized stage span
/// grows linearly: each arrival's round-trip serializes after its
/// drawn gap). 250 µs is the calibrated quick-scale (96-request)
/// phase; a fixed delay instead lands at a different point of the
/// re-cut cycle at full scale and the measured ratios stop comparing
/// like with like.
fn aggr_burst_delay_ns(victim_reqs: u64) -> u64 {
    victim_reqs * 250_000 / 96
}

/// Virtual ns after `go` at which lane shares are sampled: one
/// scheduler epoch (and change) past the burst, inside the victims'
/// nominal-rate middle stage, so the snapshot shows the re-cut that
/// responded to the burst.
fn share_snapshot_ns(victim_reqs: u64) -> u64 {
    aggr_burst_delay_ns(victim_reqs) + 200_000
}

/// Client-side thread-scheduler interval for gateway connections. The
/// default (10 ms) never fires inside a sub-millisecond scenario; this
/// keeps thread→lane assignment tracking the server's AQP grants.
const CLIENT_SCHED_INTERVAL: Duration = Duration::from_micros(100);

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1000.0
}

/// Jain's fairness index over a slice (mirror of the scheduler-side
/// definition, applied to bench-side throughput figures).
fn jains(xs: &[f64]) -> f64 {
    flock_core::sched::jains_index(xs.iter().copied())
}

// ---------------------------------------------------------------------
// Scenarios 1 + 2: protocol mix through the gateway
// ---------------------------------------------------------------------

/// One tenant's measured row in a mix scenario.
#[derive(Debug, Clone)]
pub struct TenantStat {
    /// Tenant id.
    pub tenant: u32,
    /// Requests the tenant's sessions completed.
    pub ops: u64,
    /// Throughput over the tenant's active span (ops per virtual ms).
    pub tput_ops_per_ms: f64,
    /// Median request latency (virtual µs), wire-in to wire-out.
    pub median_us: f64,
    /// p99 request latency (virtual µs).
    pub p99_us: f64,
    /// Completed requests the *server's* per-tenant accounting saw —
    /// ties the bench numbers to the scheduler's books.
    pub completed: u64,
}

/// Measured outcome of a mix scenario (Zipf mix or hot-key storm).
#[derive(Debug, Clone)]
pub struct MixOutcome {
    /// Per-tenant rows, ascending tenant id.
    pub tenants: Vec<TenantStat>,
    /// Jain's fairness index over per-tenant throughput.
    pub jains_tput: f64,
    /// Jain's fairness index over server-side completed counts.
    pub jains_completed: f64,
    /// Keys left in the store at the end.
    pub store_keys: usize,
    /// Lab handovers — a determinism fingerprint.
    pub handovers: u64,
    /// Virtual tasks spawned.
    pub tasks: u64,
}

/// Run a GET/SET mix through the gateway: `keys` hot keys with Zipf
/// skew `zipf_s`, SET probability `set_ratio`, every tenant driving the
/// same offered load over memcached-text edge sessions.
pub fn run_mix(w: TenantWorkload, label: &'static str, keys: usize, zipf_s: f64, set_ratio: f64) -> MixOutcome {
    let (mut outcome, report) = VirtualLab::run_report(move || {
        let domain = Arc::new(FlockDomain::new(elastic_fabric()));
        let server_node = domain.add_node(&format!("{label}-srv"));
        let mut scfg = ServerConfig::default();
        scfg.dispatch_threads = 2;
        scfg.sched_interval = Duration::from_micros(100);
        let server = FlockServer::listen(&domain, &server_node, label, scfg);
        let kv = Arc::new(KvStore::new(KvConfig::default()));
        register_kv_backend(&server, Arc::clone(&kv));

        let gw_node = domain.add_node(&format!("{label}-gw"));
        let mut gcfg = GatewayConfig::default();
        gcfg.handle.n_qps = 2;
        gcfg.handle.mem_threads = w.sessions_per_tenant + 1;
        gcfg.handle.sched_interval = CLIENT_SCHED_INTERVAL;
        let gw = Gateway::new(Arc::clone(&domain), gw_node, label, gcfg);

        // Open every session up front, in tenant order, so connection
        // creation is deterministic and outside the measured window.
        let mut sessions = Vec::new();
        for t in 1..=w.tenants as u32 {
            for s in 0..w.sessions_per_tenant {
                let sess = gw
                    .open_session(t, Arc::new(MemcachedText))
                    .expect("open session");
                sessions.push((t, s, sess));
            }
        }

        let go = Arc::new(AtomicBool::new(false));
        type Rows = Arc<Mutex<Vec<(u32, usize, u64, u64, Vec<u64>)>>>;
        let rows: Rows = Arc::new(Mutex::new(Vec::new()));

        let mut root = SimRng::new(w.seed);
        let mut tasks = Vec::with_capacity(sessions.len());
        for (tenant, s, mut sess) in sessions {
            let go = Arc::clone(&go);
            let rows = Arc::clone(&rows);
            let mut rng = root.fork((u64::from(tenant) << 8) | s as u64);
            let table = ZipfTable::new(keys, zipf_s);
            tasks.push(clock::spawn(&format!("{label}-t{tenant}-s{s}"), move || {
                while !go.load(Ordering::Acquire) {
                    clock::sleep_ns(5_000);
                }
                let value = vec![b'v'; w.payload];
                let mut wire = Vec::new();
                let mut out = Vec::new();
                let mut lats = Vec::with_capacity(w.reqs_per_session as usize);
                let t0 = clock::now_ns();
                for _ in 0..w.reqs_per_session {
                    // Open-loop pacing with exponential jitter: arrivals
                    // don't self-synchronize into lockstep rounds.
                    clock::sleep_ns(rng.exp(MIX_GAP_NS) as u64);
                    let key = format!("k{}", rng.zipf(&table));
                    wire.clear();
                    if rng.chance(set_ratio) {
                        MemcachedText.encode_request(
                            &Request::Set {
                                key: key.as_bytes(),
                                value: &value,
                            },
                            &mut wire,
                        );
                    } else {
                        MemcachedText
                            .encode_request(&Request::Get { key: key.as_bytes() }, &mut wire);
                    }
                    out.clear();
                    let at = clock::now_ns();
                    let n = sess.pump(&wire, &mut out).expect("pump");
                    debug_assert_eq!(n, 1);
                    debug_assert!(!out.is_empty());
                    lats.push(clock::now_ns().saturating_sub(at));
                }
                let t1 = clock::now_ns();
                rows.lock().unwrap().push((tenant, s, t0, t1, lats));
            }));
        }
        go.store(true, Ordering::Release);
        for t in tasks {
            let _ = t.join();
        }

        let snap = server.fairness_snapshot();
        let store_keys = kv.len();
        gw.close().expect("gateway close");
        drop(gw);
        server.shutdown(&domain);
        drop(server);
        drop(
            Arc::try_unwrap(domain)
                .ok()
                .expect("all domain users joined"),
        );

        // Aggregate per tenant: merged latencies, span-based throughput.
        let mut collected = std::mem::take(&mut *rows.lock().unwrap());
        collected.sort_unstable_by_key(|(t, s, ..)| (*t, *s));
        let mut stats = Vec::with_capacity(w.tenants);
        for tenant in 1..=w.tenants as u32 {
            let mut lats: Vec<u64> = Vec::new();
            let (mut start, mut end) = (u64::MAX, 0u64);
            for (t, _s, t0, t1, l) in &collected {
                if *t == tenant {
                    start = start.min(*t0);
                    end = end.max(*t1);
                    lats.extend_from_slice(l);
                }
            }
            lats.sort_unstable();
            let span_ns = end.saturating_sub(start).max(1);
            let completed = snap.tenant(tenant).map_or(0, |row| row.completed);
            stats.push(TenantStat {
                tenant,
                ops: lats.len() as u64,
                tput_ops_per_ms: lats.len() as f64 / (span_ns as f64 / 1e6),
                median_us: percentile_us(&lats, 0.5),
                p99_us: percentile_us(&lats, 0.99),
                completed,
            });
        }
        let tputs: Vec<f64> = stats.iter().map(|s| s.tput_ops_per_ms).collect();
        let comps: Vec<f64> = stats.iter().map(|s| s.completed as f64).collect();
        MixOutcome {
            jains_tput: jains(&tputs),
            jains_completed: jains(&comps),
            tenants: stats,
            store_keys,
            handovers: 0,
            tasks: 0,
        }
    });
    outcome.handovers = report.handovers;
    outcome.tasks = report.tasks_spawned;
    outcome
}

/// Scenario 1: Zipf(0.99) key popularity, 90/10 GET/SET.
pub fn run_zipf_mix(w: TenantWorkload) -> MixOutcome {
    run_mix(w, "ten-zipf", w.keys, 0.99, 0.10)
}

/// Scenario 2: every tenant hammers one hot key, 80/20 GET/SET.
pub fn run_hot_key_storm(w: TenantWorkload) -> MixOutcome {
    run_mix(w, "ten-hot", 1, 0.0, 0.20)
}

// ---------------------------------------------------------------------
// Scenario 3: tenant interference (aggressor vs victims)
// ---------------------------------------------------------------------

/// How the aggressor participates in an interference run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AggrMode {
    /// Victims alone — the baseline.
    Absent,
    /// Aggressor present, no per-tenant cap.
    Uncapped,
    /// Aggressor present, capped to `TenantWorkload::aggr_cap` AQPs.
    Capped,
}

/// The aggressor's tenant id (victims are `1..=victims`).
pub const AGGRESSOR_TENANT: u32 = 9;

/// Measured outcome of the interference scenario.
#[derive(Debug, Clone)]
pub struct InterferenceOutcome {
    /// Well-behaved tenants.
    pub victims: usize,
    /// Busy aggressor edge sessions.
    pub aggr_sessions: usize,
    /// Server MAX_AQP budget.
    pub max_aqp: usize,
    /// The cap applied in the capped run.
    pub aggr_cap: usize,
    /// Mean inter-arrival gaps of the victims' rate ramp, slow → fast
    /// (virtual ns).
    pub victim_ramp_gaps_ns: [f64; 3],
    /// Realized victim arrivals per run — a pure function of the ramp
    /// schedule's draws, so identical in all three runs (asserted).
    pub victim_ops: u64,
    /// Victim p99 with no aggressor (virtual µs).
    pub baseline_p99_us: f64,
    /// Victim p99 with the aggressor uncapped (virtual µs).
    pub uncapped_p99_us: f64,
    /// Victim p99 with the aggressor capped (virtual µs).
    pub capped_p99_us: f64,
    /// `uncapped_p99 / baseline_p99` — what lane-stealing costs.
    pub uncapped_ratio: f64,
    /// `capped_p99 / baseline_p99` — the isolation headline (≤ 1.3).
    pub capped_ratio: f64,
    /// Victim active AQPs (summed) mid-run, uncapped.
    pub uncapped_victim_lanes: usize,
    /// Aggressor active AQPs mid-run, uncapped.
    pub uncapped_aggr_lanes: usize,
    /// Victim active AQPs (summed) mid-run, capped.
    pub capped_victim_lanes: usize,
    /// Aggressor active AQPs mid-run, capped.
    pub capped_aggr_lanes: usize,
    /// Requests the aggressor completed while uncapped.
    pub aggr_ops_uncapped: u64,
    /// Requests the aggressor completed while capped.
    pub aggr_ops_capped: u64,
    /// Lab handovers summed over the three runs.
    pub handovers: u64,
    /// Virtual tasks summed over the three runs.
    pub tasks: u64,
}

/// One interference run. Returns (sorted middle-half victim latencies
/// ns, total victim ops, aggressor ops, victim lanes mid-run, aggressor
/// lanes mid-run, handovers, tasks).
type InterferenceRun = (Vec<u64>, u64, u64, usize, usize, u64, u64);

fn interference_run(w: TenantWorkload, mode: AggrMode) -> InterferenceRun {
    let (run, report) = VirtualLab::run_report(move || {
        let domain = Arc::new(FlockDomain::new(elastic_fabric()));
        let server_node = domain.add_node("ten-int-srv");
        let mut scfg = ServerConfig::default();
        // One dispatch worker per connection, so the LPT re-cut after a
        // cap change can fully separate the aggressor's connection from
        // the victims' (with fewer workers, some victim always shares a
        // worker with the aggressor's deep coalesced batches).
        scfg.dispatch_threads = 4;
        scfg.sched.max_aqp = w.max_aqp;
        scfg.sched_interval = Duration::from_micros(100);
        let server = FlockServer::listen(&domain, &server_node, "ten-int", scfg);
        let kv = Arc::new(KvStore::new(KvConfig::default()));
        register_kv_backend(&server, Arc::clone(&kv));

        if mode == AggrMode::Capped {
            server.set_tenant_cap(AGGRESSOR_TENANT, w.aggr_cap);
        }

        // Victims: narrow shared connections (2 eager lanes each), four
        // paced sessions per tenant — enough concurrency that losing a
        // lane shows up as batching delay.
        let gw_v_node = domain.add_node("ten-int-gw-v");
        let mut vcfg = GatewayConfig::default();
        vcfg.handle.n_qps = 2;
        vcfg.handle.eager_qps = true;
        vcfg.handle.mem_threads = VICTIM_SESSIONS + 1;
        vcfg.handle.sched_interval = CLIENT_SCHED_INTERVAL;
        let gw_v = Gateway::new(Arc::clone(&domain), gw_v_node, "ten-int", vcfg);

        // Aggressor: one wide connection (6 eager lanes) carrying many
        // busy sessions — exactly the tenant a cap is for.
        let gw_a_node = domain.add_node("ten-int-gw-a");
        let mut acfg = GatewayConfig::default();
        acfg.handle.n_qps = 6;
        acfg.handle.eager_qps = true;
        acfg.handle.mem_threads = w.aggr_sessions + 1;
        acfg.handle.sched_interval = CLIENT_SCHED_INTERVAL;
        let gw_a = Gateway::new(Arc::clone(&domain), gw_a_node, "ten-int", acfg);

        let mut victim_sessions = Vec::new();
        for t in 1..=w.victims as u32 {
            for s in 0..VICTIM_SESSIONS {
                let sess = gw_v
                    .open_session(t, Arc::new(MemcachedText))
                    .expect("victim session");
                victim_sessions.push((t, s, sess));
            }
        }
        let mut aggr_sessions = Vec::new();
        if mode != AggrMode::Absent {
            for s in 0..w.aggr_sessions {
                aggr_sessions.push((
                    s,
                    gw_a.open_session(AGGRESSOR_TENANT, Arc::new(MemcachedText))
                        .expect("aggressor session"),
                ));
            }
        }

        let go = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let aggr_ops = Arc::new(AtomicU64::new(0));
        type Rows = Arc<Mutex<Vec<(u32, usize, Vec<u64>)>>>;
        let rows: Rows = Arc::new(Mutex::new(Vec::new()));

        let mut root = SimRng::new(w.seed);
        let ramp = victim_ramp(w.victim_reqs);
        let mut victim_tasks = Vec::new();
        for (tenant, s, mut sess) in victim_sessions {
            let go = Arc::clone(&go);
            let rows = Arc::clone(&rows);
            let ramp = ramp.clone();
            let mut rng = root.fork((u64::from(tenant) << 8) | s as u64);
            victim_tasks.push(clock::spawn(&format!("victim-{tenant}-{s}"), move || {
                while !go.load(Ordering::Acquire) {
                    clock::sleep_ns(5_000);
                }
                let key = format!("v{tenant}s{s}");
                let mut wire = Vec::new();
                MemcachedText.encode_request(&Request::Get { key: key.as_bytes() }, &mut wire);
                let mut out = Vec::new();
                let mut lats = Vec::with_capacity(ramp.expected_arrivals() as usize + 8);
                // Walk the arrival-rate ramp on the *scheduled* timeline
                // (cumulative drawn gaps), not the wall clock: the number
                // and spacing of arrivals is then a pure function of the
                // session's RNG, so all three runs offer the same load
                // and only the measured latencies differ.
                let mut sched_ns = 0u64;
                while let Some(gap) = ramp.gap_at(sched_ns, &mut rng) {
                    sched_ns += gap;
                    clock::sleep_ns(gap);
                    out.clear();
                    let at = clock::now_ns();
                    sess.pump(&wire, &mut out).expect("victim pump");
                    lats.push(clock::now_ns().saturating_sub(at));
                }
                rows.lock().unwrap().push((tenant, s, lats));
            }));
        }

        let mut aggr_tasks = Vec::new();
        let burst_delay = aggr_burst_delay_ns(w.victim_reqs);
        for (s, mut sess) in aggr_sessions {
            let go = Arc::clone(&go);
            let stop = Arc::clone(&stop);
            let aggr_ops = Arc::clone(&aggr_ops);
            let payload = w.payload;
            aggr_tasks.push(clock::spawn(&format!("aggr-{s}"), move || {
                while !go.load(Ordering::Acquire) {
                    clock::sleep_ns(5_000);
                }
                let value = vec![b'a'; payload];
                let key = format!("a{s}");
                let mut wire = Vec::new();
                MemcachedText.encode_request(
                    &Request::Set {
                        key: key.as_bytes(),
                        value: &value,
                    },
                    &mut wire,
                );
                let mut out = Vec::new();
                // Burst in mid-ramp: the victims' slow first stage lets
                // the receiver's worker cut converge on a quiet cohort,
                // and the aggressor then arrives at full blast into that
                // converged state -- the lane-stealing scenario a cap
                // exists for. (An aggressor present from t=0 just gets
                // packed separately by the first cut and never hurts.)
                clock::sleep_ns(burst_delay);
                while !stop.load(Ordering::Acquire) {
                    out.clear();
                    sess.pump(&wire, &mut out).expect("aggressor pump");
                    aggr_ops.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }

        go.store(true, Ordering::Release);
        // Sample lane shares mid-run (see `share_snapshot_ns`).
        clock::sleep_ns(share_snapshot_ns(w.victim_reqs));
        let snap = server.fairness_snapshot();
        let victim_lanes: usize = (1..=w.victims as u32)
            .filter_map(|t| snap.tenant(t).map(|r| r.active_qps))
            .sum();
        let aggr_lanes = snap
            .tenant(AGGRESSOR_TENANT)
            .map_or(0, |r| r.active_qps);

        for t in victim_tasks {
            let _ = t.join();
        }
        stop.store(true, Ordering::Release);
        for t in aggr_tasks {
            let _ = t.join();
        }

        gw_v.close().expect("victim gateway close");
        gw_a.close().expect("aggressor gateway close");
        drop(gw_v);
        drop(gw_a);
        server.shutdown(&domain);
        drop(server);
        drop(
            Arc::try_unwrap(domain)
                .ok()
                .expect("all domain users joined"),
        );

        // Keep each session's middle *stage* of the arrival ramp: the
        // slow first stage doubles as scheduler warm-up, and the fast
        // last stage self-queues (arrivals outpace one session's
        // round-trips) and overlaps cohort wind-down, both of which
        // inflate p99 identically in *every* mode and would wash out
        // the aggressor's effect. The nominal-rate stage, same cut
        // everywhere, is where the ratios compare converged states.
        let mut collected = std::mem::take(&mut *rows.lock().unwrap());
        collected.sort_unstable_by_key(|(t, s, _)| (*t, *s));
        let mut all: Vec<u64> = Vec::new();
        let mut victim_ops = 0u64;
        for (_t, _s, l) in &collected {
            victim_ops += l.len() as u64;
            all.extend_from_slice(&l[l.len() / 3..2 * l.len() / 3]);
        }
        all.sort_unstable();
        (
            all,
            victim_ops,
            aggr_ops.load(Ordering::Relaxed),
            victim_lanes,
            aggr_lanes,
        )
    });
    let (lats, victim_ops, aggr_ops, victim_lanes, aggr_lanes) = run;
    (
        lats,
        victim_ops,
        aggr_ops,
        victim_lanes,
        aggr_lanes,
        report.handovers,
        report.tasks_spawned,
    )
}

/// Run the interference scenario: baseline, uncapped, capped — same
/// victim workload in each.
pub fn run_interference(w: TenantWorkload) -> InterferenceOutcome {
    let (base, base_ops, _, _, _, h0, t0) = interference_run(w, AggrMode::Absent);
    let (unc, unc_ops, aggr_unc, unc_vl, unc_al, h1, t1) = interference_run(w, AggrMode::Uncapped);
    let (cap, cap_ops, aggr_cap, cap_vl, cap_al, h2, t2) = interference_run(w, AggrMode::Capped);
    // The ramp schedule is drawn from per-session RNGs, never the
    // server: every mode must offer the exact same load.
    assert_eq!(base_ops, unc_ops, "offered load differs across runs");
    assert_eq!(base_ops, cap_ops, "offered load differs across runs");
    let baseline_p99_us = percentile_us(&base, 0.99);
    let uncapped_p99_us = percentile_us(&unc, 0.99);
    let capped_p99_us = percentile_us(&cap, 0.99);
    let ratio = |x: f64| if baseline_p99_us > 0.0 { x / baseline_p99_us } else { 0.0 };
    InterferenceOutcome {
        victims: w.victims,
        aggr_sessions: w.aggr_sessions,
        max_aqp: w.max_aqp,
        aggr_cap: w.aggr_cap,
        victim_ramp_gaps_ns: [2.0 * VICTIM_GAP_NS, VICTIM_GAP_NS, 0.5 * VICTIM_GAP_NS],
        victim_ops: base_ops,
        baseline_p99_us,
        uncapped_p99_us,
        capped_p99_us,
        uncapped_ratio: ratio(uncapped_p99_us),
        capped_ratio: ratio(capped_p99_us),
        uncapped_victim_lanes: unc_vl,
        uncapped_aggr_lanes: unc_al,
        capped_victim_lanes: cap_vl,
        capped_aggr_lanes: cap_al,
        aggr_ops_uncapped: aggr_unc,
        aggr_ops_capped: aggr_cap,
        handovers: h0 + h1 + h2,
        tasks: t0 + t1 + t2,
    }
}

// ---------------------------------------------------------------------
// Sweep + JSON
// ---------------------------------------------------------------------

/// Run all three scenarios and render the stable-order JSON document.
pub fn run_tenant_suite(quick: bool, log: bool) -> String {
    let w = TenantWorkload::preset(quick);
    if log {
        eprintln!(
            "bench_tenant: zipf mix ({} tenants x {} sessions x {} reqs)...",
            w.tenants, w.sessions_per_tenant, w.reqs_per_session
        );
    }
    let zipf = run_zipf_mix(w);
    if log {
        eprintln!(
            "  -> jains(tput) {:.3}, jains(completed) {:.3}, {} store keys",
            zipf.jains_tput, zipf.jains_completed, zipf.store_keys
        );
        eprintln!("bench_tenant: hot-key storm...");
    }
    let hot = run_hot_key_storm(w);
    if log {
        eprintln!(
            "  -> jains(tput) {:.3}, jains(completed) {:.3}",
            hot.jains_tput, hot.jains_completed
        );
        eprintln!(
            "bench_tenant: interference ({} victims vs {} aggressor sessions, cap {})...",
            w.victims, w.aggr_sessions, w.aggr_cap
        );
    }
    let intf = run_interference(w);
    if log {
        eprintln!(
            "  -> victim p99 {:.1} us baseline, {:.1} us uncapped ({:.3}x), {:.1} us capped ({:.3}x)",
            intf.baseline_p99_us,
            intf.uncapped_p99_us,
            intf.uncapped_ratio,
            intf.capped_p99_us,
            intf.capped_ratio
        );
        eprintln!(
            "  -> mid-run lanes: uncapped {}v/{}a, capped {}v/{}a",
            intf.uncapped_victim_lanes,
            intf.uncapped_aggr_lanes,
            intf.capped_victim_lanes,
            intf.capped_aggr_lanes
        );
    }
    render_json(quick, w, &zipf, &hot, &intf)
}

fn render_mix(j: &mut String, name: &str, m: &MixOutcome, trailing_comma: bool) {
    let _ = writeln!(j, "  \"{name}\": {{");
    j.push_str("    \"tenants\": [\n");
    for (i, t) in m.tenants.iter().enumerate() {
        let comma = if i + 1 < m.tenants.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "      {{ \"tenant\": {}, \"ops\": {}, \"tput_ops_per_ms\": {:.2}, \"median_us\": {:.2}, \"p99_us\": {:.2}, \"completed\": {} }}{comma}",
            t.tenant, t.ops, t.tput_ops_per_ms, t.median_us, t.p99_us, t.completed
        );
    }
    j.push_str("    ],\n");
    let _ = writeln!(j, "    \"jains_tput\": {:.3},", m.jains_tput);
    let _ = writeln!(j, "    \"jains_completed\": {:.3},", m.jains_completed);
    let _ = writeln!(j, "    \"store_keys\": {},", m.store_keys);
    let _ = writeln!(j, "    \"handovers\": {},", m.handovers);
    let _ = writeln!(j, "    \"tasks\": {}", m.tasks);
    j.push_str(if trailing_comma { "  },\n" } else { "  }\n" });
}

/// Hand-written JSON with a stable field order (the offline workspace
/// has no serde); fixed float precision keeps identical runs
/// byte-identical.
pub fn render_json(
    quick: bool,
    w: TenantWorkload,
    zipf: &MixOutcome,
    hot: &MixOutcome,
    intf: &InterferenceOutcome,
) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"flock-bench-tenant/v1\",\n");
    let _ = writeln!(j, "  \"quick\": {quick},");
    j.push_str("  \"executor\": \"virtual\",\n");
    let _ = writeln!(j, "  \"payload_bytes\": {},", w.payload);
    let _ = writeln!(j, "  \"seed\": {},", w.seed);
    let _ = writeln!(j, "  \"sessions_per_tenant\": {},", w.sessions_per_tenant);
    let _ = writeln!(j, "  \"reqs_per_session\": {},", w.reqs_per_session);
    let _ = writeln!(j, "  \"zipf_keys\": {},", w.keys);
    render_mix(&mut j, "zipf_mix", zipf, true);
    render_mix(&mut j, "hot_key_storm", hot, true);
    j.push_str("  \"interference\": {\n");
    let _ = writeln!(j, "    \"victims\": {},", intf.victims);
    let _ = writeln!(j, "    \"victim_reqs\": {},", w.victim_reqs);
    let _ = writeln!(
        j,
        "    \"victim_ramp_gaps_ns\": [{:.0}, {:.0}, {:.0}],",
        intf.victim_ramp_gaps_ns[0], intf.victim_ramp_gaps_ns[1], intf.victim_ramp_gaps_ns[2]
    );
    let _ = writeln!(j, "    \"victim_ops\": {},", intf.victim_ops);
    let _ = writeln!(j, "    \"aggr_sessions\": {},", intf.aggr_sessions);
    let _ = writeln!(j, "    \"max_aqp\": {},", intf.max_aqp);
    let _ = writeln!(j, "    \"aggr_cap\": {},", intf.aggr_cap);
    let _ = writeln!(j, "    \"baseline_p99_us\": {:.2},", intf.baseline_p99_us);
    let _ = writeln!(j, "    \"uncapped_p99_us\": {:.2},", intf.uncapped_p99_us);
    let _ = writeln!(j, "    \"capped_p99_us\": {:.2},", intf.capped_p99_us);
    let _ = writeln!(j, "    \"uncapped_ratio\": {:.3},", intf.uncapped_ratio);
    let _ = writeln!(j, "    \"capped_ratio\": {:.3},", intf.capped_ratio);
    let _ = writeln!(j, "    \"uncapped_victim_lanes\": {},", intf.uncapped_victim_lanes);
    let _ = writeln!(j, "    \"uncapped_aggr_lanes\": {},", intf.uncapped_aggr_lanes);
    let _ = writeln!(j, "    \"capped_victim_lanes\": {},", intf.capped_victim_lanes);
    let _ = writeln!(j, "    \"capped_aggr_lanes\": {},", intf.capped_aggr_lanes);
    let _ = writeln!(j, "    \"aggr_ops_uncapped\": {},", intf.aggr_ops_uncapped);
    let _ = writeln!(j, "    \"aggr_ops_capped\": {},", intf.aggr_ops_capped);
    let _ = writeln!(j, "    \"handovers\": {},", intf.handovers);
    let _ = writeln!(j, "    \"tasks\": {}", intf.tasks);
    j.push_str("  }\n");
    j.push_str("}\n");
    j
}
