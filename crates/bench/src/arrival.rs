//! Open-loop arrival processes for virtual-time benchmarks.
//!
//! Closed-loop clients (issue, wait, issue) let a slow server throttle
//! its own offered load, hiding saturation; the paper's interference
//! and crossover questions need *open-loop* arrivals — a Poisson
//! process whose rate is a property of the client, not of the server's
//! response time. [`RateRamp`] is that process, as a piecewise-constant
//! rate schedule: each [`RampStage`] holds a mean inter-arrival gap for
//! a virtual-time span, and [`RateRamp::gap_at`] draws the next
//! exponential gap from whichever stage the caller's elapsed time falls
//! in. A single endless stage ([`RateRamp::constant`]) is plain Poisson
//! pacing; several stages form the arrival-rate ramp the tenant
//! interference scenario drives its victims with.
//!
//! Draws come from the caller's forked [`SimRng`], so two runs of the
//! same configuration see identical arrival times — the determinism
//! contract every bench JSON relies on.

use flock_sim::SimRng;

/// One constant-rate span of a [`RateRamp`].
#[derive(Debug, Clone, Copy)]
pub struct RampStage {
    /// Mean inter-arrival gap (virtual ns) while this stage is active.
    pub mean_gap_ns: f64,
    /// Virtual-time span of the stage; `u64::MAX` never ends.
    pub duration_ns: u64,
}

/// A piecewise-constant open-loop arrival schedule.
#[derive(Debug, Clone)]
pub struct RateRamp {
    stages: Vec<RampStage>,
}

impl RateRamp {
    /// Poisson arrivals at a single constant rate, forever (the caller
    /// bounds the run by request count or an external stop signal).
    pub fn constant(mean_gap_ns: f64) -> RateRamp {
        RateRamp {
            stages: vec![RampStage {
                mean_gap_ns,
                duration_ns: u64::MAX,
            }],
        }
    }

    /// An explicit stage schedule. Stages run in order; arrivals stop
    /// when the last stage's span ends.
    pub fn stages(stages: Vec<RampStage>) -> RateRamp {
        assert!(!stages.is_empty(), "a ramp needs at least one stage");
        assert!(
            stages.iter().all(|s| s.mean_gap_ns > 0.0),
            "mean gaps must be positive"
        );
        RateRamp { stages }
    }

    /// A ramp targeting ~`reqs_per_stage` arrivals in each stage: stage
    /// `i` uses `gaps_ns[i]` with span `reqs_per_stage * gaps_ns[i]`.
    pub fn per_stage_target(gaps_ns: &[f64], reqs_per_stage: u64) -> RateRamp {
        RateRamp::stages(
            gaps_ns
                .iter()
                .map(|&g| RampStage {
                    mean_gap_ns: g,
                    duration_ns: (reqs_per_stage as f64 * g) as u64,
                })
                .collect(),
        )
    }

    /// Draw the gap to the next arrival for a client `elapsed_ns` into
    /// its run, or `None` when the schedule is over.
    pub fn gap_at(&self, elapsed_ns: u64, rng: &mut SimRng) -> Option<u64> {
        let mut start = 0u64;
        for s in &self.stages {
            let end = start.saturating_add(s.duration_ns);
            if elapsed_ns < end {
                return Some(rng.exp(s.mean_gap_ns) as u64);
            }
            start = end;
        }
        None
    }

    /// Total scheduled span, or `None` if the final stage is endless.
    pub fn total_ns(&self) -> Option<u64> {
        let mut total = 0u64;
        for s in &self.stages {
            if s.duration_ns == u64::MAX {
                return None;
            }
            total = total.saturating_add(s.duration_ns);
        }
        Some(total)
    }

    /// Expected arrival count over the whole schedule (∞-safe: endless
    /// stages report the count of the bounded prefix).
    pub fn expected_arrivals(&self) -> f64 {
        self.stages
            .iter()
            .filter(|s| s.duration_ns != u64::MAX)
            .map(|s| s.duration_ns as f64 / s.mean_gap_ns)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_ends() {
        let r = RateRamp::constant(1000.0);
        let mut rng = SimRng::new(7);
        assert!(r.total_ns().is_none());
        assert!(r.gap_at(u64::MAX - 1, &mut rng).is_some());
    }

    #[test]
    fn stages_select_by_elapsed_time_and_end() {
        let r = RateRamp::per_stage_target(&[4000.0, 1000.0], 10);
        assert_eq!(r.total_ns(), Some(40_000 + 10_000));
        let mut rng = SimRng::new(7);
        // Stage means differ 4x; averaged draws must reflect the stage.
        let mean_of = |r: &RateRamp, at: u64, rng: &mut SimRng| {
            (0..500).map(|_| r.gap_at(at, rng).unwrap() as f64).sum::<f64>() / 500.0
        };
        let slow = mean_of(&r, 0, &mut rng);
        let fast = mean_of(&r, 45_000, &mut rng);
        assert!(slow > 2.0 * fast, "ramp stages not honored: {slow} vs {fast}");
        assert!(r.gap_at(50_000, &mut rng).is_none(), "schedule must end");
    }

    #[test]
    fn expected_arrivals_sums_stage_targets() {
        let r = RateRamp::per_stage_target(&[2000.0, 500.0, 1000.0], 20);
        let e = r.expected_arrivals();
        assert!((e - 60.0).abs() < 1e-9, "expected ~60 arrivals, got {e}");
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let r = RateRamp::constant(3000.0);
        let mut a = SimRng::new(11);
        let mut b = SimRng::new(11);
        for _ in 0..64 {
            assert_eq!(r.gap_at(0, &mut a), r.gap_at(0, &mut b));
        }
    }
}
