//! RPC-vs-one-sided crossover sweep (the paper's motivating trade-off,
//! §2): the same GET/SET workload measured three ways — always through
//! the coalesced RPC path, always through one-sided READ + seqlock
//! validation ([`flock_gateway::KvReadClient`]), and under the
//! [`flock_kvstore::AdaptivePolicy`] — across value size, client
//! fan-in, and write mix, inside the deterministic [`VirtualLab`].
//!
//! The physics being reproduced: a one-sided GET costs one verb of
//! *responder* NIC processing — the server NIC must have that client's
//! QP state resident and serialize the payload fetch through its
//! processing units — and zero server CPU; an RPC GET costs server CPU
//! plus NIC verbs *amortized over the TCQ coalescing degree*, over a
//! handful of shared QPs that stay hot in the NIC cache. So one-sided
//! wins at low fan-in, where its QP footprint fits the responder's
//! connection cache and its latency is a bare round trip; coalesced
//! RPC overtakes once fan-in pushes the per-client mem QPs past the
//! cache (every READ then pays the PCIe state fetch, serialized on the
//! responder's lanes) — and at any fan-in once values outgrow the
//! inline slot, where one-sided degrades to a wasted READ plus the
//! same RPC. The rendered JSON's `crossover` section pins where, and
//! EXPERIMENTS.md narrates the thresholds.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use flock_core::api::fl_connect;
use flock_core::client::HandleConfig;
use flock_core::onesided::ReadStats;
use flock_core::server::{FlockServer, ServerConfig};
use flock_core::FlockDomain;
use flock_fabric::FabricConfig;
use flock_gateway::{register_kv_mirror_backend, KvReadClient, KvReadStats};
use flock_kvstore::{KvConfig, KvStore, ReadMode};
use flock_sim::rng::SimRng;
use flock_sim::vtime::VirtualLab;
use flock_sync::clock;

use crate::arrival::RateRamp;

/// Mean inter-request gap per client (virtual ns): open-loop Poisson
/// arrivals, so the coalescing degree is set by genuine concurrency,
/// not by lockstep rounds.
const GAP_NS: f64 = 2_000.0;

/// Client threads per client node. Each node is one application
/// process: its threads share one connection (so the RPC path gets
/// per-process TCQ coalescing) while each thread drives its own mem
/// lane (so the one-sided path's QP footprint at the server grows with
/// total fan-in — the axis the crossover turns on).
const THREADS_PER_NODE: usize = 4;

/// Largest value the mirror can publish inline at the default subslot
/// stride (512 B slot − 8 B key prefix − 8 B version word − length
/// headroom). Larger values spill: SETs publish a bare-key marker and
/// every one-sided GET falls back to RPC.
const INLINE_VALUE_CAP: usize = 448;

/// The crossover runs against a deliberately modest NIC: two engine
/// lanes of responder processing and a 24-entry connection-state
/// cache. That is the regime the paper's argument is about — many
/// clients' one-sided QPs cannot all stay resident, while the RPC
/// path's few shared QPs do (§2). At 32 clients the one-sided mode
/// touches ~48 server-side QPs (32 per-thread mem QPs + 16 shared
/// lanes), twice the cache's reach, while RPC mode touches only the
/// 16 lanes and stays resident. The defaults (4 lanes, 1024 entries)
/// just move the same crossover out to fan-ins too large to sweep in
/// CI.
fn crossover_fabric() -> FabricConfig {
    let mut fc = FabricConfig::default();
    fc.nic_lanes = 2;
    fc.nic_cache_entries = 24;
    fc
}

/// One configuration of the crossover surface.
#[derive(Debug, Clone, Copy)]
pub struct OneSidedPoint {
    /// Total concurrent client threads, spread over
    /// [`THREADS_PER_NODE`]-thread client nodes (must divide evenly).
    pub clients: usize,
    /// Value bytes per key. Up to [`INLINE_VALUE_CAP`] the mirror
    /// publishes inline; past it every SET spills and one-sided GETs
    /// always fall back — the value-size arm of the crossover.
    pub value: usize,
    /// Percentage of requests that are SETs (writes always RPC).
    pub write_pct: u32,
}

/// Workload knobs shared by every point.
#[derive(Debug, Clone, Copy)]
pub struct OneSidedWorkload {
    /// Requests each client issues.
    pub reqs_per_client: u64,
    /// Key-space size; the mirror gets one slot per key (no aliasing),
    /// so every fallback in the numbers is contention, not eviction.
    pub keys: u64,
    /// Root seed for per-client RNGs.
    pub seed: u64,
}

impl OneSidedWorkload {
    /// CI smoke (`quick`) or the checked-in `BENCH_onesided.json`.
    pub fn preset(quick: bool) -> OneSidedWorkload {
        OneSidedWorkload {
            reqs_per_client: if quick { 24 } else { 64 },
            keys: 16,
            seed: 42,
        }
    }
}

/// Measured outcome of one (point, mode) run.
#[derive(Debug, Clone)]
pub struct ModeOutcome {
    /// The configuration measured.
    pub point: OneSidedPoint,
    /// Which read path the clients used.
    pub mode: ReadMode,
    /// GETs completed.
    pub gets: u64,
    /// SETs completed.
    pub sets: u64,
    /// Virtual time from first client start to last client finish.
    pub virtual_ms: f64,
    /// GET+SET throughput in ops per virtual second.
    pub ops_per_vsec: f64,
    /// Median GET latency (virtual µs).
    pub get_median_us: f64,
    /// p99 GET latency (virtual µs).
    pub get_p99_us: f64,
    /// GETs served by a validated one-sided READ.
    pub one_sided: u64,
    /// GETs served by the RPC path (chosen or fallen back to).
    pub rpc_reads: u64,
    /// One-sided attempts abandoned to the RPC fallback.
    pub fallbacks: u64,
    /// Torn/locked snapshots re-read by the one-sided readers.
    pub retries: u64,
    /// Retries per successful one-sided read.
    pub retry_rate: f64,
    /// RDMA READ verbs the one-sided readers issued.
    pub verbs: u64,
    /// Lab handovers — a determinism fingerprint.
    pub handovers: u64,
    /// Virtual tasks spawned.
    pub tasks: u64,
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1000.0
}

/// The JSON name of a mode (also the log label).
pub fn mode_name(mode: ReadMode) -> &'static str {
    match mode {
        ReadMode::Rpc => "rpc",
        ReadMode::OneSided => "one_sided",
        ReadMode::Adaptive => "adaptive",
    }
}

/// Run one (point, mode) configuration inside a fresh [`VirtualLab`].
pub fn run_point(p: OneSidedPoint, w: OneSidedWorkload, mode: ReadMode) -> ModeOutcome {
    let (mut outcome, report) = VirtualLab::run_report(move || {
        let domain = Arc::new(FlockDomain::new(crossover_fabric()));
        let server_node = domain.add_node("xover-srv");
        let mut scfg = ServerConfig::default();
        // Server CPU scales out (the paper's point: cores are
        // plentiful, responder NIC processing is not), so give the RPC
        // path enough dispatchers that the NIC stays its bottleneck.
        scfg.dispatch_threads = 4;
        scfg.sched_interval = Duration::from_micros(100);
        let server = FlockServer::listen(&domain, &server_node, "xover", scfg);
        let kv = Arc::new(KvStore::new(KvConfig::default()));
        let inline_max = p.value.min(INLINE_VALUE_CAP) as u32;
        register_kv_mirror_backend(&server, Arc::clone(&kv), inline_max, w.keys as u32)
            .expect("mirror backend");

        // Client processes: THREADS_PER_NODE threads per node sharing
        // one connection. The RPC path coalesces within each process;
        // the one-sided path parks one mem-lane QP per thread at the
        // server — the per-client state the responder NIC must cache.
        assert_eq!(p.clients % THREADS_PER_NODE.min(p.clients), 0);
        let nodes = p.clients.div_ceil(THREADS_PER_NODE);
        let handles: Vec<_> = (0..nodes)
            .map(|n| {
                let client_node = domain.add_node(&format!("xover-cli{n}"));
                let mut cfg = HandleConfig::default();
                cfg.n_qps = 2;
                cfg.eager_qps = true;
                cfg.mem_threads = THREADS_PER_NODE + 2;
                cfg.sched_interval = Duration::from_micros(100);
                // Conventional one-sided design: every reader thread
                // gets its own RC QP to the server. This is the NIC
                // state that scales with fan-in and overruns the
                // responder's connection cache (the crossover driver);
                // the RPC path keeps the two shared lanes regardless.
                cfg.dedicated_mem_qps = true;
                fl_connect(&domain, &client_node, "xover", cfg).expect("connect")
            })
            .collect();

        // Preload every key at the point's value size (outside the
        // measured window), so GETs never miss and the one-sided path
        // starts from fully published slots.
        let mut loader = KvReadClient::new(&handles[0], ReadMode::Rpc).expect("loader");
        let preload = vec![b'x'; p.value];
        for key in 0..w.keys {
            loader.set(key, &preload).expect("preload");
        }
        drop(loader);

        // Build clients in deterministic order before any task runs.
        let clients: Vec<KvReadClient> = (0..p.clients)
            .map(|u| {
                KvReadClient::new(&handles[u / THREADS_PER_NODE], mode).expect("client")
            })
            .collect();

        let go = Arc::new(AtomicBool::new(false));
        type Row = (u64, u64, Vec<u64>, u64, u64, KvReadStats, ReadStats);
        let rows: Arc<Mutex<Vec<Row>>> = Arc::new(Mutex::new(Vec::new()));

        let mut root = SimRng::new(w.seed);
        let ramp = RateRamp::constant(GAP_NS);
        let write_frac = f64::from(p.write_pct) / 100.0;
        let mut tasks = Vec::with_capacity(p.clients);
        for (u, mut client) in clients.into_iter().enumerate() {
            let go = Arc::clone(&go);
            let rows = Arc::clone(&rows);
            let mut rng = root.fork(u as u64);
            let ramp = ramp.clone();
            tasks.push(clock::spawn(&format!("xover-c{u}"), move || {
                while !go.load(Ordering::Acquire) {
                    clock::sleep_ns(5_000);
                }
                let value = vec![b'w'; p.value];
                let mut out = Vec::with_capacity(p.value);
                let mut lats = Vec::with_capacity(w.reqs_per_client as usize);
                let (mut gets, mut sets) = (0u64, 0u64);
                let t0 = clock::now_ns();
                for _ in 0..w.reqs_per_client {
                    let gap = ramp
                        .gap_at(clock::now_ns().saturating_sub(t0), &mut rng)
                        .expect("constant ramp never ends");
                    clock::sleep_ns(gap);
                    let key = rng.below(w.keys);
                    if rng.chance(write_frac) {
                        client.set(key, &value).expect("set");
                        sets += 1;
                    } else {
                        let at = clock::now_ns();
                        let hit = client.get(key, &mut out).expect("get");
                        lats.push(clock::now_ns().saturating_sub(at));
                        debug_assert!(hit, "preloaded keys never miss");
                        gets += 1;
                    }
                }
                let t1 = clock::now_ns();
                rows.lock().unwrap().push((
                    gets,
                    sets,
                    lats,
                    t0,
                    t1,
                    client.stats(),
                    client.reader_stats(),
                ));
            }));
        }
        go.store(true, Ordering::Release);
        for t in tasks {
            let _ = t.join();
        }

        drop(handles);
        server.shutdown(&domain);
        drop(server);
        drop(
            Arc::try_unwrap(domain)
                .ok()
                .expect("all domain users joined"),
        );

        let collected = std::mem::take(&mut *rows.lock().unwrap());
        let (mut gets, mut sets) = (0u64, 0u64);
        let mut all_lat: Vec<u64> = Vec::new();
        let (mut t0, mut t_end) = (u64::MAX, 0u64);
        let mut kv_stats = KvReadStats::default();
        let mut rd_stats = ReadStats::default();
        for (g, s, lats, start, finish, ks, rs) in collected {
            gets += g;
            sets += s;
            all_lat.extend(lats);
            t0 = t0.min(start);
            t_end = t_end.max(finish);
            kv_stats.one_sided += ks.one_sided;
            kv_stats.rpc += ks.rpc;
            kv_stats.fallbacks += ks.fallbacks;
            rd_stats.reads += rs.reads;
            rd_stats.verbs += rs.verbs;
            rd_stats.retries += rs.retries;
            rd_stats.failures += rs.failures;
        }
        let t0 = if t0 == u64::MAX { t_end } else { t0 };
        all_lat.sort_unstable();
        let elapsed_ns = t_end.saturating_sub(t0).max(1);
        ModeOutcome {
            point: p,
            mode,
            gets,
            sets,
            virtual_ms: elapsed_ns as f64 / 1e6,
            ops_per_vsec: (gets + sets) as f64 * 1e9 / elapsed_ns as f64,
            get_median_us: percentile_us(&all_lat, 0.5),
            get_p99_us: percentile_us(&all_lat, 0.99),
            one_sided: kv_stats.one_sided,
            rpc_reads: kv_stats.rpc,
            fallbacks: kv_stats.fallbacks,
            retries: rd_stats.retries,
            retry_rate: rd_stats.retries as f64 / rd_stats.reads.max(1) as f64,
            verbs: rd_stats.verbs,
            handovers: 0, // filled from the lab report below
            tasks: 0,
        }
    });
    outcome.handovers = report.handovers;
    outcome.tasks = report.tasks_spawned;
    outcome
}

/// The sweep grid: quick (CI smoke) or full (checked-in JSON).
pub fn sweep_points(quick: bool) -> Vec<OneSidedPoint> {
    let pt = |clients, value, write_pct| OneSidedPoint {
        clients,
        value,
        write_pct,
    };
    let mut points = Vec::new();
    if quick {
        for &value in &[32usize, 448] {
            for &clients in &[4usize, 32] {
                points.push(pt(clients, value, 20));
            }
        }
    } else {
        // Inline values: the fan-in arm of the crossover.
        for &value in &[32usize, 192, 448] {
            for &write_pct in &[0u32, 20] {
                for &clients in &[4usize, 16, 64] {
                    points.push(pt(clients, value, write_pct));
                }
            }
        }
        // Oversize values: past the inline slot capacity every SET
        // spills and every one-sided GET burns a READ only to fall
        // back to RPC — the value-size arm, where RPC should win at
        // every fan-in.
        for &clients in &[4usize, 16, 64] {
            points.push(pt(clients, 1024, 20));
        }
    }
    points
}

/// All three modes of one point, in fixed (rpc, one_sided, adaptive)
/// order.
pub fn run_point_modes(p: OneSidedPoint, w: OneSidedWorkload) -> [ModeOutcome; 3] {
    [
        run_point(p, w, ReadMode::Rpc),
        run_point(p, w, ReadMode::OneSided),
        run_point(p, w, ReadMode::Adaptive),
    ]
}

/// One row of the crossover table: a (value, write_pct) slice of the
/// sweep, compared across client counts.
#[derive(Debug, Clone)]
pub struct CrossoverRow {
    /// Value bytes of this slice.
    pub value: usize,
    /// Write percentage of this slice.
    pub write_pct: u32,
    /// Ascending-client entries: (clients, rpc, one_sided, adaptive)
    /// ops per virtual second.
    pub series: Vec<(usize, f64, f64, f64)>,
    /// Smallest client count where the RPC path out-throughputs the
    /// one-sided path (0 = one-sided won everywhere in this slice).
    pub rpc_wins_at_clients: usize,
}

/// Fold per-mode outcomes into the crossover table.
pub fn crossover_rows(outcomes: &[[ModeOutcome; 3]]) -> Vec<CrossoverRow> {
    let mut rows: Vec<CrossoverRow> = Vec::new();
    for trio in outcomes {
        let p = trio[0].point;
        let (rpc, os, ad) = (
            trio[0].ops_per_vsec,
            trio[1].ops_per_vsec,
            trio[2].ops_per_vsec,
        );
        let row = match rows
            .iter_mut()
            .find(|r| r.value == p.value && r.write_pct == p.write_pct)
        {
            Some(r) => r,
            None => {
                rows.push(CrossoverRow {
                    value: p.value,
                    write_pct: p.write_pct,
                    series: Vec::new(),
                    rpc_wins_at_clients: 0,
                });
                rows.last_mut().expect("just pushed")
            }
        };
        row.series.push((p.clients, rpc, os, ad));
    }
    for row in &mut rows {
        row.series.sort_by_key(|&(c, ..)| c);
        row.rpc_wins_at_clients = row
            .series
            .iter()
            .find(|&&(_, rpc, os, _)| rpc > os)
            .map_or(0, |&(c, ..)| c);
    }
    rows
}

/// Worst relative shortfall of the adaptive mode against the better of
/// the two fixed modes, across the whole sweep (0 = adaptive never
/// loses; 0.10 = at its worst point it left 10% on the table).
pub fn adaptive_worst_regret(outcomes: &[[ModeOutcome; 3]]) -> f64 {
    outcomes
        .iter()
        .map(|trio| {
            let best = trio[0].ops_per_vsec.max(trio[1].ops_per_vsec);
            if best > 0.0 {
                ((best - trio[2].ops_per_vsec) / best).max(0.0)
            } else {
                0.0
            }
        })
        .fold(0.0, f64::max)
}

/// Run the sweep and render the stable-order JSON document.
pub fn run_onesided_suite(quick: bool, log: bool) -> String {
    let w = OneSidedWorkload::preset(quick);
    let points = sweep_points(quick);
    let mut outcomes = Vec::with_capacity(points.len());
    for p in points {
        if log {
            eprintln!(
                "bench_onesided: clients={} value={}B writes={}% ...",
                p.clients, p.value, p.write_pct
            );
        }
        let trio = run_point_modes(p, w);
        if log {
            for o in &trio {
                eprintln!(
                    "  {:>9}: {:.0} ops/vsec (GET median {:.2} us, p99 {:.2} us, \
                     one-sided {}/{} reads, {} fallbacks, retry rate {:.3})",
                    mode_name(o.mode),
                    o.ops_per_vsec,
                    o.get_median_us,
                    o.get_p99_us,
                    o.one_sided,
                    o.one_sided + o.rpc_reads,
                    o.fallbacks,
                    o.retry_rate
                );
            }
        }
        outcomes.push(trio);
    }
    render_json(quick, w, &outcomes)
}

/// Hand-written JSON with a stable field order (the offline workspace
/// has no serde); fixed float precision keeps identical runs
/// byte-identical.
pub fn render_json(quick: bool, w: OneSidedWorkload, outcomes: &[[ModeOutcome; 3]]) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"flock-bench-onesided/v1\",\n");
    let _ = writeln!(j, "  \"quick\": {quick},");
    j.push_str("  \"executor\": \"virtual\",\n");
    let _ = writeln!(j, "  \"seed\": {},", w.seed);
    let _ = writeln!(j, "  \"keys\": {},", w.keys);
    let _ = writeln!(j, "  \"reqs_per_client\": {},", w.reqs_per_client);
    let _ = writeln!(j, "  \"mean_gap_ns\": {:.0},", GAP_NS);
    let _ = writeln!(j, "  \"threads_per_node\": {THREADS_PER_NODE},");
    let _ = writeln!(j, "  \"inline_value_cap\": {INLINE_VALUE_CAP},");
    let fc = crossover_fabric();
    let _ = writeln!(j, "  \"nic_lanes\": {},", fc.nic_lanes);
    let _ = writeln!(j, "  \"nic_cache_entries\": {},", fc.nic_cache_entries);
    j.push_str("  \"points\": [\n");
    let total = outcomes.len() * 3;
    for (i, o) in outcomes.iter().flatten().enumerate() {
        let comma = if i + 1 < total { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"clients\": {}, \"value_bytes\": {}, \"write_pct\": {}, \
             \"mode\": \"{}\", \"gets\": {}, \"sets\": {}, \"virtual_ms\": {:.3}, \
             \"ops_per_vsec\": {:.0}, \"get_median_us\": {:.2}, \"get_p99_us\": {:.2}, \
             \"one_sided\": {}, \"rpc_reads\": {}, \"fallbacks\": {}, \
             \"retries\": {}, \"retry_rate\": {:.4}, \"verbs\": {}, \
             \"handovers\": {}, \"tasks\": {}}}{comma}",
            o.point.clients,
            o.point.value,
            o.point.write_pct,
            mode_name(o.mode),
            o.gets,
            o.sets,
            o.virtual_ms,
            o.ops_per_vsec,
            o.get_median_us,
            o.get_p99_us,
            o.one_sided,
            o.rpc_reads,
            o.fallbacks,
            o.retries,
            o.retry_rate,
            o.verbs,
            o.handovers,
            o.tasks
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"crossover\": [\n");
    let rows = crossover_rows(outcomes);
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let mut series = String::new();
        for (k, &(c, rpc, os, ad)) in r.series.iter().enumerate() {
            let sc = if k + 1 < r.series.len() { ", " } else { "" };
            let _ = write!(
                series,
                "{{\"clients\": {c}, \"rpc\": {rpc:.0}, \"one_sided\": {os:.0}, \
                 \"adaptive\": {ad:.0}}}{sc}"
            );
        }
        let _ = writeln!(
            j,
            "    {{\"value_bytes\": {}, \"write_pct\": {}, \"series\": [{}], \
             \"rpc_wins_at_clients\": {}}}{comma}",
            r.value, r.write_pct, series, r.rpc_wins_at_clients
        );
    }
    j.push_str("  ],\n");
    let _ = writeln!(
        j,
        "  \"adaptive_worst_regret\": {:.3}",
        adaptive_worst_regret(outcomes)
    );
    j.push_str("}\n");
    j
}
