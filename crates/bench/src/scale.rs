//! Virtual-time scaling sweep: the *real* receive path — TCQ combining,
//! ring encode/poll, sharded dispatch with LPT rebalance, multi-lane NIC,
//! QP scheduler — executed inside `flock_sim`'s deterministic virtual-time
//! lab ([`VirtualLab`]) so paper-scale parallelism (dozens of dispatchers
//! and NIC lanes, hundreds of client threads) can be measured on any
//! host, including a single CPU.
//!
//! Every configuration point spawns one virtual task per client thread,
//! per dispatcher, per NIC lane etc.; exactly one runs at a wall instant,
//! scheduled by `(virtual time, sequence)`, so a run is a pure function
//! of its configuration: two runs produce byte-identical JSON (the CI
//! determinism check, and the `scale_determinism` test).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use flock_core::api::fl_connect;
use flock_core::client::HandleConfig;
use flock_core::server::{FlockServer, ServerConfig};
use flock_core::FlockDomain;
use flock_fabric::FabricConfig;
use flock_sim::vtime::VirtualLab;
use flock_sync::clock;

/// One configuration of the scaling surface.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Client machines (each its own fabric node with its own NIC lanes).
    pub clients: usize,
    /// Application threads per client machine (sharing the node's QPs).
    pub threads_per_node: usize,
    /// QPs per connection handle.
    pub n_qps: usize,
    /// Server dispatcher workers.
    pub dispatch_threads: usize,
    /// NIC lanes per node.
    pub nic_lanes: usize,
    /// QP-scheduler redistribution interval override in virtual µs
    /// (0 = the server default). Short runs need a short interval for
    /// the MAX_AQP cap to engage at all — the fan-in point sets this so
    /// the checked-in JSON shows the scheduler clawing back the
    /// registration-time overshoot (every sender keeps ≥ 1 QP, so
    /// registration may exceed the cap until the first redistribution).
    pub sched_interval_us: u64,
}

impl ScalePoint {
    /// Total issuing client threads at this point.
    pub fn client_threads(&self) -> usize {
        self.clients * self.threads_per_node
    }
}

/// Measured outcome of one point.
#[derive(Debug, Clone)]
pub struct ScaleOutcome {
    /// The configuration measured.
    pub point: ScalePoint,
    /// RPCs completed inside the measured window.
    pub total_ops: u64,
    /// Virtual time from the go signal to the last client finishing.
    pub virtual_ms: f64,
    /// Throughput in RPCs per virtual second.
    pub ops_per_vsec: f64,
    /// Median request latency (virtual µs).
    pub median_us: f64,
    /// p99 request latency (virtual µs).
    pub p99_us: f64,
    /// Mean coalescing degree the server observed (requests/message).
    pub mean_degree: f64,
    /// Active QPs under the server's scheduler at the end of the run
    /// (shows the MAX_AQP cap engaging in the fan-in points).
    pub active_qps: usize,
    /// Total QPs the clients opened (`clients * n_qps`).
    pub total_qps: usize,
    /// Lab handovers (scheduling decisions) — a determinism fingerprint.
    pub handovers: u64,
    /// Virtual tasks spawned over the run.
    pub tasks: u64,
}

/// Workload parameters shared by every point of a sweep.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Requests each client thread issues.
    pub reqs_per_thread: u64,
    /// Pipelined requests in flight per thread.
    pub window: usize,
    /// Request payload bytes (echoed back).
    pub payload: usize,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            reqs_per_thread: 24,
            window: 8,
            payload: 32,
        }
    }
}

/// Run one configuration point inside a fresh [`VirtualLab`].
pub fn run_point(p: ScalePoint, w: Workload) -> ScaleOutcome {
    let (mut outcome, report) = VirtualLab::run_report(move || {
        let mut fab_cfg = FabricConfig::default();
        fab_cfg.nic_lanes = p.nic_lanes;
        let domain = Arc::new(FlockDomain::new(fab_cfg));

        let server_node = domain.add_node("scale-srv");
        let mut scfg = ServerConfig::default();
        scfg.dispatch_threads = p.dispatch_threads;
        if p.sched_interval_us > 0 {
            scfg.sched_interval = std::time::Duration::from_micros(p.sched_interval_us);
        }
        let server = FlockServer::listen(&domain, &server_node, "scale", scfg);
        server.reg_handler(1, |req| req.to_vec());

        let go = Arc::new(AtomicBool::new(false));
        let ready = Arc::new(AtomicUsize::new(0));
        // (ops, latencies_ns, start_ns, finish_ns) per client thread.
        type ThreadResult = (u64, Vec<u64>, u64, u64);
        let results: Arc<Mutex<Vec<ThreadResult>>> = Arc::new(Mutex::new(Vec::new()));

        let mut node_tasks = Vec::with_capacity(p.clients);
        for c in 0..p.clients {
            let domain = Arc::clone(&domain);
            let go = Arc::clone(&go);
            let ready = Arc::clone(&ready);
            let results = Arc::clone(&results);
            node_tasks.push(clock::spawn(&format!("scale-node-{c}"), move || {
                let node = domain.add_node(&format!("scale-c{c}"));
                let mut cfg = HandleConfig::default();
                cfg.n_qps = p.n_qps;
                // The sweep measures the steady-state data plane: every
                // lane up front (connect cost falls outside the measured
                // window), not the lazy-attach default.
                cfg.eager_qps = true;
                let handle = fl_connect(&domain, &node, "scale", cfg).expect("connect");
                let fl_threads: Vec<_> = (0..p.threads_per_node)
                    .map(|_| handle.register_thread())
                    .collect();
                ready.fetch_add(1, Ordering::Release);
                while !go.load(Ordering::Acquire) {
                    clock::sleep_ns(5_000);
                }
                let mut workers = Vec::with_capacity(fl_threads.len());
                for (i, t) in fl_threads.into_iter().enumerate() {
                    let results = Arc::clone(&results);
                    workers.push(clock::spawn(&format!("scale-w-{c}/{i}"), move || {
                        let start = clock::now_ns();
                        let payload = vec![c as u8; w.payload];
                        let mut lats: Vec<u64> = Vec::with_capacity(w.reqs_per_thread as usize);
                        let mut ops = 0u64;
                        let mut window: Vec<(u64, u64)> = Vec::with_capacity(w.window);
                        let mut left = w.reqs_per_thread;
                        while left > 0 {
                            let burst = (w.window as u64).min(left);
                            left -= burst;
                            window.clear();
                            for _ in 0..burst {
                                let at = clock::now_ns();
                                let seq = t.send_rpc(1, &payload).expect("send");
                                window.push((seq, at));
                            }
                            for &(seq, at) in &window {
                                let resp = t.recv_res(seq).expect("recv");
                                debug_assert_eq!(resp.len(), w.payload);
                                lats.push(clock::now_ns().saturating_sub(at));
                                ops += 1;
                            }
                        }
                        results
                            .lock()
                            .unwrap()
                            .push((ops, lats, start, clock::now_ns()));
                    }));
                }
                for h in workers {
                    let _ = h.join();
                }
                drop(handle); // joins the handle's dispatcher + scheduler
            }));
        }

        while ready.load(Ordering::Acquire) < p.clients {
            clock::sleep_ns(10_000);
        }
        go.store(true, Ordering::Release);
        for h in node_tasks {
            let _ = h.join();
        }

        let mean_degree = server.stats().mean_coalescing_degree();
        let active_qps = server.active_qps();
        server.shutdown(&domain);

        // Window: first worker send to last worker finish. Client tasks
        // carry their connection's control-plane charge (QP creation, MR
        // registration) on their own clocks, so anchoring at the
        // workers' start instants keeps setup cost out of the
        // steady-state throughput figure — `bench_churn` measures it.
        let collected = std::mem::take(&mut *results.lock().unwrap());
        let mut total_ops = 0u64;
        let mut all_lat: Vec<u64> = Vec::new();
        let mut t0 = u64::MAX;
        let mut t_end = 0u64;
        for (ops, lats, start, finish) in collected {
            total_ops += ops;
            all_lat.extend(lats);
            t0 = t0.min(start);
            t_end = t_end.max(finish);
        }
        let t0 = if t0 == u64::MAX { t_end } else { t0 };
        all_lat.sort_unstable();

        // Last domain reference: dropping it stops and joins the NIC
        // lane tasks, so the lab ends with only the root task live.
        drop(server);
        drop(
            Arc::try_unwrap(domain)
                .ok()
                .expect("all domain users joined"),
        );

        let elapsed_ns = t_end.saturating_sub(t0).max(1);
        ScaleOutcome {
            point: p,
            total_ops,
            virtual_ms: elapsed_ns as f64 / 1e6,
            ops_per_vsec: total_ops as f64 * 1e9 / elapsed_ns as f64,
            median_us: percentile_us(&all_lat, 0.5),
            p99_us: percentile_us(&all_lat, 0.99),
            mean_degree,
            active_qps,
            total_qps: p.clients * p.n_qps,
            handovers: 0, // filled from the lab report below
            tasks: 0,
        }
    });
    outcome.handovers = report.handovers;
    outcome.tasks = report.tasks_spawned;
    outcome
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1000.0
}

/// The sweep: quick (CI smoke) or full (checked-in `BENCH_scale.json`).
pub fn sweep_points(quick: bool) -> Vec<ScalePoint> {
    let pt = |clients, threads_per_node, n_qps, dispatch_threads, nic_lanes| ScalePoint {
        clients,
        threads_per_node,
        n_qps,
        dispatch_threads,
        nic_lanes,
        sched_interval_us: 0,
    };
    if quick {
        vec![pt(4, 1, 1, 1, 1), pt(4, 1, 1, 2, 2)]
    } else {
        vec![
            // 16 client threads: does sharding win once it can run?
            pt(16, 1, 1, 1, 1),
            pt(16, 1, 1, 2, 2),
            pt(16, 1, 1, 4, 4),
            // Mixed: each knob alone at 16 clients.
            pt(16, 1, 1, 4, 1),
            pt(16, 1, 1, 1, 4),
            // 64 client threads over 8x8.
            pt(32, 2, 2, 8, 8),
            // Paper scale: 24 dispatchers x 32 lanes, 384 client threads.
            pt(24, 16, 4, 24, 32),
            // Fan-in past MAX_AQP: 512 QPs against the 256-QP cap, with
            // a redistribution interval short enough (100 µs virtual) to
            // fire several times within the run.
            ScalePoint {
                sched_interval_us: 100,
                ..pt(256, 1, 2, 8, 8)
            },
        ]
    }
}

/// Run a sweep and render the stable-order JSON document.
pub fn run_sweep(quick: bool, w: Workload, log: bool) -> String {
    let points = sweep_points(quick);
    let mut outcomes = Vec::with_capacity(points.len());
    for p in points {
        if log {
            eprintln!(
                "bench_scale: clients={}x{} qps={} dispatch={} lanes={} ...",
                p.clients, p.threads_per_node, p.n_qps, p.dispatch_threads, p.nic_lanes
            );
        }
        let o = run_point(p, w);
        if log {
            eprintln!(
                "  -> {:.0} ops/vsec over {:.2} virtual ms (median {:.1} us, p99 {:.1} us, \
                 degree {:.2}, active {}/{} QPs)",
                o.ops_per_vsec,
                o.virtual_ms,
                o.median_us,
                o.p99_us,
                o.mean_degree,
                o.active_qps,
                o.total_qps
            );
        }
        outcomes.push(o);
    }
    render_json(quick, w, &outcomes)
}

/// Hand-written JSON with a stable field order (the offline workspace has
/// no serde); every float is formatted with fixed precision so identical
/// runs are byte-identical.
pub fn render_json(quick: bool, w: Workload, outcomes: &[ScaleOutcome]) -> String {
    let speedup = |d: usize, l: usize| -> f64 {
        let base = outcomes
            .iter()
            .find(|o| {
                o.point.client_threads() == 16
                    && o.point.dispatch_threads == 1
                    && o.point.nic_lanes == 1
            })
            .map(|o| o.ops_per_vsec)
            .unwrap_or(0.0);
        let sharded = outcomes
            .iter()
            .find(|o| {
                o.point.client_threads() == 16
                    && o.point.dispatch_threads == d
                    && o.point.nic_lanes == l
            })
            .map(|o| o.ops_per_vsec)
            .unwrap_or(0.0);
        if base > 0.0 {
            sharded / base
        } else {
            0.0
        }
    };

    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"flock-bench-scale/v1\",\n");
    let _ = writeln!(j, "  \"quick\": {quick},");
    j.push_str("  \"executor\": \"virtual\",\n");
    let _ = writeln!(j, "  \"reqs_per_thread\": {},", w.reqs_per_thread);
    let _ = writeln!(j, "  \"window\": {},", w.window);
    let _ = writeln!(j, "  \"payload_bytes\": {},", w.payload);
    j.push_str("  \"points\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let comma = if i + 1 < outcomes.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"clients\": {}, \"threads_per_node\": {}, \"n_qps\": {}, \
             \"dispatch_threads\": {}, \"nic_lanes\": {}, \"sched_interval_us\": {}, \
             \"total_ops\": {}, \
             \"virtual_ms\": {:.3}, \"ops_per_vsec\": {:.0}, \"median_us\": {:.2}, \
             \"p99_us\": {:.2}, \"mean_degree\": {:.3}, \"active_qps\": {}, \
             \"total_qps\": {}, \"handovers\": {}, \"tasks\": {}}}{comma}",
            o.point.clients,
            o.point.threads_per_node,
            o.point.n_qps,
            o.point.dispatch_threads,
            o.point.nic_lanes,
            o.point.sched_interval_us,
            o.total_ops,
            o.virtual_ms,
            o.ops_per_vsec,
            o.median_us,
            o.p99_us,
            o.mean_degree,
            o.active_qps,
            o.total_qps,
            o.handovers,
            o.tasks
        );
    }
    j.push_str("  ],\n");
    let _ = writeln!(j, "  \"speedup_2x2_over_1x1_at_16\": {:.3},", speedup(2, 2));
    let _ = writeln!(j, "  \"speedup_4x4_over_1x1_at_16\": {:.3}", speedup(4, 4));
    j.push_str("}\n");
    j
}
