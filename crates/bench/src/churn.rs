//! Connection-churn benchmark: the elastic control plane (pooled QPs,
//! cached MRs, lazy lanes, graceful detach) measured inside the
//! deterministic virtual-time lab ([`VirtualLab`]).
//!
//! Three scenarios, each a pure function of its configuration (two runs
//! render byte-identical JSON — the CI determinism diff):
//!
//! 1. **Connect storm** — a cohort of clients dials one server at once,
//!    twice. The first wave hits empty pools (every QP created, every MR
//!    registered at Swift cost); the second wave reuses what the first
//!    wave's `fl_disconnect` recycled. Reported as time-to-first-RPC
//!    (TTFR: connect + thread registration + first echo), cold vs warm.
//! 2. **Steady churn under load** — a fixed cohort drives pipelined RPCs
//!    while churner clients connect, issue a few requests, and detach in
//!    a loop. The same workload runs once more without churners; the p99
//!    disturbance ratio says what connection churn costs established
//!    traffic.
//! 3. **Server scale-out** — two eager multi-QP senders split a MAX_AQP
//!    budget; one departs mid-run. The survivor's active-QP share before
//!    and after shows the departing sender's share migrating at detach
//!    (not at the next utilization epoch).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use flock_core::api::fl_connect;
use flock_core::client::HandleConfig;
use flock_core::server::{FlockServer, ServerConfig};
use flock_core::FlockDomain;
use flock_fabric::FabricConfig;
use flock_sim::vtime::VirtualLab;
use flock_sync::clock;

/// Knobs shared by the three scenarios.
#[derive(Debug, Clone, Copy)]
pub struct ChurnWorkload {
    /// Clients in each connect-storm wave.
    pub storm_clients: usize,
    /// Established clients driving load during the churn scenario.
    pub steady_clients: usize,
    /// Requests each steady client issues.
    pub reqs_per_steady: u64,
    /// Pipelined requests in flight per steady client.
    pub window: usize,
    /// Churner clients cycling connect → RPC → disconnect.
    pub churners: usize,
    /// Connect/disconnect cycles per churner.
    pub churn_rounds: usize,
    /// Request payload bytes (echoed back).
    pub payload: usize,
}

impl ChurnWorkload {
    /// Scenario sizes for a sweep: CI smoke (`quick`) or the checked-in
    /// `BENCH_churn.json`.
    pub fn preset(quick: bool) -> ChurnWorkload {
        if quick {
            ChurnWorkload {
                storm_clients: 6,
                steady_clients: 3,
                reqs_per_steady: 24,
                window: 4,
                churners: 2,
                churn_rounds: 2,
                payload: 32,
            }
        } else {
            ChurnWorkload {
                storm_clients: 24,
                steady_clients: 6,
                reqs_per_steady: 96,
                window: 4,
                churners: 4,
                churn_rounds: 5,
                payload: 32,
            }
        }
    }
}

/// Elastic fabric: QP pool and MR cache on (the configuration under
/// test; the cold wave measures the miss path through the same code).
fn elastic_fabric() -> FabricConfig {
    let mut fc = FabricConfig::default();
    fc.qpool.enabled = true;
    fc.mr_cache.enabled = true;
    fc.nic_lanes = 2;
    fc
}

/// Handle configuration for short-lived churn clients: lazy lanes (the
/// default) and a minimal one-sided scratch region, so connection setup
/// is dominated by the control-plane work under test.
fn churn_handle_cfg() -> HandleConfig {
    let mut cfg = HandleConfig::default();
    cfg.mem_threads = 1;
    cfg
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1000.0
}

// ---------------------------------------------------------------------
// Scenario 1: connect storm
// ---------------------------------------------------------------------

/// Measured outcome of the connect-storm scenario.
#[derive(Debug, Clone)]
pub struct StormOutcome {
    /// Clients per wave.
    pub clients: usize,
    /// Cold-wave TTFR median/p99 (virtual µs): empty pools, every
    /// control verb at full Swift cost, storm queueing included.
    pub cold_median_us: f64,
    /// Cold-wave p99 TTFR (virtual µs).
    pub cold_p99_us: f64,
    /// Warm-wave TTFR median/p99 (virtual µs): QPs leased from the
    /// pool, rings from the MR cache.
    pub warm_median_us: f64,
    /// Warm-wave p99 TTFR (virtual µs).
    pub warm_p99_us: f64,
    /// `cold_median / warm_median` — the headline speedup.
    pub warm_speedup: f64,
    /// Warm QP leases observed on the server node (pool hits).
    pub server_warm_leases: u64,
    /// Lab handovers — a determinism fingerprint.
    pub handovers: u64,
    /// Virtual tasks spawned.
    pub tasks: u64,
}

/// One storm wave: every client dials, registers a thread, and completes
/// one echo RPC; TTFR is the whole span. Clients then disconnect
/// gracefully so the next wave finds warm pools.
fn storm_wave(
    domain: &Arc<FlockDomain>,
    nodes: &[Arc<flock_fabric::Node>],
    wave: usize,
    payload: usize,
) -> Vec<u64> {
    let ttfrs: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut tasks = Vec::with_capacity(nodes.len());
    for (c, node) in nodes.iter().enumerate() {
        let domain = Arc::clone(domain);
        let node = Arc::clone(node);
        let ttfrs = Arc::clone(&ttfrs);
        tasks.push(clock::spawn(&format!("storm-{wave}-{c}"), move || {
            let t0 = clock::now_ns();
            let mut handle =
                fl_connect(&domain, &node, "churn-storm", churn_handle_cfg()).expect("connect");
            let t = handle.register_thread();
            let req = vec![c as u8; payload];
            let resp = t.call(1, &req).expect("first rpc");
            debug_assert_eq!(resp.len(), payload);
            let ttfr = clock::now_ns().saturating_sub(t0);
            drop(t);
            handle.close().expect("disconnect");
            ttfrs.lock().unwrap().push((c, ttfr));
        }));
    }
    for t in tasks {
        let _ = t.join();
    }
    let mut collected = std::mem::take(&mut *ttfrs.lock().unwrap());
    // Sort by client index: completion order is deterministic, but the
    // rendered JSON should not depend on it.
    collected.sort_unstable();
    collected.into_iter().map(|(_, ns)| ns).collect()
}

/// Run the connect-storm scenario in a fresh lab.
pub fn run_storm(w: ChurnWorkload) -> StormOutcome {
    let (mut outcome, report) = VirtualLab::run_report(move || {
        let domain = Arc::new(FlockDomain::new(elastic_fabric()));
        let server_node = domain.add_node("storm-srv");
        let mut scfg = ServerConfig::default();
        scfg.dispatch_threads = 1;
        let server = FlockServer::listen(&domain, &server_node, "churn-storm", scfg);
        server.reg_handler(1, |req| req.to_vec());

        let nodes: Vec<_> = (0..w.storm_clients)
            .map(|c| domain.add_node(&format!("storm-c{c}")))
            .collect();

        // Wave 1: every pool empty — the full Swift control-plane cost,
        // serialized through the server's control loop like a real
        // connect storm. Wave 2: the same clients reconnect into the
        // resources wave 1 recycled.
        let mut cold = storm_wave(&domain, &nodes, 0, w.payload);
        let mut warm = storm_wave(&domain, &nodes, 1, w.payload);
        cold.sort_unstable();
        warm.sort_unstable();

        let server_warm_leases = server_node.pool().stats().warm.load(Ordering::Relaxed);
        server.shutdown(&domain);
        drop(server);
        drop(nodes);
        drop(
            Arc::try_unwrap(domain)
                .ok()
                .expect("all domain users joined"),
        );

        let cold_median_us = percentile_us(&cold, 0.5);
        let warm_median_us = percentile_us(&warm, 0.5);
        StormOutcome {
            clients: w.storm_clients,
            cold_median_us,
            cold_p99_us: percentile_us(&cold, 0.99),
            warm_median_us,
            warm_p99_us: percentile_us(&warm, 0.99),
            warm_speedup: if warm_median_us > 0.0 {
                cold_median_us / warm_median_us
            } else {
                0.0
            },
            server_warm_leases,
            handovers: 0,
            tasks: 0,
        }
    });
    outcome.handovers = report.handovers;
    outcome.tasks = report.tasks_spawned;
    outcome
}

// ---------------------------------------------------------------------
// Scenario 2: steady traffic under connection churn
// ---------------------------------------------------------------------

/// Measured outcome of the churn-under-load scenario.
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// Established clients driving load.
    pub steady_clients: usize,
    /// Churner clients cycling connect/disconnect.
    pub churners: usize,
    /// Completed connect → RPC → disconnect cycles.
    pub churn_events: u64,
    /// Steady-cohort p99 latency with no churn (virtual µs).
    pub baseline_p99_us: f64,
    /// Steady-cohort p99 latency under churn (virtual µs).
    pub churn_p99_us: f64,
    /// Steady-cohort median with no churn (virtual µs).
    pub baseline_median_us: f64,
    /// Steady-cohort median under churn (virtual µs).
    pub churn_median_us: f64,
    /// `churn_p99 / baseline_p99` — the disturbance headline.
    pub disturbance_ratio: f64,
    /// Lab handovers of the churn run — a determinism fingerprint.
    pub handovers: u64,
    /// Virtual tasks spawned in the churn run.
    pub tasks: u64,
}

/// One measured run: steady cohort latencies, optionally with churners.
/// Returns (sorted latencies ns, churn events).
fn churn_run(w: ChurnWorkload, with_churn: bool) -> (Vec<u64>, u64, u64, u64) {
    let ((lats, events), report) = VirtualLab::run_report(move || {
        let domain = Arc::new(FlockDomain::new(elastic_fabric()));
        let server_node = domain.add_node("churn-srv");
        let mut scfg = ServerConfig::default();
        scfg.dispatch_threads = 2;
        scfg.sched_interval = std::time::Duration::from_micros(200);
        let server = FlockServer::listen(&domain, &server_node, "churn-load", scfg);
        server.reg_handler(1, |req| req.to_vec());

        let go = Arc::new(AtomicBool::new(false));
        let ready = Arc::new(AtomicUsize::new(0));
        type SteadyResults = Arc<Mutex<Vec<(usize, Vec<u64>)>>>;
        let results: SteadyResults = Arc::new(Mutex::new(Vec::new()));

        let mut tasks = Vec::new();
        for c in 0..w.steady_clients {
            let domain = Arc::clone(&domain);
            let go = Arc::clone(&go);
            let ready = Arc::clone(&ready);
            let results = Arc::clone(&results);
            tasks.push(clock::spawn(&format!("steady-{c}"), move || {
                let node = domain.add_node(&format!("steady-c{c}"));
                let handle =
                    fl_connect(&domain, &node, "churn-load", churn_handle_cfg()).expect("connect");
                let t = handle.register_thread();
                ready.fetch_add(1, Ordering::Release);
                while !go.load(Ordering::Acquire) {
                    clock::sleep_ns(5_000);
                }
                let payload = vec![c as u8; w.payload];
                let mut lats = Vec::with_capacity(w.reqs_per_steady as usize);
                let mut window: Vec<(u64, u64)> = Vec::with_capacity(w.window);
                let mut left = w.reqs_per_steady;
                while left > 0 {
                    let burst = (w.window as u64).min(left);
                    left -= burst;
                    window.clear();
                    for _ in 0..burst {
                        let at = clock::now_ns();
                        let seq = t.send_rpc(1, &payload).expect("send");
                        window.push((seq, at));
                    }
                    for &(seq, at) in &window {
                        let resp = t.recv_res(seq).expect("recv");
                        debug_assert_eq!(resp.len(), w.payload);
                        lats.push(clock::now_ns().saturating_sub(at));
                    }
                }
                results.lock().unwrap().push((c, lats));
            }));
        }

        let churn_events = Arc::new(AtomicUsize::new(0));
        if with_churn {
            for k in 0..w.churners {
                let domain = Arc::clone(&domain);
                let go = Arc::clone(&go);
                let churn_events = Arc::clone(&churn_events);
                tasks.push(clock::spawn(&format!("churner-{k}"), move || {
                    let node = domain.add_node(&format!("churner-c{k}"));
                    while !go.load(Ordering::Acquire) {
                        clock::sleep_ns(5_000);
                    }
                    for round in 0..w.churn_rounds {
                        let mut handle =
                            fl_connect(&domain, &node, "churn-load", churn_handle_cfg())
                                .expect("churner connect");
                        let t = handle.register_thread();
                        let payload = vec![(k + round) as u8; w.payload];
                        for _ in 0..4 {
                            let resp = t.call(1, &payload).expect("churner rpc");
                            debug_assert_eq!(resp.len(), w.payload);
                        }
                        drop(t);
                        handle.close().expect("churner disconnect");
                        churn_events.fetch_add(1, Ordering::Relaxed);
                        clock::sleep_ns(20_000);
                    }
                }));
            }
        }

        while ready.load(Ordering::Acquire) < w.steady_clients {
            clock::sleep_ns(10_000);
        }
        go.store(true, Ordering::Release);
        for t in tasks {
            let _ = t.join();
        }
        server.shutdown(&domain);
        drop(server);
        drop(
            Arc::try_unwrap(domain)
                .ok()
                .expect("all domain users joined"),
        );

        let mut collected = std::mem::take(&mut *results.lock().unwrap());
        collected.sort_unstable_by_key(|(c, _)| *c);
        let mut all: Vec<u64> = collected.into_iter().flat_map(|(_, l)| l).collect();
        all.sort_unstable();
        (all, churn_events.load(Ordering::Relaxed) as u64)
    });
    (lats, events, report.handovers, report.tasks_spawned)
}

/// Run the churn-under-load scenario: once with churners, once without,
/// same steady workload.
pub fn run_churn_load(w: ChurnWorkload) -> ChurnOutcome {
    let (churn_lats, events, handovers, tasks) = churn_run(w, true);
    let (base_lats, _, _, _) = churn_run(w, false);
    let baseline_p99_us = percentile_us(&base_lats, 0.99);
    let churn_p99_us = percentile_us(&churn_lats, 0.99);
    ChurnOutcome {
        steady_clients: w.steady_clients,
        churners: w.churners,
        churn_events: events,
        baseline_p99_us,
        churn_p99_us,
        baseline_median_us: percentile_us(&base_lats, 0.5),
        churn_median_us: percentile_us(&churn_lats, 0.5),
        disturbance_ratio: if baseline_p99_us > 0.0 {
            churn_p99_us / baseline_p99_us
        } else {
            0.0
        },
        handovers,
        tasks,
    }
}

// ---------------------------------------------------------------------
// Scenario 3: server scale-out / AQP migration on departure
// ---------------------------------------------------------------------

/// Measured outcome of the scale-out scenario.
#[derive(Debug, Clone)]
pub struct ScaleOutOutcome {
    /// The server's MAX_AQP budget.
    pub max_aqp: usize,
    /// QPs per sender.
    pub n_qps: usize,
    /// Survivor's active QPs while both senders share the budget.
    pub survivor_active_before: usize,
    /// Total active QPs while both senders run.
    pub total_active_before: usize,
    /// Survivor's active QPs after the other sender detached.
    pub survivor_active_after: usize,
    /// Total active QPs after the departure.
    pub total_active_after: usize,
    /// Lab handovers — a determinism fingerprint.
    pub handovers: u64,
    /// Virtual tasks spawned.
    pub tasks: u64,
}

/// Run the scale-out scenario: two eager 4-QP senders under a 4-QP
/// budget; the second departs mid-run and the survivor's share grows.
pub fn run_scaleout(payload: usize) -> ScaleOutOutcome {
    const MAX_AQP: usize = 4;
    const N_QPS: usize = 4;
    let (mut outcome, report) = VirtualLab::run_report(move || {
        let domain = Arc::new(FlockDomain::new(elastic_fabric()));
        let server_node = domain.add_node("so-srv");
        let mut scfg = ServerConfig::default();
        scfg.dispatch_threads = 1;
        scfg.sched.max_aqp = MAX_AQP;
        scfg.sched_interval = std::time::Duration::from_micros(100);
        let server = FlockServer::listen(&domain, &server_node, "scaleout", scfg);
        server.reg_handler(1, |req| req.to_vec());

        let mut hcfg = churn_handle_cfg();
        hcfg.n_qps = N_QPS;
        hcfg.eager_qps = true;
        hcfg.mem_threads = 4;

        // Two symmetric senders, four threads each, driving until told
        // to stop; the budget forces a 2/2 active-QP split. The
        // survivor's handle stays in this task (it is only dropped, not
        // closed) so its active-QP view can be sampled directly; the
        // departing sender owns its handle so it can `close` it.
        let stop_a = Arc::new(AtomicBool::new(false));
        let stop_b = Arc::new(AtomicBool::new(false));

        let node_a = domain.add_node("so-a");
        let handle_a =
            Arc::new(fl_connect(&domain, &node_a, "scaleout", hcfg.clone()).expect("connect a"));
        let mut a_workers = Vec::new();
        for i in 0..4 {
            let t = handle_a.register_thread();
            let stop = Arc::clone(&stop_a);
            a_workers.push(clock::spawn(&format!("so-a-{i}"), move || {
                let buf = vec![0xAA; payload];
                while !stop.load(Ordering::Acquire) {
                    let resp = t.call(1, &buf).expect("a rpc");
                    debug_assert_eq!(resp.len(), buf.len());
                }
            }));
        }

        let node_b = domain.add_node("so-b");
        let b_task = {
            let domain = Arc::clone(&domain);
            let hcfg = hcfg.clone();
            let stop = Arc::clone(&stop_b);
            clock::spawn("so-b", move || {
                let mut handle = fl_connect(&domain, &node_b, "scaleout", hcfg).expect("connect b");
                let threads: Vec<_> = (0..4).map(|_| handle.register_thread()).collect();
                let mut workers = Vec::new();
                for (i, t) in threads.into_iter().enumerate() {
                    let stop = Arc::clone(&stop);
                    workers.push(clock::spawn(&format!("so-b-{i}"), move || {
                        let buf = vec![0xBB; payload];
                        while !stop.load(Ordering::Acquire) {
                            let resp = t.call(1, &buf).expect("b rpc");
                            debug_assert_eq!(resp.len(), buf.len());
                        }
                    }));
                }
                for w in workers {
                    let _ = w.join();
                }
                handle.close().expect("disconnect b");
            })
        };

        // Sample while both senders are live and several redistribution
        // epochs have passed.
        clock::sleep_ns(500_000);
        let survivor_active_before = handle_a.active_qps();
        let total_active_before = server.active_qps();

        // B departs: its workers stop, then its handle detaches
        // gracefully, releasing its AQP share at the detach.
        stop_b.store(true, Ordering::Release);
        let _ = b_task.join();
        // Give the scheduler a few epochs to re-grant the freed share to
        // the survivor (the client's view updates on the next grant).
        clock::sleep_ns(600_000);
        let survivor_active_after = handle_a.active_qps();
        let total_active_after = server.active_qps();

        stop_a.store(true, Ordering::Release);
        for w in a_workers {
            let _ = w.join();
        }
        drop(
            Arc::try_unwrap(handle_a)
                .ok()
                .expect("survivor workers joined"),
        );
        server.shutdown(&domain);
        drop(server);
        drop(
            Arc::try_unwrap(domain)
                .ok()
                .expect("all domain users joined"),
        );

        ScaleOutOutcome {
            max_aqp: MAX_AQP,
            n_qps: N_QPS,
            survivor_active_before,
            total_active_before,
            survivor_active_after,
            total_active_after,
            handovers: 0,
            tasks: 0,
        }
    });
    outcome.handovers = report.handovers;
    outcome.tasks = report.tasks_spawned;
    outcome
}

// ---------------------------------------------------------------------
// Sweep + JSON
// ---------------------------------------------------------------------

/// Run all three scenarios and render the stable-order JSON document.
pub fn run_churn_suite(quick: bool, log: bool) -> String {
    let w = ChurnWorkload::preset(quick);
    if log {
        eprintln!("bench_churn: connect storm ({} clients x 2 waves)...", w.storm_clients);
    }
    let storm = run_storm(w);
    if log {
        eprintln!(
            "  -> cold median {:.1} us, warm median {:.1} us ({:.1}x), {} warm leases",
            storm.cold_median_us, storm.warm_median_us, storm.warm_speedup, storm.server_warm_leases
        );
        eprintln!(
            "bench_churn: steady load ({} clients) under churn ({} churners x {} rounds)...",
            w.steady_clients, w.churners, w.churn_rounds
        );
    }
    let churn = run_churn_load(w);
    if log {
        eprintln!(
            "  -> p99 {:.1} us under churn vs {:.1} us baseline ({:.3}x), {} churn events",
            churn.churn_p99_us, churn.baseline_p99_us, churn.disturbance_ratio, churn.churn_events
        );
        eprintln!("bench_churn: scale-out / AQP migration...");
    }
    let so = run_scaleout(w.payload);
    if log {
        eprintln!(
            "  -> survivor active QPs {} -> {} (total {} -> {}) across the departure",
            so.survivor_active_before,
            so.survivor_active_after,
            so.total_active_before,
            so.total_active_after
        );
    }
    render_json(quick, w, &storm, &churn, &so)
}

/// Hand-written JSON with a stable field order (the offline workspace
/// has no serde); fixed float precision keeps identical runs
/// byte-identical.
pub fn render_json(
    quick: bool,
    w: ChurnWorkload,
    storm: &StormOutcome,
    churn: &ChurnOutcome,
    so: &ScaleOutOutcome,
) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"flock-bench-churn/v1\",\n");
    let _ = writeln!(j, "  \"quick\": {quick},");
    j.push_str("  \"executor\": \"virtual\",\n");
    let _ = writeln!(j, "  \"payload_bytes\": {},", w.payload);
    j.push_str("  \"storm\": {\n");
    let _ = writeln!(j, "    \"clients\": {},", storm.clients);
    let _ = writeln!(j, "    \"cold_ttfr_median_us\": {:.2},", storm.cold_median_us);
    let _ = writeln!(j, "    \"cold_ttfr_p99_us\": {:.2},", storm.cold_p99_us);
    let _ = writeln!(j, "    \"warm_ttfr_median_us\": {:.2},", storm.warm_median_us);
    let _ = writeln!(j, "    \"warm_ttfr_p99_us\": {:.2},", storm.warm_p99_us);
    let _ = writeln!(j, "    \"warm_speedup\": {:.3},", storm.warm_speedup);
    let _ = writeln!(j, "    \"server_warm_leases\": {},", storm.server_warm_leases);
    let _ = writeln!(j, "    \"handovers\": {},", storm.handovers);
    let _ = writeln!(j, "    \"tasks\": {}", storm.tasks);
    j.push_str("  },\n");
    j.push_str("  \"churn\": {\n");
    let _ = writeln!(j, "    \"steady_clients\": {},", churn.steady_clients);
    let _ = writeln!(j, "    \"reqs_per_steady\": {},", w.reqs_per_steady);
    let _ = writeln!(j, "    \"window\": {},", w.window);
    let _ = writeln!(j, "    \"churners\": {},", churn.churners);
    let _ = writeln!(j, "    \"churn_events\": {},", churn.churn_events);
    let _ = writeln!(j, "    \"baseline_median_us\": {:.2},", churn.baseline_median_us);
    let _ = writeln!(j, "    \"baseline_p99_us\": {:.2},", churn.baseline_p99_us);
    let _ = writeln!(j, "    \"churn_median_us\": {:.2},", churn.churn_median_us);
    let _ = writeln!(j, "    \"churn_p99_us\": {:.2},", churn.churn_p99_us);
    let _ = writeln!(j, "    \"disturbance_ratio\": {:.3},", churn.disturbance_ratio);
    let _ = writeln!(j, "    \"handovers\": {},", churn.handovers);
    let _ = writeln!(j, "    \"tasks\": {}", churn.tasks);
    j.push_str("  },\n");
    j.push_str("  \"scaleout\": {\n");
    let _ = writeln!(j, "    \"max_aqp\": {},", so.max_aqp);
    let _ = writeln!(j, "    \"n_qps\": {},", so.n_qps);
    let _ = writeln!(j, "    \"survivor_active_before\": {},", so.survivor_active_before);
    let _ = writeln!(j, "    \"total_active_before\": {},", so.total_active_before);
    let _ = writeln!(j, "    \"survivor_active_after\": {},", so.survivor_active_after);
    let _ = writeln!(j, "    \"total_active_after\": {},", so.total_active_after);
    let _ = writeln!(j, "    \"handovers\": {},", so.handovers);
    let _ = writeln!(j, "    \"tasks\": {}", so.tasks);
    j.push_str("  }\n");
    j.push_str("}\n");
    j
}
