//! Multi-tenant gateway benchmark over the protocol gateway, emitting
//! `BENCH_tenant.json` (see EXPERIMENTS.md "Multi-tenancy").
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p flock-bench --bin bench_tenant -- \
//!     [--quick] [--out PATH]
//! ```
//!
//! Three deterministic virtual-time scenarios: a Zipf-skewed GET/SET
//! mix, a hot-key storm, and tenant interference (one aggressor vs N
//! well-behaved tenants, with and without a per-tenant AQP cap). Two
//! runs of the same configuration produce byte-identical output — CI
//! diffs them.

use flock_bench::tenant::run_tenant_suite;

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_tenant.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_tenant [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let json = run_tenant_suite(quick, true);
    std::fs::write(&out, &json).expect("write bench JSON");
    eprintln!("bench_tenant: wrote {out}");
    print!("{json}");
}
