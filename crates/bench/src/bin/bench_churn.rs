//! Connection-churn benchmark over the elastic control plane, emitting
//! `BENCH_churn.json` (see EXPERIMENTS.md "Connection churn").
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p flock-bench --bin bench_churn -- \
//!     [--quick] [--out PATH]
//! ```
//!
//! Three deterministic virtual-time scenarios: a connect storm (cold vs
//! warm time-to-first-RPC), steady traffic under connection churn (p99
//! disturbance vs a no-churn baseline), and server scale-out (AQP-share
//! migration when a sender departs). Two runs of the same configuration
//! produce byte-identical output — CI diffs them.

use flock_bench::churn::run_churn_suite;

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_churn.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_churn [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let json = run_churn_suite(quick, true);
    std::fs::write(&out, &json).expect("write bench JSON");
    eprintln!("bench_churn: wrote {out}");
    print!("{json}");
}
