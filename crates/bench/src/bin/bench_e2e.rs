//! End-to-end fan-in harness: many client nodes hammer one Flock server
//! with pipelined RPCs over the threaded runtime and the simulated
//! fabric, emitting `BENCH_e2e.json` (see EXPERIMENTS.md "Fan-in
//! trajectory").
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p flock-bench --bin bench_e2e -- \
//!     [--quick] [--clients N] [--secs S] [--out PATH]
//! ```
//!
//! Each configuration point runs the same workload — `--clients` nodes,
//! one issuing thread per node, a window of pipelined requests per
//! thread — against a server configured with a given number of dispatch
//! threads and a fabric with a given number of NIC lanes. `--quick`
//! shrinks the measurement window for CI smoke runs. The JSON is
//! written by hand (the offline workspace has no serde) with a stable
//! field order.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flock_core::api::fl_connect;
use flock_core::client::HandleConfig;
use flock_core::server::{FlockServer, ServerConfig};
use flock_core::FlockDomain;
use flock_fabric::FabricConfig;

/// Requests in flight per issuing thread (the paper's pipelined client).
const WINDOW: usize = 8;
/// Request payload size in bytes.
const PAYLOAD: usize = 32;

struct Point {
    dispatch_threads: usize,
    nic_lanes: usize,
    ops_per_sec: f64,
    total_ops: u64,
    median_us: f64,
    p99_us: f64,
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1000.0
}

/// Run one fan-in configuration and measure throughput + latency.
fn run_config(clients: usize, dispatch_threads: usize, nic_lanes: usize, secs: f64) -> Point {
    let mut fab_cfg = FabricConfig::default();
    fab_cfg.nic_lanes = nic_lanes;
    let domain = Arc::new(FlockDomain::new(fab_cfg));

    let node = domain.add_node("bench-srv");
    let mut scfg = ServerConfig::default();
    scfg.dispatch_threads = dispatch_threads;
    let server = FlockServer::listen(&domain, &node, "bench", scfg);
    server.reg_handler(1, |req| req.to_vec());

    let stop = Arc::new(AtomicBool::new(false));
    let mut joins = Vec::new();
    for c in 0..clients {
        let domain = Arc::clone(&domain);
        let stop = Arc::clone(&stop);
        joins.push(std::thread::spawn(move || {
            let client = domain.add_node(&format!("bench-c{c}"));
            let mut cfg = HandleConfig::default();
            cfg.n_qps = 1;
            let handle = fl_connect(&domain, &client, "bench", cfg).expect("connect");
            let t = handle.register_thread();
            let payload = [c as u8; PAYLOAD];
            let mut lat_ns: Vec<u64> = Vec::with_capacity(64 * 1024);
            let mut ops: u64 = 0;
            let mut window: Vec<(u64, Instant)> = Vec::with_capacity(WINDOW);
            while !stop.load(Ordering::Relaxed) {
                window.clear();
                for _ in 0..WINDOW {
                    let at = Instant::now();
                    let seq = t.send_rpc(1, &payload).expect("send");
                    window.push((seq, at));
                }
                for &(seq, at) in &window {
                    let resp = t.recv_res(seq).expect("recv");
                    debug_assert_eq!(resp.len(), PAYLOAD);
                    lat_ns.push(at.elapsed().as_nanos() as u64);
                    ops += 1;
                }
            }
            (ops, lat_ns)
        }));
    }

    // Warmup: let connections settle and credit flow start.
    std::thread::sleep(Duration::from_millis((secs * 100.0) as u64));
    let t0 = Instant::now();
    let ops_before: u64 = server.stats().requests.load(Ordering::Relaxed);
    std::thread::sleep(Duration::from_secs_f64(secs));
    let ops_after: u64 = server.stats().requests.load(Ordering::Relaxed);
    let elapsed = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);

    let mut all_lat: Vec<u64> = Vec::new();
    let mut total_ops = 0u64;
    for j in joins {
        let (ops, lat) = j.join().expect("client thread");
        total_ops += ops;
        all_lat.extend(lat);
    }
    server.shutdown(&domain);
    all_lat.sort_unstable();

    Point {
        dispatch_threads,
        nic_lanes,
        ops_per_sec: (ops_after - ops_before) as f64 / elapsed,
        total_ops,
        median_us: percentile_us(&all_lat, 0.5),
        p99_us: percentile_us(&all_lat, 0.99),
    }
}

fn main() {
    let mut quick = false;
    let mut clients = 8usize;
    let mut secs = 2.0f64;
    let mut out = String::from("BENCH_e2e.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--clients" => clients = args.next().expect("--clients N").parse().expect("N"),
            "--secs" => secs = args.next().expect("--secs S").parse().expect("S"),
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_e2e [--quick] [--clients N] [--secs S] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    if quick {
        secs = 0.3;
    }

    // Sweep the two scaling knobs: (dispatch_threads, nic_lanes).
    let configs: &[(usize, usize)] = if quick {
        &[(1, 1), (4, 4)]
    } else {
        &[(1, 1), (2, 2), (4, 4), (4, 1), (1, 4)]
    };

    let mut points = Vec::new();
    for &(d, l) in configs {
        eprintln!("bench_e2e: {clients} clients, dispatch={d}, lanes={l} ...");
        let p = run_config(clients, d, l, secs);
        eprintln!(
            "  -> {:.0} ops/s (median {:.1} us, p99 {:.1} us, {} client ops)",
            p.ops_per_sec, p.median_us, p.p99_us, p.total_ops
        );
        points.push(p);
    }

    let base = points
        .iter()
        .find(|p| p.dispatch_threads == 1 && p.nic_lanes == 1)
        .map(|p| p.ops_per_sec)
        .unwrap_or(0.0);
    let best_4x4 = points
        .iter()
        .find(|p| p.dispatch_threads == 4 && p.nic_lanes == 4)
        .map(|p| p.ops_per_sec)
        .unwrap_or(0.0);

    // Host parallelism is the dominant variable for the sharded
    // configurations: on a single-CPU host extra dispatchers and lanes
    // can only time-share, so record it next to the numbers.
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);

    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"quick\": {quick},");
    let _ = writeln!(j, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(j, "  \"clients\": {clients},");
    let _ = writeln!(j, "  \"window\": {WINDOW},");
    let _ = writeln!(j, "  \"payload_bytes\": {PAYLOAD},");
    let _ = writeln!(j, "  \"secs_per_point\": {secs},");
    j.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"dispatch_threads\": {}, \"nic_lanes\": {}, \"ops_per_sec\": {:.0}, \
             \"median_us\": {:.2}, \"p99_us\": {:.2}}}{comma}",
            p.dispatch_threads, p.nic_lanes, p.ops_per_sec, p.median_us, p.p99_us
        );
    }
    j.push_str("  ],\n");
    let _ = writeln!(
        j,
        "  \"speedup_4x4_over_1x1\": {:.3}",
        if base > 0.0 { best_4x4 / base } else { 0.0 }
    );
    j.push_str("}\n");

    std::fs::write(&out, &j).expect("write bench JSON");
    eprintln!("bench_e2e: wrote {out}");
    print!("{j}");
}
