//! Calibration probe: key points from Figures 2, 6, 9 to sanity-check the
//! cost model before full sweeps.

use flock_models::{run_raw_read, run_rpc, RawReadConfig, RpcConfig, SystemKind};
use flock_sim::Ns;

fn main() {
    let d = Ns::from_millis(5);
    let wu = Ns::from_millis(2);

    println!("--- fig2a raw RC reads (22 clients, 16B) ---");
    for qps in [22, 44, 88, 176, 352, 704, 1408, 2816] {
        let mut cfg = RawReadConfig::default();
        cfg.total_qps = qps;
        cfg.duration = d;
        cfg.warmup = wu;
        let r = run_raw_read(&cfg);
        println!("qps={qps:5}  mops={:6.1}  hit={:.2}", r.mops, r.cache_hit);
    }

    println!("--- fig2b UD RPC (#senders) ---");
    for senders in [22, 44, 88, 176, 352, 704, 1408, 2816] {
        let mut cfg = RpcConfig::default();
        cfg.system = SystemKind::UdRpc;
        cfg.n_clients = 22;
        cfg.threads_per_client = (senders / 22).max(1);
        cfg.outstanding = 4;
        cfg.handler_ns = 50;
        cfg.duration = d;
        cfg.warmup = wu;
        let r = run_rpc(&cfg);
        println!(
            "senders={senders:5}  mops={:6.1}  cpu={:.2}",
            r.mops, r.server_cpu
        );
    }

    println!("--- fig6a flock vs erpc, outstanding=1 ---");
    for threads in [1, 2, 4, 8, 16, 32, 48] {
        let mut f = RpcConfig::default();
        f.threads_per_client = threads;
        f.lanes_per_client = threads;
        f.duration = d;
        f.warmup = wu;
        let rf = run_rpc(&f);
        let mut e = f.clone();
        e.system = SystemKind::UdRpc;
        let re = run_rpc(&e);
        println!(
            "thr={threads:2}  flock={:5.1} (deg {:.2}, med {:5.1}us p99 {:6.1}us)  erpc={:5.1} (med {:5.1}us p99 {:6.1}us)",
            rf.mops, rf.degree, rf.median_us, rf.p99_us, re.mops, re.median_us, re.p99_us
        );
    }

    println!("--- fig9 at outstanding=8 ---");
    for threads in [8, 16, 32, 48] {
        let mk = |system, lanes: usize, batch: usize, sched: bool| {
            let mut c = RpcConfig::default();
            c.system = system;
            c.threads_per_client = threads;
            c.lanes_per_client = lanes;
            c.batch_limit = batch;
            c.scheduling = sched;
            c.outstanding = 8;
            c.duration = d;
            c.warmup = wu;
            run_rpc(&c)
        };
        let flock = mk(SystemKind::Flock, threads, 16, true);
        let noshare = mk(SystemKind::NoShare, threads, 1, false);
        let farm2 = mk(SystemKind::LockShare, (threads / 2).max(1), 1, false);
        println!(
            "thr={threads:2}  flock={:5.1} (deg {:.2})  noshare={:5.1} (hit {:.2})  farm2={:5.1}",
            flock.mops, flock.degree, noshare.mops, noshare.cache_hit, farm2.mops
        );
    }
}
