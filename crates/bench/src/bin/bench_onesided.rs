//! RPC-vs-one-sided crossover benchmark, emitting `BENCH_onesided.json`
//! (see EXPERIMENTS.md "RPC vs one-sided crossover").
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p flock-bench --bin bench_onesided -- \
//!     [--quick] [--out PATH]
//! ```
//!
//! Every (clients, value size, write mix) point runs three times —
//! always-RPC, always-one-sided, adaptive — inside the deterministic
//! virtual-time lab. Two runs of the same configuration produce
//! byte-identical output — CI diffs them.

use flock_bench::onesided::run_onesided_suite;

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_onesided.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_onesided [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let json = run_onesided_suite(quick, true);
    std::fs::write(&out, &json).expect("write bench JSON");
    eprintln!("bench_onesided: wrote {out}");
    print!("{json}");
}
