//! Virtual-time scaling sweep over the real receive path, emitting
//! `BENCH_scale.json` (see EXPERIMENTS.md "Virtual-time scaling surface").
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p flock-bench --bin bench_scale -- \
//!     [--quick] [--reqs N] [--window W] [--out PATH]
//! ```
//!
//! Unlike `bench_e2e` (threaded, wall-clock, host-parallelism-bound),
//! every point here runs inside the deterministic virtual-time lab:
//! dispatchers, NIC lanes and client threads are independently scheduled
//! virtual cores, so `dispatch_threads = 24, nic_lanes = 32` measures
//! real parallelism even on a 1-CPU host, and two runs of the same
//! configuration produce byte-identical output.

use flock_bench::scale::{run_sweep, Workload};

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_scale.json");
    let mut w = Workload::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--reqs" => w.reqs_per_thread = args.next().expect("--reqs N").parse().expect("N"),
            "--window" => w.window = args.next().expect("--window W").parse().expect("W"),
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_scale [--quick] [--reqs N] [--window W] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    if quick {
        w.reqs_per_thread = w.reqs_per_thread.min(8);
    }

    let json = run_sweep(quick, w, true);
    std::fs::write(&out, &json).expect("write bench JSON");
    eprintln!("bench_scale: wrote {out}");
    print!("{json}");
}
