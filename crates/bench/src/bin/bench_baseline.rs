//! Perf-baseline harness: measures the hot-path microbenchmarks and a
//! fig6-style end-to-end sweep, emitting `BENCH_micro.json` for
//! regression tracking (see EXPERIMENTS.md "Perf baseline").
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p flock-bench --bin bench_baseline -- [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks every measurement window (CI smoke); `--out`
//! changes the output path (default `BENCH_micro.json` in the current
//! directory). The JSON is written by hand — the offline workspace has
//! no serde — with a stable field order so diffs stay readable.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use flock_bench::ContendedTcq;
use flock_core::msg::{self, EntryMeta, EntryRef, MsgHeader};
use flock_core::ring::{RingConsumer, RingLayout, RingProducer};
use flock_core::tcq::{Outcome, Tcq};
use flock_fabric::{Access, MrTable};
use flock_models::{run_rpc, RpcConfig};
use flock_sim::Ns;

/// Mean ns per call of `f` over a fixed measurement budget.
fn ns_per_iter(warmup: Duration, measure: Duration, mut f: impl FnMut()) -> f64 {
    let warm_deadline = Instant::now() + warmup;
    let mut warm_iters: u64 = 0;
    while Instant::now() < warm_deadline {
        f();
        warm_iters += 1;
    }
    // Batch so the clock is read ~200 times, not per iteration.
    let per_iter = warmup.as_nanos() as f64 / warm_iters.max(1) as f64;
    let batch = ((measure.as_nanos() as f64 / 200.0 / per_iter.max(1.0)) as u64).max(1);
    let mut total_ns = 0f64;
    let mut total_iters = 0u64;
    let deadline = Instant::now() + measure;
    while Instant::now() < deadline {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        total_ns += start.elapsed().as_nanos() as f64;
        total_iters += batch;
    }
    total_ns / total_iters.max(1) as f64
}

fn tcq_uncontended_ns(pooled: bool, warmup: Duration, measure: Duration) -> f64 {
    let tcq: Tcq<u64> = Tcq::with_pooling(16, pooled);
    let mut i = 0u64;
    ns_per_iter(warmup, measure, || {
        i += 1;
        match tcq.join(std::hint::black_box(i)) {
            Outcome::Lead(batch) => tcq.complete(batch),
            Outcome::Sent => unreachable!("single-threaded join must lead"),
        }
    })
}

fn ring_wrap_ns(warmup: Duration, measure: Duration) -> f64 {
    let table = MrTable::new();
    let mr = table.register(1 << 12, Access::REMOTE_ALL);
    let layout = RingLayout::new(0, 1 << 12);
    let mut prod = RingProducer::new(layout);
    let mut cons = RingConsumer::new(layout);
    let mut staging = vec![0u8; 2048];
    let payload = [7u8; 1600];
    let header = MsgHeader {
        total_len: 0,
        count: 0,
        flags: 0,
        canary: 0x1234,
        head: 0,
        aux: 0,
    };
    let n = msg::encode(
        &mut staging,
        &header,
        &[EntryRef {
            meta: EntryMeta {
                len: 1600,
                thread_id: 0,
                seq: 0,
                rpc_id: 0,
            },
            data: &payload,
        }],
    )
    .expect("staging fits one entry");
    ns_per_iter(warmup, measure, || {
        let res = prod.reserve(n).expect("ring is drained every iteration");
        if let Some((woff, wlen)) = res.wrap {
            mr.with_write(|buf| {
                RingProducer::write_wrap_record(&mut buf[woff..woff + wlen], 0x1234);
            });
        }
        mr.write(res.offset, &staging[..n])
            .expect("in-bounds write");
        let m = cons.poll(&mr).expect("no corruption").expect("message");
        prod.update_head(cons.head());
        std::hint::black_box(m.len());
    })
}

fn pct_improvement(boxed: f64, pooled: f64) -> f64 {
    if boxed <= 0.0 {
        return 0.0;
    }
    (boxed - pooled) / boxed * 100.0
}

struct SweepPoint {
    threads: usize,
    mops: f64,
    median_us: f64,
    p99_us: f64,
    degree: f64,
}

fn sweep_point(threads: usize, sim_ms: u64) -> SweepPoint {
    let mut cfg = RpcConfig::default();
    cfg.threads_per_client = threads;
    cfg.lanes_per_client = threads;
    cfg.duration = Ns::from_millis(sim_ms);
    cfg.warmup = Ns::from_millis((sim_ms / 2).max(1));
    let r = run_rpc(&cfg);
    SweepPoint {
        threads,
        mops: r.mops,
        median_us: r.median_us,
        p99_us: r.p99_us,
        degree: r.degree,
    }
}

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_micro.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_baseline [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let (warmup, measure, rounds, sim_ms, sweep): (_, _, u32, u64, &[usize]) = if quick {
        (
            Duration::from_millis(20),
            Duration::from_millis(100),
            50,
            2,
            &[1, 8, 48],
        )
    } else {
        (
            Duration::from_millis(200),
            Duration::from_secs(1),
            400,
            8,
            &[1, 2, 4, 8, 16, 32, 48],
        )
    };

    eprintln!("bench_baseline: micro (quick={quick}) ...");
    let pooled_unc = tcq_uncontended_ns(true, warmup, measure);
    let boxed_unc = tcq_uncontended_ns(false, warmup, measure);
    let (pooled_con, pooled_degree) = {
        let h = ContendedTcq::new(true, 8, 64);
        (h.ns_per_op(rounds), h.mean_degree())
    };
    let (boxed_con, boxed_degree) = {
        let h = ContendedTcq::new(false, 8, 64);
        (h.ns_per_op(rounds), h.mean_degree())
    };
    let ring_wrap = ring_wrap_ns(warmup, measure);

    eprintln!(
        "bench_baseline: fig6-style sweep ({} points) ...",
        sweep.len()
    );
    let points: Vec<SweepPoint> = sweep.iter().map(|&t| sweep_point(t, sim_ms)).collect();

    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"quick\": {quick},");
    j.push_str("  \"micro\": {\n");
    let _ = writeln!(j, "    \"tcq_pooled_uncontended_ns\": {pooled_unc:.1},");
    let _ = writeln!(j, "    \"tcq_boxed_uncontended_ns\": {boxed_unc:.1},");
    let _ = writeln!(
        j,
        "    \"tcq_uncontended_improvement_pct\": {:.1},",
        pct_improvement(boxed_unc, pooled_unc)
    );
    let _ = writeln!(
        j,
        "    \"tcq_pooled_contended8_ns_per_op\": {pooled_con:.1},"
    );
    let _ = writeln!(j, "    \"tcq_boxed_contended8_ns_per_op\": {boxed_con:.1},");
    let _ = writeln!(
        j,
        "    \"tcq_contended_improvement_pct\": {:.1},",
        pct_improvement(boxed_con, pooled_con)
    );
    let _ = writeln!(
        j,
        "    \"tcq_pooled_contended8_mean_degree\": {pooled_degree:.2},"
    );
    let _ = writeln!(
        j,
        "    \"tcq_boxed_contended8_mean_degree\": {boxed_degree:.2},"
    );
    let _ = writeln!(j, "    \"ring_wrap_boundary_1600B_ns\": {ring_wrap:.1}");
    j.push_str("  },\n");
    j.push_str("  \"fig6_sweep\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"threads\": {}, \"mops\": {:.3}, \"median_us\": {:.2}, \
             \"p99_us\": {:.2}, \"mean_degree\": {:.2}}}{comma}",
            p.threads, p.mops, p.median_us, p.p99_us, p.degree
        );
    }
    j.push_str("  ]\n");
    j.push_str("}\n");

    std::fs::write(&out, &j).expect("write baseline JSON");
    eprintln!("bench_baseline: wrote {out}");
    print!("{j}");
}
