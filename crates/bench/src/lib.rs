//! # flock-bench
//!
//! Benchmark harnesses regenerating every table and figure of the Flock
//! paper (SOSP 2021). Each `benches/figN*.rs` target (run via
//! `cargo bench`) prints the same rows/series the paper reports;
//! `benches/micro.rs` holds Criterion microbenchmarks of the core data
//! structures. See EXPERIMENTS.md for paper-vs-measured values.

use flock_sim::Ns;

/// Measurement window per point, scaled by `FLOCK_SIM_MS` (default 8 ms).
pub fn sim_duration() -> Ns {
    let ms = std::env::var("FLOCK_SIM_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(8);
    Ns::from_millis(ms)
}

/// Warmup per point (default: half the measurement window, min 2 ms).
pub fn sim_warmup() -> Ns {
    Ns(sim_duration().as_nanos() / 2).max(Ns::from_millis(2))
}

/// Print a standard series header.
pub fn header(title: &str, cols: &[&str]) {
    println!("\n=== {title} ===");
    println!("{}", cols.join("\t"));
}
