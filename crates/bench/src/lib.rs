//! # flock-bench
//!
//! Benchmark harnesses regenerating every table and figure of the Flock
//! paper (SOSP 2021). Each `benches/figN*.rs` target (run via
//! `cargo bench`) prints the same rows/series the paper reports;
//! `benches/micro.rs` holds Criterion microbenchmarks of the core data
//! structures. See EXPERIMENTS.md for paper-vs-measured values.

pub mod arrival;
pub mod churn;
pub mod onesided;
pub mod scale;
pub mod tenant;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use flock_core::tcq::{Outcome, Tcq};
use flock_sim::Ns;

/// Pre-spawned worker pool hammering one shared TCQ in barrier-gated
/// rounds, shared between the Criterion `micro` bench and the
/// `bench_baseline` binary so both measure the identical contended
/// scenario.
///
/// Spawning threads inside the timed region would dwarf the per-op cost
/// being measured (and allocate, muddying the zero-allocation story);
/// here the workers live across rounds, parked on a barrier between
/// them. On a single-core host the scenario is oversubscribed, but the
/// per-op allocation savings are scheduler-independent.
pub struct ContendedTcq {
    tcq: Arc<Tcq<u64>>,
    barrier: Arc<Barrier>,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    ops_per_thread: u64,
}

impl ContendedTcq {
    /// Spawn `threads` workers against a fresh TCQ (batch limit 16).
    /// Each round every worker submits `ops_per_thread` requests,
    /// driving any batch it leads to completion.
    pub fn new(pooled: bool, threads: usize, ops_per_thread: u64) -> Self {
        let tcq: Arc<Tcq<u64>> = Arc::new(Tcq::with_pooling(16, pooled));
        let barrier = Arc::new(Barrier::new(threads + 1));
        let stop = Arc::new(AtomicBool::new(false));
        let workers = (0..threads as u64)
            .map(|t| {
                let tcq = Arc::clone(&tcq);
                let barrier = Arc::clone(&barrier);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || loop {
                    barrier.wait();
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    for i in 0..ops_per_thread {
                        match tcq.join(t * ops_per_thread + i) {
                            Outcome::Lead(mut batch) => {
                                let mut sum = 0u64;
                                for it in batch.drain_items() {
                                    sum = sum.wrapping_add(it);
                                }
                                std::hint::black_box(sum);
                                tcq.complete(batch);
                            }
                            Outcome::Sent => {}
                        }
                    }
                    barrier.wait();
                })
            })
            .collect();
        ContendedTcq {
            tcq,
            barrier,
            stop,
            workers,
            threads,
            ops_per_thread,
        }
    }

    /// Run one round (every worker submits its quota), returning its
    /// wall time.
    pub fn round(&self) -> Duration {
        self.barrier.wait();
        let start = Instant::now();
        self.barrier.wait();
        start.elapsed()
    }

    /// Mean wall nanoseconds per `join`/`complete` op over `rounds`.
    pub fn ns_per_op(&self, rounds: u32) -> f64 {
        let mut total = Duration::ZERO;
        for _ in 0..rounds {
            total += self.round();
        }
        let ops = u64::from(rounds) * self.threads as u64 * self.ops_per_thread;
        total.as_nanos() as f64 / ops.max(1) as f64
    }

    /// Mean coalescing degree observed so far (requests per batch).
    pub fn mean_degree(&self) -> f64 {
        self.tcq.mean_degree()
    }
}

impl Drop for ContendedTcq {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Workers park on the round-start barrier between rounds; one
        // more wait releases them into the stop check.
        self.barrier.wait();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Measurement window per point, scaled by `FLOCK_SIM_MS` (default 8 ms).
pub fn sim_duration() -> Ns {
    let ms = std::env::var("FLOCK_SIM_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(8);
    Ns::from_millis(ms)
}

/// Warmup per point (default: half the measurement window, min 2 ms).
pub fn sim_warmup() -> Ns {
    Ns(sim_duration().as_nanos() / 2).max(Ns::from_millis(2))
}

/// Print a standard series header.
pub fn header(title: &str, cols: &[&str]) {
    println!("\n=== {title} ===");
    println!("{}", cols.join("\t"));
}
