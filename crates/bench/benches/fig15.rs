//! Figure 15: Smallbank distributed transactions (write-intensive: 85%
//! updates, 4% of accounts receive 90% of traffic) — FlockTX vs FaSST.
//! 3 servers, 20 clients, threads ∈ {1..16}, 20 coroutines per thread.
//!
//! Paper: similar up to 2 threads (but FaSST p99 178 µs vs Flock 126 µs
//! even at 1 thread); FlockTX up to +24% at 4 and +88% at 8 threads.
//!
//! Scale note: accounts default to 100k/thread scaled down via
//! `FLOCK_SB_ACCOUNTS` (default 100_000 total).

use flock_bench::{header, sim_duration, sim_warmup};
use flock_models::coord::TxnWorkload;
use flock_models::{run_txn, Report, RpcConfig, SystemKind, TxnConfig};
use flock_txn::Smallbank;

const THREADS: [usize; 5] = [1, 2, 4, 8, 16];

fn accounts() -> u64 {
    std::env::var("FLOCK_SB_ACCOUNTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000)
}

fn run(system: SystemKind, threads: usize) -> Report {
    let mut rpc = RpcConfig::default();
    rpc.system = system;
    rpc.n_clients = 20;
    rpc.threads_per_client = threads;
    rpc.lanes_per_client = threads;
    rpc.duration = sim_duration();
    rpc.warmup = sim_warmup();
    let cfg = TxnConfig {
        rpc,
        n_servers: 3,
        coroutines: 19,
        workload: TxnWorkload::Smallbank(Smallbank::new(accounts())),
        validate_via_rpc: system == SystemKind::UdRpc,
    };
    run_txn(&cfg)
}

fn main() {
    header(
        "Figure 15: Smallbank (write-intensive), FlockTX vs FaSST",
        &[
            "threads",
            "flocktx_mtps",
            "flocktx_med_us",
            "flocktx_p99_us",
            "flocktx_abort_pct",
            "fasst_mtps",
            "fasst_med_us",
            "fasst_p99_us",
        ],
    );
    for threads in THREADS {
        let f = run(SystemKind::Flock, threads);
        let s = run(SystemKind::UdRpc, threads);
        let abort_pct = 100.0 * f.aborts as f64 / (f.commits + f.aborts).max(1) as f64;
        println!(
            "{threads}\t{:.2}\t{:.1}\t{:.1}\t{:.1}%\t{:.2}\t{:.1}\t{:.1}",
            f.mops, f.median_us, f.p99_us, abort_pct, s.mops, s.median_us, s.p99_us
        );
    }
    println!(
        "\npaper: similar up to 2 threads; FlockTX +24% at 4 and +88% at 8 threads, \
         with better median and tail latency"
    );
}
