//! Figures 16, 17, 18: HydraList index service — throughput, median, and
//! p99 latency for a 90% get / 10% scan(64) workload over Flock vs eRPC.
//! One server (all cores), 22 clients, threads ∈ {1..32}, outstanding
//! ∈ {1, 4, 8}; 8-byte keys/values, the server answers scans with an
//! 8-byte count.
//!
//! Paper: eRPC equal or slightly ahead up to 8 threads; QP sharing starts
//! at 16 threads (352 QPs); at 32 threads Flock wins ~1.4× with lower
//! median and p99 for both gets and scans.
//!
//! Scale note: the index defaults to 2M keys instead of the paper's 32M
//! (set `FLOCK_HYDRA_KEYS` to raise it).

use flock_bench::{header, sim_duration, sim_warmup};
use flock_models::{run_rpc, Report, RpcConfig, SystemKind};

const THREADS: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn keys() -> u64 {
    std::env::var("FLOCK_HYDRA_KEYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000)
}

fn run(system: SystemKind, threads: usize, outstanding: usize) -> Report {
    let mut cfg = RpcConfig::default();
    cfg.system = system;
    cfg.n_clients = 22;
    cfg.threads_per_client = threads;
    cfg.lanes_per_client = threads;
    cfg.outstanding = outstanding;
    cfg.hydra_keys = Some(keys());
    cfg.duration = sim_duration();
    cfg.warmup = sim_warmup();
    run_rpc(&cfg)
}

fn main() {
    for outstanding in [1, 4, 8] {
        header(
            &format!(
                "Figures 16/17/18: HydraList 90% get / 10% scan (outstanding = {outstanding})"
            ),
            &[
                "threads",
                "flock_mops",
                "flock_get_med",
                "flock_get_p99",
                "flock_scan_med",
                "flock_scan_p99",
                "erpc_mops",
                "erpc_get_med",
                "erpc_get_p99",
                "erpc_scan_med",
                "erpc_scan_p99",
            ],
        );
        for threads in THREADS {
            let f = run(SystemKind::Flock, threads, outstanding);
            let e = run(SystemKind::UdRpc, threads, outstanding);
            println!(
                "{threads}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
                f.mops,
                f.get_median_us,
                f.get_p99_us,
                f.scan_median_us,
                f.scan_p99_us,
                e.mops,
                e.get_median_us,
                e.get_p99_us,
                e.scan_median_us,
                e.scan_p99_us
            );
        }
    }
    println!(
        "\npaper: eRPC equal/slightly ahead up to 8 threads; Flock ~1.4x at 32 threads \
         with lower median and p99 for gets and scans"
    );
}
