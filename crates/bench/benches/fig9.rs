//! Figure 9: QP-sharing approaches — Flock synchronization + scheduling
//! vs no sharing (one QP per thread) vs FaRM-style spinlock sharing with
//! 2 or 4 threads per QP. 64-byte RPCs, 8 outstanding per thread.
//!
//! Paper: similar up to 8 threads; at 32/48 threads Flock beats the
//! others by ≥62%/133% thanks to coalescing; spinlock sharing tracks the
//! no-sharing line; p99 is 27%/49% lower than no-sharing at 32/48.

use flock_bench::{header, sim_duration, sim_warmup};
use flock_models::{run_rpc, Report, RpcConfig, SystemKind};

const THREADS: [usize; 7] = [1, 2, 4, 8, 16, 32, 48];

fn run(system: SystemKind, threads: usize, lanes: usize, batch: usize, sched: bool) -> Report {
    let mut cfg = RpcConfig::default();
    cfg.system = system;
    cfg.threads_per_client = threads;
    cfg.lanes_per_client = lanes.max(1);
    cfg.batch_limit = batch;
    cfg.scheduling = sched;
    cfg.outstanding = 8;
    cfg.duration = sim_duration();
    cfg.warmup = sim_warmup();
    run_rpc(&cfg)
}

fn main() {
    header(
        "Figure 9: RPC throughput under QP-sharing schemes (outstanding = 8)",
        &[
            "threads",
            "flock_mops",
            "flock_deg",
            "flock_p99_us",
            "noshare_mops",
            "noshare_p99_us",
            "noshare_hit",
            "farm2_mops",
            "farm4_mops",
        ],
    );
    for threads in THREADS {
        let flock = run(SystemKind::Flock, threads, threads, 16, true);
        let noshare = run(SystemKind::NoShare, threads, threads, 1, false);
        let farm2 = run(
            SystemKind::LockShare,
            threads,
            threads.div_ceil(2),
            1,
            false,
        );
        let farm4 = run(
            SystemKind::LockShare,
            threads,
            threads.div_ceil(4),
            1,
            false,
        );
        println!(
            "{threads}\t{:.1}\t{:.2}\t{:.1}\t{:.1}\t{:.1}\t{:.2}\t{:.1}\t{:.1}",
            flock.mops,
            flock.degree,
            flock.p99_us,
            noshare.mops,
            noshare.p99_us,
            noshare.cache_hit,
            farm2.mops,
            farm4.mops
        );
    }
    println!(
        "\npaper: Flock >= +62% at 32 thr and >= +133% at 48 thr over all others; \
         spinlock sharing tracks no-sharing; Flock p99 27%/49% lower at 32/48"
    );
}
