//! Figure 12: node scalability. Client processes grow from 23 to 368
//! (16 per machine max) in three configurations: 1 thread/1 QP (no
//! coalescing possible — Flock's worst case), 2 threads sharing 1 QP, and
//! 2 threads with 2 dedicated QPs (native RC). 64-byte RPCs, 8
//! outstanding per thread.
//!
//! Paper: 1 thr/1 QP saturates at 46 clients (packet-rate bound);
//! 2 thr/1 QP beats 2 thr/2 QPs by 10–30% in throughput with similar p99
//! reductions — sharing + coalescing wins while using half the QPs.

use flock_bench::{header, sim_duration, sim_warmup};
use flock_models::{run_rpc, Report, RpcConfig, SystemKind};

const CLIENTS: [usize; 5] = [23, 46, 92, 184, 368];

fn run(clients: usize, threads: usize, lanes: usize) -> Report {
    let mut cfg = RpcConfig::default();
    cfg.system = SystemKind::Flock;
    cfg.n_clients = clients;
    cfg.threads_per_client = threads;
    cfg.lanes_per_client = lanes;
    cfg.outstanding = 8;
    cfg.duration = sim_duration();
    cfg.warmup = sim_warmup();
    run_rpc(&cfg)
}

fn main() {
    header(
        "Figure 12: node scalability",
        &[
            "clients",
            "1t1q_mops",
            "1t1q_med",
            "1t1q_p99",
            "2t1q_mops",
            "2t1q_med",
            "2t1q_p99",
            "2t2q_mops",
            "2t2q_med",
            "2t2q_p99",
        ],
    );
    for clients in CLIENTS {
        let a = run(clients, 1, 1);
        let b = run(clients, 2, 1);
        let c = run(clients, 2, 2);
        println!(
            "{clients}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
            a.mops,
            a.median_us,
            a.p99_us,
            b.mops,
            b.median_us,
            b.p99_us,
            c.mops,
            c.median_us,
            c.p99_us
        );
    }
    println!(
        "\npaper: 1t/1q saturates by 46 clients; 2t/1q gives 10-30% higher throughput \
         than 2t/2q with similar p99 reductions, using half the QPs"
    );
}
