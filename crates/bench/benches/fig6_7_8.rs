//! Figures 6, 7, 8: Flock vs eRPC — throughput, median latency, and 99th
//! percentile latency for 64-byte RPCs. One server, 23 clients, threads
//! per client ∈ {1..48}, outstanding requests per thread ∈ {1, 4, 8}.
//!
//! Paper: both comparable up to 4 threads; eRPC saturates at 16 threads
//! (server CPU) with a latency spike at 32; Flock keeps scaling through
//! QP sharing and coalescing, reaching 1.25–3.4× eRPC's throughput, with
//! ~2× better median and ~1.5× better p99 at 32 threads.

use flock_bench::{header, sim_duration, sim_warmup};
use flock_models::{run_rpc, RpcConfig, SystemKind};

const THREADS: [usize; 7] = [1, 2, 4, 8, 16, 32, 48];

fn run(system: SystemKind, threads: usize, outstanding: usize) -> flock_models::Report {
    let mut cfg = RpcConfig::default();
    cfg.system = system;
    cfg.threads_per_client = threads;
    cfg.lanes_per_client = threads;
    cfg.outstanding = outstanding;
    cfg.duration = sim_duration();
    cfg.warmup = sim_warmup();
    run_rpc(&cfg)
}

fn main() {
    for outstanding in [1, 4, 8] {
        header(
            &format!("Figures 6/7/8 (outstanding = {outstanding})"),
            &[
                "threads",
                "flock_mops",
                "flock_med_us",
                "flock_p99_us",
                "flock_degree",
                "erpc_mops",
                "erpc_med_us",
                "erpc_p99_us",
            ],
        );
        for threads in THREADS {
            let f = run(SystemKind::Flock, threads, outstanding);
            let e = run(SystemKind::UdRpc, threads, outstanding);
            println!(
                "{threads}\t{:.1}\t{:.1}\t{:.1}\t{:.2}\t{:.1}\t{:.1}\t{:.1}",
                f.mops, f.median_us, f.p99_us, f.degree, e.mops, e.median_us, e.p99_us
            );
        }
    }
    println!(
        "\npaper: eRPC saturates ~16 threads; Flock 1.25-3.4x eRPC; eRPC ~2x worse median \
         and ~1.5x worse p99 at 32 threads"
    );
}
