//! Ablation sweeps over Flock's design parameters (DESIGN.md §4):
//!
//! * `MAX_AQP` — the server's active-QP bound. Too low starves
//!   parallelism; too high readmits NIC cache thrashing. The paper picks
//!   256 from Figure 2(a).
//! * TCQ batch limit — the leader's per-batch request bound (paper §4.2
//!   "bounded number of buffers").
//! * Credit grant size — `C` in the renewal scheme (paper default 32).

use flock_bench::{header, sim_duration, sim_warmup};
use flock_models::{run_rpc, RpcConfig, SystemKind};

fn base() -> RpcConfig {
    let mut cfg = RpcConfig::default();
    cfg.system = SystemKind::Flock;
    cfg.threads_per_client = 48;
    cfg.lanes_per_client = 48;
    cfg.outstanding = 8;
    cfg.duration = sim_duration();
    cfg.warmup = sim_warmup();
    cfg
}

fn main() {
    header(
        "Ablation: MAX_AQP (23 clients x 48 threads, 8 outstanding)",
        &["max_aqp", "mops", "p99_us", "degree", "cache_hit"],
    );
    for max_aqp in [32, 64, 128, 256, 512, 1024, 2048] {
        let mut cfg = base();
        cfg.max_aqp = max_aqp;
        let r = run_rpc(&cfg);
        println!(
            "{max_aqp}\t{:.1}\t{:.1}\t{:.2}\t{:.3}",
            r.mops, r.p99_us, r.degree, r.cache_hit
        );
    }
    println!("expected: throughput peaks near the paper's 256; beyond ~1024 the cache thrashes");

    header(
        "Ablation: TCQ batch limit",
        &["batch_limit", "mops", "p99_us", "degree"],
    );
    for batch in [1, 2, 4, 8, 16, 32, 64] {
        let mut cfg = base();
        cfg.batch_limit = batch;
        let r = run_rpc(&cfg);
        println!("{batch}\t{:.1}\t{:.1}\t{:.2}", r.mops, r.p99_us, r.degree);
    }
    println!("expected: gains saturate once the limit exceeds the natural contention degree");

    header(
        "Ablation: credit grant size C",
        &["grant", "mops", "p99_us", "degree"],
    );
    for grant in [4u32, 8, 16, 32, 64, 128] {
        let mut cfg = base();
        cfg.grant_size = grant;
        let r = run_rpc(&cfg);
        println!("{grant}\t{:.1}\t{:.1}\t{:.2}", r.mops, r.p99_us, r.degree);
    }
    println!("expected: tiny grants stall senders on renewal RTTs; the paper's 32 is ample");
}
