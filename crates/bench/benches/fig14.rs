//! Figure 14: TATP distributed transactions — FlockTX vs a FaSST-style
//! UD-RPC transaction system. 3 servers (3-way replication), 20 clients,
//! threads per client ∈ {1..32}, 20 coroutines per thread (19 submitting).
//!
//! Paper: FaSST slightly ahead up to 4 threads, then saturates; FlockTX
//! reaches ~1.9× at 8 and ~2.4× at 16 threads with far better latency
//! (coalescing between coroutines of threads sharing a QP).
//!
//! Scale note: subscribers default to 200k/server instead of the paper's
//! 1M to bound load time; set `FLOCK_TATP_SUBS` to raise it.

use flock_bench::{header, sim_duration, sim_warmup};
use flock_models::coord::TxnWorkload;
use flock_models::{run_txn, Report, RpcConfig, SystemKind, TxnConfig};
use flock_txn::Tatp;

const THREADS: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn subscribers() -> u64 {
    std::env::var("FLOCK_TATP_SUBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000)
}

fn run(system: SystemKind, threads: usize) -> Report {
    let mut rpc = RpcConfig::default();
    rpc.system = system;
    rpc.n_clients = 20;
    rpc.threads_per_client = threads;
    rpc.lanes_per_client = threads;
    rpc.duration = sim_duration();
    rpc.warmup = sim_warmup();
    let cfg = TxnConfig {
        rpc,
        n_servers: 3,
        coroutines: 19,
        workload: TxnWorkload::Tatp(Tatp::new(subscribers())),
        validate_via_rpc: system == SystemKind::UdRpc, // FaSST has no one-sided verbs
    };
    run_txn(&cfg)
}

fn main() {
    header(
        "Figure 14: TATP (read-intensive), FlockTX vs FaSST",
        &[
            "threads",
            "flocktx_mtps",
            "flocktx_med_us",
            "flocktx_p99_us",
            "flocktx_aborts",
            "fasst_mtps",
            "fasst_med_us",
            "fasst_p99_us",
        ],
    );
    for threads in THREADS {
        let f = run(SystemKind::Flock, threads);
        let s = run(SystemKind::UdRpc, threads);
        println!(
            "{threads}\t{:.2}\t{:.1}\t{:.1}\t{}\t{:.2}\t{:.1}\t{:.1}",
            f.mops, f.median_us, f.p99_us, f.aborts, s.mops, s.median_us, s.p99_us
        );
    }
    println!(
        "\npaper: FaSST saturates at 4 threads; FlockTX ~1.9x at 8 and ~2.4x at 16 \
         threads, with much lower latency at high thread counts"
    );
}
