//! Criterion microbenchmarks of the core data structures: the message
//! codec, the ring buffer, the TCQ combining queue vs a mutex (the §2.2
//! "lock-based sharing is up to 2.3× slower" claim — note that on a
//! single-core host the contended comparison is illustrative only; the
//! cluster-scale version is Figure 9), the KV store, and the index.

use std::sync::Mutex;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flock_bench::ContendedTcq;
use flock_core::msg::{self, EntryMeta, EntryRef, MsgHeader};
use flock_core::ring::{RingConsumer, RingLayout, RingProducer};
use flock_core::tcq::{Outcome, Tcq};
use flock_fabric::{Access, MrTable};
use flock_hydralist::{HydraConfig, HydraList};
use flock_kvstore::{KvConfig, KvStore};

fn bench_codec(c: &mut Criterion) {
    let payloads: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 64]).collect();
    let entries: Vec<EntryRef<'_>> = payloads
        .iter()
        .enumerate()
        .map(|(i, p)| EntryRef {
            meta: EntryMeta {
                len: 64,
                thread_id: i as u32,
                seq: i as u64,
                rpc_id: 1,
            },
            data: p,
        })
        .collect();
    let header = MsgHeader {
        total_len: 0,
        count: 0,
        flags: 0,
        canary: 0xABCD,
        head: 0,
        aux: 0,
    };
    let mut buf = vec![0u8; 4096];
    c.bench_function("msg_encode_8x64B", |b| {
        b.iter(|| msg::encode(black_box(&mut buf), &header, &entries).unwrap())
    });
    let n = msg::encode(&mut buf, &header, &entries).unwrap();
    c.bench_function("msg_decode_8x64B", |b| {
        b.iter(|| {
            let v = msg::decode(black_box(&buf[..n])).unwrap().unwrap();
            black_box(v.to_entries().len())
        })
    });
}

fn bench_ring(c: &mut Criterion) {
    let table = MrTable::new();
    let mr = table.register(1 << 16, Access::REMOTE_ALL);
    let layout = RingLayout::new(0, 1 << 16);
    c.bench_function("ring_produce_consume_64B", |b| {
        let mut prod = RingProducer::new(layout);
        let mut cons = RingConsumer::new(layout);
        let mut staging = vec![0u8; 512];
        let payload = [7u8; 64];
        let header = MsgHeader {
            total_len: 0,
            count: 0,
            flags: 0,
            canary: 0x1234,
            head: 0,
            aux: 0,
        };
        let n = msg::encode(
            &mut staging,
            &header,
            &[EntryRef {
                meta: EntryMeta {
                    len: 64,
                    thread_id: 0,
                    seq: 0,
                    rpc_id: 0,
                },
                data: &payload,
            }],
        )
        .unwrap();
        b.iter(|| {
            let res = prod.reserve(n).unwrap();
            if let Some((woff, wlen)) = res.wrap {
                let rec = RingProducer::wrap_record(wlen, 0x1234);
                mr.write(woff, &rec).unwrap();
            }
            mr.write(res.offset, &staging[..n]).unwrap();
            let m = cons.poll(&mr).unwrap().expect("message");
            prod.update_head(cons.head());
            black_box(m.len())
        })
    });
    // Wrap-heavy traffic: a 4 KiB ring with ~1.6 KiB messages wraps
    // every third reservation, exercising the in-place
    // `write_wrap_record` path (formerly a scratch-Vec per wrap).
    c.bench_function("ring_wrap_boundary_1600B", |b| {
        let mr = table.register(1 << 12, Access::REMOTE_ALL);
        let layout = RingLayout::new(0, 1 << 12);
        let mut prod = RingProducer::new(layout);
        let mut cons = RingConsumer::new(layout);
        let mut staging = vec![0u8; 2048];
        let payload = [7u8; 1600];
        let header = MsgHeader {
            total_len: 0,
            count: 0,
            flags: 0,
            canary: 0x1234,
            head: 0,
            aux: 0,
        };
        let n = msg::encode(
            &mut staging,
            &header,
            &[EntryRef {
                meta: EntryMeta {
                    len: 1600,
                    thread_id: 0,
                    seq: 0,
                    rpc_id: 0,
                },
                data: &payload,
            }],
        )
        .unwrap();
        b.iter(|| {
            let res = prod.reserve(n).unwrap();
            if let Some((woff, wlen)) = res.wrap {
                mr.with_write(|buf| {
                    RingProducer::write_wrap_record(&mut buf[woff..woff + wlen], 0x1234);
                });
            }
            mr.write(res.offset, &staging[..n]).unwrap();
            let m = cons.poll(&mr).unwrap().expect("message");
            prod.update_head(cons.head());
            black_box(m.len())
        })
    });
}

fn bench_tcq(c: &mut Criterion) {
    // Pooled (default) vs boxed (the `alloc-per-node` escape-hatch
    // behavior, selected at runtime via `with_pooling`): same protocol,
    // only the node/scratch allocation strategy differs.
    c.bench_function("tcq_pooled_join_complete_uncontended", |b| {
        let tcq: Tcq<u64> = Tcq::with_pooling(16, true);
        b.iter(|| match tcq.join(black_box(42)) {
            Outcome::Lead(batch) => tcq.complete(batch),
            Outcome::Sent => unreachable!(),
        })
    });
    c.bench_function("tcq_boxed_join_complete_uncontended", |b| {
        let tcq: Tcq<u64> = Tcq::with_pooling(16, false);
        b.iter(|| match tcq.join(black_box(42)) {
            Outcome::Lead(batch) => tcq.complete(batch),
            Outcome::Sent => unreachable!(),
        })
    });
    c.bench_function("mutex_lock_send_uncontended", |b| {
        // The FaRM-style alternative: serialize each send under a lock.
        let lock = Mutex::new(0u64);
        b.iter(|| {
            let mut g = lock.lock().unwrap();
            *g = black_box(42);
        })
    });
    // Contended: 8 pre-spawned workers, 64 ops each per barrier-gated
    // round, so one "iter" is a 512-op round (see ContendedTcq; the
    // bench_baseline binary reports the same scenario as ns/op).
    c.bench_function("tcq_pooled_contended8_round512", |b| {
        let h = ContendedTcq::new(true, 8, 64);
        b.iter(|| h.round())
    });
    c.bench_function("tcq_boxed_contended8_round512", |b| {
        let h = ContendedTcq::new(false, 8, 64);
        b.iter(|| h.round())
    });
}

fn bench_kvstore(c: &mut Criterion) {
    let kv = KvStore::new(KvConfig {
        partitions: 4,
        stripes: 16,
    });
    for k in 0..100_000u64 {
        kv.put(k, &k.to_le_bytes());
    }
    let mut i = 0u64;
    c.bench_function("kvstore_get", |b| {
        b.iter(|| {
            i = (i + 7919) % 100_000;
            black_box(kv.get(black_box(i)))
        })
    });
    c.bench_function("kvstore_occ_cycle", |b| {
        b.iter(|| {
            kv.try_lock(1);
            kv.update_and_unlock(1, &7u64.to_le_bytes());
        })
    });
}

fn bench_hydralist(c: &mut Criterion) {
    let h = HydraList::new(HydraConfig::default());
    for k in 0..100_000u64 {
        h.insert(k, k);
    }
    let mut i = 0u64;
    c.bench_function("hydralist_get", |b| {
        b.iter(|| {
            i = (i + 7919) % 100_000;
            black_box(h.get(black_box(i)))
        })
    });
    c.bench_function("hydralist_scan64", |b| {
        b.iter(|| {
            i = (i + 7919) % 100_000;
            black_box(h.scan(black_box(i), 64).len())
        })
    });
}

fn bench_sim_engine(c: &mut Criterion) {
    use flock_sim::{Ns, Sim};
    c.bench_function("sim_engine_1k_events", |b| {
        b.iter(|| {
            struct W {
                ticks: u64,
            }
            fn tick(w: &mut W, sim: &mut Sim<W>) {
                w.ticks += 1;
                if !w.ticks.is_multiple_of(4) {
                    sim.after(Ns(10), tick);
                }
            }
            let mut sim: Sim<W> = Sim::new();
            let mut w = W { ticks: 0 };
            for i in 0..250 {
                sim.at(Ns(i), tick);
            }
            sim.run(&mut w);
            black_box(w.ticks)
        })
    });
    c.bench_function("sim_multiserver_admit", |b| {
        use flock_sim::MultiServer;
        let mut r = MultiServer::new(32);
        let mut t = 0u64;
        b.iter(|| {
            t += 7;
            black_box(r.admit(Ns(t), Ns(100)))
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_codec, bench_ring, bench_tcq, bench_kvstore, bench_hydralist, bench_sim_engine
);
criterion_main!(micro);
