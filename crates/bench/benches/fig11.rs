//! Figure 11: sender-side thread scheduling (Algorithm 1). 90% of threads
//! send 64-byte RPCs, 10% send large RPCs (512/768/1024 B); 32 threads per
//! client over shared QPs.
//!
//! Paper: grouping small-payload threads and isolating large ones avoids
//! head-of-line blocking, improving throughput up to 1.5× over a static
//! two-threads-per-QP assignment.

use flock_bench::{header, sim_duration, sim_warmup};
use flock_models::{run_rpc, RpcConfig, SystemKind};

fn run(large_size: usize, thread_sched: bool) -> flock_models::Report {
    let mut cfg = RpcConfig::default();
    cfg.system = SystemKind::Flock;
    cfg.threads_per_client = 32;
    // Half as many QPs as threads: two threads per QP without scheduling,
    // matching the paper's static baseline.
    cfg.lanes_per_client = 16;
    cfg.outstanding = 8;
    cfg.large_fraction = 0.10;
    cfg.large_size = large_size;
    // Isolate the sender-side variable: receiver-side QP scheduling and
    // credits are identical (off) in both configurations.
    cfg.scheduling = false;
    cfg.thread_sched = thread_sched;
    cfg.duration = sim_duration();
    cfg.warmup = sim_warmup();
    run_rpc(&cfg)
}

fn main() {
    header(
        "Figure 11: sender-side thread scheduling (10% large payloads)",
        &[
            "large_B",
            "with_mops",
            "without_mops",
            "speedup",
            "with_p99_us",
            "without_p99_us",
        ],
    );
    for large in [512usize, 768, 1024] {
        let with = run(large, true);
        let without = run(large, false);
        println!(
            "{large}\t{:.1}\t{:.1}\t{:.2}x\t{:.1}\t{:.1}",
            with.mops,
            without.mops,
            with.mops / without.mops,
            with.p99_us,
            without.p99_us
        );
    }
    println!("\npaper: up to 1.5x throughput with similar latency across payload sizes");
}
