//! Table 1: RDMA operations and MTU sizes supported by each transport.
//!
//! Regenerates the capability matrix from the fabric's transport model and
//! verifies each row by actually posting the verb on the threaded fabric.

use flock_fabric::{Access, Fabric, FabricError, RecvWr, RemoteAddr, SendWr, Sge, Transport, WrId};

fn yes_no(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

fn mtu(t: Transport) -> String {
    let b = t.max_msg_size();
    if b >= 1 << 30 {
        format!("{} GB", b >> 30)
    } else {
        format!("{} KB", b >> 10)
    }
}

/// Post each verb on a connected/ready QP pair and report acceptance.
fn probe(t: Transport) -> (bool, bool, bool, bool) {
    let fabric = Fabric::with_defaults();
    let a = fabric.add_node("a");
    let b = fabric.add_node("b");
    let amr = a.register_mr(4096, Access::REMOTE_ALL);
    let bmr = b.register_mr(4096, Access::REMOTE_ALL);
    let acq = a.create_cq(16);
    let bcq = b.create_cq(16);
    let qa = a.create_qp(t, &acq, &acq);
    let qb = b.create_qp(t, &bcq, &bcq);
    if t.connected() {
        fabric.connect(&qa, &qb).unwrap();
    } else {
        qa.ready().unwrap();
        qb.ready().unwrap();
    }
    qb.post_recv(RecvWr {
        wr_id: WrId(1),
        local: Sge {
            lkey: bmr.lkey(),
            addr: bmr.addr(),
            len: 4096,
        },
    })
    .unwrap();
    let local = Sge {
        lkey: amr.lkey(),
        addr: amr.addr(),
        len: 8,
    };
    let remote = RemoteAddr {
        rkey: bmr.rkey(),
        addr: bmr.addr(),
    };
    let ok = |r: flock_fabric::Result<()>| !matches!(r, Err(FabricError::UnsupportedVerb { .. }));
    let read = ok(qa.post_send(SendWr::read(WrId(2), local, remote)));
    let atomic = ok(qa.post_send(SendWr::fetch_add(WrId(3), local, remote, 1)));
    let write = ok(qa.post_send(SendWr::write(WrId(4), local, remote)));
    let send = ok(qa.post_send(if t.connected() {
        SendWr::send(WrId(5), local)
    } else {
        SendWr::send_to(WrId(5), local, (b.id(), qb.qpn()))
    }));
    (read, atomic, write, send)
}

fn main() {
    println!("\n=== Table 1: verbs & MTU per transport (probed on the fabric) ===");
    println!("transport  MTU     read  atomic  write  send/recv  reliable");
    for (name, t) in [
        ("RC", Transport::Rc),
        ("UC", Transport::Uc),
        ("UD", Transport::Ud),
    ] {
        let (read, atomic, write, send) = probe(t);
        // Cross-check the probe against the declared capability matrix.
        assert_eq!(read, t.supports_read());
        assert_eq!(atomic, t.supports_atomic());
        assert_eq!(write, t.supports_write());
        assert!(send);
        println!(
            "{name:<9}  {:<6}  {:<4}  {:<6}  {:<5}  {:<9}  {}",
            mtu(t),
            yes_no(read),
            yes_no(atomic),
            yes_no(write),
            yes_no(send),
            yes_no(t.reliable()),
        );
    }
    println!("\npaper Table 1: RC = all verbs, 2 GB; UC = write+send, 2 GB; UD = send only, 4 KB");
}
