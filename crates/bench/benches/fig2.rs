//! Figure 2: the motivation experiments.
//!
//! (a) RDMA read (RC) throughput vs number of QPs — 22 clients issuing
//!     16-byte reads; the RNIC connection cache thrashes past its
//!     capacity (paper: peak ≈37 Mops at 176–704 QPs, sharp drop after).
//! (b) UD-based RPC throughput vs number of senders — the server CPU
//!     saturates on per-packet receive work (paper: ≈2× below the read
//!     peak, slight decline at extreme sender counts).

use flock_bench::{header, sim_duration, sim_warmup};
use flock_models::{run_raw_read, run_rpc, RawReadConfig, RpcConfig, SystemKind};

const POINTS: [usize; 8] = [22, 44, 88, 176, 352, 704, 1408, 2816];

fn main() {
    header(
        "Figure 2(a): RDMA read (RC) vs #QPs",
        &["qps", "mops", "cache_hit"],
    );
    for qps in POINTS {
        let mut cfg = RawReadConfig::default();
        cfg.total_qps = qps;
        cfg.duration = sim_duration();
        cfg.warmup = sim_warmup();
        let r = run_raw_read(&cfg);
        println!("{qps}\t{:.1}\t{:.3}", r.mops, r.cache_hit);
    }
    println!("paper: rises to ~37, peak 176-704 QPs, sharp drop beyond (cache thrash)");

    header(
        "Figure 2(b): UD RPC vs #senders",
        &["senders", "mops", "server_cpu"],
    );
    for senders in POINTS {
        let mut cfg = RpcConfig::default();
        cfg.system = SystemKind::UdRpc;
        cfg.n_clients = 22;
        cfg.threads_per_client = (senders / 22).max(1);
        cfg.outstanding = 4;
        cfg.handler_ns = 50;
        // Raw HERD-style UD RPC: minimal session bookkeeping.
        cfg.cost.cpu_erpc_session_ns = 150;
        cfg.duration = sim_duration();
        cfg.warmup = sim_warmup();
        let r = run_rpc(&cfg);
        println!("{senders}\t{:.1}\t{:.2}", r.mops, r.server_cpu);
    }
    println!("paper: plateaus ~2x below the RC-read peak; server CPU saturated (>90%)");
}
