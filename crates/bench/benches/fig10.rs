//! Figure 10: the impact of coalescing. 23 clients × 32 threads, 64-byte
//! RPCs, outstanding ∈ {1, 4, 8}; Flock with and without coalescing.
//!
//! Paper: coalescing wins 1.4× at 1 outstanding (≈1.56 requests/message)
//! and 1.7× at 4 and 8 outstanding (≈1.7 and ≈2 requests/message), by
//! cutting MMIO doorbells (−36% CPU) and packet counts.

use flock_bench::{header, sim_duration, sim_warmup};
use flock_models::{run_rpc, RpcConfig, SystemKind};

fn run(outstanding: usize, coalescing: bool) -> flock_models::Report {
    let mut cfg = RpcConfig::default();
    cfg.system = SystemKind::Flock;
    cfg.threads_per_client = 32;
    cfg.lanes_per_client = 32;
    cfg.outstanding = outstanding;
    cfg.batch_limit = if coalescing { 16 } else { 1 };
    cfg.duration = sim_duration();
    cfg.warmup = sim_warmup();
    run_rpc(&cfg)
}

fn main() {
    header(
        "Figure 10: coalescing on/off (32 threads/client)",
        &[
            "outstanding",
            "with_mops",
            "without_mops",
            "speedup",
            "reqs_per_msg",
            "with_pkts",
            "without_pkts",
        ],
    );
    for outstanding in [1, 4, 8] {
        let with = run(outstanding, true);
        let without = run(outstanding, false);
        println!(
            "{outstanding}\t{:.1}\t{:.1}\t{:.2}x\t{:.2}\t{}\t{}",
            with.mops,
            without.mops,
            with.mops / without.mops,
            with.degree,
            with.packets,
            without.packets
        );
    }
    println!(
        "\npaper: 1.4x at 1 outstanding (1.56 reqs/msg), 1.7x at 4 and 8 \
         (1.7 and 2.0 reqs/msg)"
    );
}
