//! Wall-clock sanity benchmark of the *threaded* Flock stack (real
//! lock-free TCQ, rings, dispatchers — no virtual time).
//!
//! These numbers measure this repository's software fabric on the host
//! machine; they are NOT comparable to the paper's hardware numbers (the
//! figure benches are). They exist to catch performance regressions in
//! the real code paths.

use std::sync::Arc;
use std::time::Instant;

use flock_core::client::HandleConfig;
use flock_core::server::{FlockServer, ServerConfig};
use flock_core::{ConnectionHandle, FlockDomain};

fn run_native(n_clients: usize, threads_per_client: usize, pipeline: usize, ops: u64) -> f64 {
    let domain = FlockDomain::with_defaults();
    let snode = domain.add_node("native-server");
    let server = FlockServer::listen(&domain, &snode, "native", ServerConfig::default());
    server.reg_handler(1, |req| req.to_vec());

    let mut joins = Vec::new();
    let mut handles = Vec::new();
    let start = Instant::now();
    for c in 0..n_clients {
        let node = domain.add_node(&format!("native-c{c}"));
        let mut cfg = HandleConfig::default();
        cfg.n_qps = 2;
        let handle = Arc::new(ConnectionHandle::connect(&domain, &node, "native", cfg).unwrap());
        for _ in 0..threads_per_client {
            let t = handle.register_thread();
            joins.push(std::thread::spawn(move || {
                let per_thread = ops;
                let mut done = 0;
                while done < per_thread {
                    let burst = pipeline.min((per_thread - done) as usize);
                    let seqs: Vec<u64> = (0..burst)
                        .map(|_| t.send_rpc(1, &done.to_le_bytes()).unwrap())
                        .collect();
                    for s in seqs {
                        t.recv_res(s).unwrap();
                        done += 1;
                    }
                }
            }));
        }
        handles.push(handle);
    }
    for j in joins {
        j.join().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    let total = (n_clients * threads_per_client) as f64 * ops as f64;
    server.shutdown(&domain);
    total / secs
}

fn main() {
    println!("\n=== Native threaded-stack throughput (host wall clock; not paper-comparable) ===");
    println!("clients\tthreads\tpipeline\tkops_per_s");
    for (c, t, p) in [(1, 1, 1), (1, 4, 4), (2, 4, 4), (2, 4, 8)] {
        let rate = run_native(c, t, p, 2_000);
        println!("{c}\t{t}\t{p}\t{:.0}", rate / 1e3);
    }
}
