//! Workspace file walker shared by every xtask audit.

use std::path::{Path, PathBuf};

/// Directories scanned, relative to the workspace root. `shims/` is
/// deliberately excluded: those crates reimplement external
/// dependencies' documented APIs and are not part of the Flock protocol
/// surface.
pub const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Paths (relative, prefix match) excluded from every scan. The xtask
/// crate excludes itself: its rule tables and test fixtures spell out
/// the very patterns the rules hunt for.
pub const EXCLUDE: &[&str] = &["crates/xtask"];

/// The workspace root (xtask lives at `<root>/crates/xtask`;
/// `CARGO_MANIFEST_DIR` is compiled in, so audits work from any cwd
/// inside the workspace).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask manifest has a workspace root two levels up")
        .to_path_buf()
}

/// All `.rs` files under the scan roots, workspace-relative with `/`
/// separators, sorted.
pub fn rust_files(root: &Path) -> Vec<String> {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        collect(&root.join(scan), root, &mut files);
    }
    files.sort();
    files
}

fn collect(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .expect("scanned path under root")
            .to_string_lossy()
            .replace('\\', "/");
        if EXCLUDE.iter().any(|e| rel.starts_with(e)) {
            continue;
        }
        if path.is_dir() {
            collect(&path, root, out);
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
}

/// The crate a workspace-relative path belongs to (`crates/<name>/…` ->
/// `<name>`; everything else -> `(root)`, the top-level `flock-repro`
/// package).
pub fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("(root)")
}

/// Whether a path is test/bench/example scaffolding rather than library
/// code: integration tests, benches, and examples drive the system from
/// *outside* a `VirtualLab` on real OS threads by design, so the
/// determinism and hot-path rules skip them (inline `#[cfg(test)]`
/// modules are skipped via token regions instead).
pub fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
}
