//! A minimal Rust lexer for the invariant linter.
//!
//! The build environment is fully offline (no `syn`/`proc-macro2` in the
//! registry — see `[patch.crates-io]`), so `cargo xtask lint` carries its
//! own token layer: enough of the Rust lexical grammar to walk real
//! source reliably — nested block comments, raw/byte strings, char
//! literals vs. lifetimes, `::` path separators — without pretending to
//! be a full parser. Comments are preserved out-of-band (the SAFETY rule
//! needs them); everything else becomes a flat token stream with line
//! numbers that `parse` turns into a structural model.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `Mutex`, …).
    Ident,
    /// Punctuation. `::` is fused into one token; everything else is a
    /// single character.
    Punct,
    /// String/char/numeric literal (content not preserved verbatim for
    /// strings; the linter never needs to look inside).
    Literal,
    /// A lifetime such as `'a` (kept distinct so `'a'` char literals
    /// and lifetimes can't be confused downstream).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

/// One comment (line or block), 1-based starting line, text without the
/// delimiters.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: usize,
    pub text: String,
}

/// Lexer output: the token stream plus all comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens and comments. Never fails: unrecognized bytes
/// are skipped (the linter runs over code rustc already accepted).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = b.len();
    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i + 2;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: b[start..i].iter().collect(),
                });
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: start_line,
                    text: b[start..end].iter().collect(),
                });
            }
            '"' => {
                i = skip_string(&b, i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::from("\"\""),
                    line,
                });
            }
            'r' | 'b' if is_raw_or_byte_string(&b, i) => {
                let l0 = line;
                i = skip_raw_or_byte_string(&b, i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::from("\"\""),
                    line: l0,
                });
            }
            '\'' => {
                // Lifetime or char literal. A lifetime is `'ident` NOT
                // followed by a closing quote; `'a'`, `'\n'`, `'('` are
                // char literals.
                if i + 1 < n && (b[i + 1].is_alphabetic() || b[i + 1] == '_') {
                    // Find the end of the ident run.
                    let mut j = i + 1;
                    while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    if j < n && b[j] == '\'' && j == i + 2 {
                        // `'x'` — a one-char literal.
                        out.toks.push(Tok {
                            kind: TokKind::Literal,
                            text: String::from("''"),
                            line,
                        });
                        i = j + 1;
                    } else {
                        out.toks.push(Tok {
                            kind: TokKind::Lifetime,
                            text: b[i..j].iter().collect(),
                            line,
                        });
                        i = j;
                    }
                } else {
                    // Escaped or punctuation char literal: `'\n'`, `'('`.
                    let mut j = i + 1;
                    if j < n && b[j] == '\\' {
                        j += 2;
                        // `'\x7f'`, `'\u{...}'`: scan to the quote.
                        while j < n && b[j] != '\'' {
                            j += 1;
                        }
                    } else if j < n {
                        j += 1;
                    }
                    if j < n && b[j] == '\'' {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Literal,
                        text: String::from("''"),
                        line,
                    });
                    i = j;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                // `r#ident` raw identifiers come through the `r` branch
                // only when followed by a quote; `r#fn` lands here as
                // `r` — patch it up.
                let mut text: String = b[start..i].iter().collect();
                if text == "r"
                    && i + 1 < n
                    && b[i] == '#'
                    && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                {
                    i += 1;
                    let s2 = i;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    text = b[s2..i].iter().collect();
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                while i < n && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '.') {
                    // Stop a float scan from eating a method call:
                    // `1.max(2)` — only consume '.' when followed by a
                    // digit.
                    if b[i] == '.' && !(i + 1 < n && b[i + 1].is_ascii_digit()) {
                        break;
                    }
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::from("0"),
                    line,
                });
            }
            ':' if i + 1 < n && b[i + 1] == ':' => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: String::from("::"),
                    line,
                });
                i += 2;
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Whether position `i` (at `r` or `b`) starts a raw or byte string:
/// `r"`, `r#`, `b"`, `br"`, `br#`, `b'`.
fn is_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let n = b.len();
    match b[i] {
        'r' => {
            let mut j = i + 1;
            while j < n && b[j] == '#' {
                j += 1;
            }
            // `r#ident` (raw identifier) has exactly one '#' and then an
            // ident char, not a quote.
            j < n && b[j] == '"'
        }
        'b' => {
            if i + 1 >= n {
                return false;
            }
            match b[i + 1] {
                '"' | '\'' => true,
                'r' => {
                    let mut j = i + 2;
                    while j < n && b[j] == '#' {
                        j += 1;
                    }
                    j < n && b[j] == '"'
                }
                _ => false,
            }
        }
        _ => false,
    }
}

/// Skip a plain `"..."` string starting at the opening quote; returns
/// the index one past the closing quote.
fn skip_string(b: &[char], i: usize, line: &mut usize) -> usize {
    let n = b.len();
    let mut j = i + 1;
    while j < n {
        match b[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Skip `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, or `b'…'` starting at the
/// `r`/`b`; returns the index one past the closing delimiter.
fn skip_raw_or_byte_string(b: &[char], i: usize, line: &mut usize) -> usize {
    let n = b.len();
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j < n && b[j] == '\'' {
            // Byte char literal `b'x'` / `b'\n'`.
            j += 1;
            if j < n && b[j] == '\\' {
                j += 1;
            }
            while j < n && b[j] != '\'' {
                j += 1;
            }
            return (j + 1).min(n);
        }
    }
    let raw = j < n && b[j] == 'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < n && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < n && b[j] == '"');
    j += 1; // opening quote
    while j < n {
        match b[j] {
            '\\' if !raw => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => {
                // Need `hashes` trailing '#'s to close a raw string.
                let mut k = j + 1;
                let mut seen = 0usize;
                while k < n && b[k] == '#' && seen < hashes {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return k;
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}
