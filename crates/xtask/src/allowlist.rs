//! Shared allowlist format for the workspace audits.
//!
//! One `key = justification` entry per line; `#` starts a comment. Used
//! by `orderings.allow` (atomic-ordering audit), `determinism.allow`
//! (virtual-clock seam escapes), `hotpath.allow` (hot-path allocation
//! sites), and `lockorder.allow` (accepted lock-order edges). The parser
//! is stricter than the original `audit-orderings` one: duplicate keys
//! are reported (the old `BTreeMap::insert` silently kept the *last*
//! line, so a stale duplicate could shadow a reviewed justification).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// A parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// key -> justification (last occurrence wins, as before).
    pub entries: BTreeMap<String, String>,
    /// Keys that appeared more than once (line numbers of the repeats).
    pub duplicates: Vec<(String, usize)>,
    /// Raw text as read (for append-mode fixes).
    pub raw: String,
    /// Path it was loaded from (for fixes and diagnostics).
    pub path: String,
}

impl Allowlist {
    /// Load `path` (workspace-relative display name `name`); a missing
    /// file parses as an empty allowlist so new audits bootstrap cleanly
    /// with `--fix-allow`.
    pub fn load(root: &Path, name: &str) -> Allowlist {
        let raw = std::fs::read_to_string(root.join(name)).unwrap_or_default();
        let mut list = Allowlist::parse(&raw);
        list.path = name.to_string();
        list
    }

    /// Parse allowlist text.
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = BTreeMap::new();
        let mut duplicates = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some((key, just)) = line.split_once(" = ") {
                let key = key.trim().to_string();
                if entries.contains_key(&key) {
                    duplicates.push((key.clone(), idx + 1));
                }
                entries.insert(key, just.trim().to_string());
            }
        }
        Allowlist {
            entries,
            duplicates,
            raw: text.to_string(),
            path: String::new(),
        }
    }

    /// Justification for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(|s| s.as_str())
    }

    /// Append skeleton `key = TODO` entries for `keys` and write the
    /// file back. `TODO` justifications still fail the audit, so each
    /// must be filled in by hand before CI goes green.
    pub fn append_todos(&self, root: &Path, keys: &[String]) -> std::io::Result<()> {
        if keys.is_empty() {
            return Ok(());
        }
        let mut out = self.raw.clone();
        if !out.is_empty() && !out.ends_with('\n') {
            out.push('\n');
        }
        for key in keys {
            let _ = writeln!(out, "{key} = TODO");
        }
        std::fs::write(root.join(&self.path), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_comments_and_duplicates() {
        let a =
            Allowlist::parse("# header\nfoo::bar#1 = fine\n\nfoo::bar#1 = shadowed\nbaz#1 = ok\n");
        assert_eq!(a.entries.len(), 2);
        assert_eq!(a.get("foo::bar#1"), Some("shadowed"));
        assert_eq!(a.duplicates.len(), 1);
        assert_eq!(a.duplicates[0].0, "foo::bar#1");
    }
}
