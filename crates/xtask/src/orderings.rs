//! `cargo audit-orderings` — the atomic-ordering audit.
//!
//! Every `Ordering::*` argument at an atomic operation must carry a
//! one-line justification in `orderings.allow` at the workspace root.
//! The audit fails when a site in the code has no entry (most
//! importantly: a *new* `Relaxed` on a shared protocol field slips in
//! without review) and when an entry goes stale (the site it justified
//! is gone), so the allowlist is always exactly the set of orderings the
//! tree actually contains.
//!
//! Sites are keyed `file::item::Variant#n` — the enclosing `fn` (or
//! module path for file-level code) plus a per-(item, variant) ordinal —
//! rather than line numbers, so unrelated edits to a file do not
//! invalidate the allowlist. Run with `--fix` to append skeleton
//! entries (justification `TODO`) for any missing sites; `TODO`
//! justifications still fail the audit, so they must be filled in.
//!
//! The *line-based* site scanner below is deliberately kept as-is (and
//! distinct from the token-level model `cargo xtask lint` uses): its
//! keying convention is baked into 185+ reviewed `orderings.allow`
//! entries, and changing how `fn` names are recognized would invalidate
//! all of them. Shared pieces — the file walker, the allowlist parser,
//! diagnostic rendering — come from [`crate::walk`],
//! [`crate::allowlist`], and [`crate::diag`].

use crate::allowlist::Allowlist;
use crate::diag::{emit, Diagnostic};
use crate::walk::{rust_files, workspace_root};
use std::collections::BTreeMap;
use std::process::ExitCode;

const ALLOWLIST: &str = "orderings.allow";

/// One `Ordering::Variant` occurrence in the tree.
#[derive(Debug)]
struct Site {
    key: String,
    file: String,
    line: usize,
    snippet: String,
}

/// Run the audit; `fix` appends skeleton entries for missing sites.
pub fn audit(fix: bool) -> ExitCode {
    let root = workspace_root();
    let files = rust_files(&root);

    let mut sites: Vec<Site> = Vec::new();
    for rel in &files {
        let text =
            std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("read {rel}: {e}"));
        scan_file(rel, &text, &mut sites);
    }

    let allow = Allowlist::load(&root, ALLOWLIST);

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut missing: Vec<String> = Vec::new();
    for site in &sites {
        match allow.get(&site.key) {
            None => {
                diags.push(
                    Diagnostic::error("orderings", "unjustified `Ordering::` site")
                        .at(&site.file, site.line)
                        .snippet(&site.snippet)
                        .note(format!("key: {}", site.key)),
                );
                missing.push(site.key.clone());
            }
            Some("TODO") => {
                diags.push(
                    Diagnostic::error("orderings", "TODO justification")
                        .at(&site.file, site.line)
                        .note(format!("key: {}", site.key)),
                );
            }
            Some(_) => {}
        }
    }
    for key in allow.entries.keys() {
        if !sites.iter().any(|s| s.key == *key) {
            diags.push(Diagnostic::error(
                "orderings",
                format!("stale allowlist entry `{key}` (site no longer exists)"),
            ));
        }
    }
    for (key, line) in &allow.duplicates {
        diags.push(Diagnostic::error(
            "orderings",
            format!("duplicate allowlist entry `{key}` (line {line} shadows an earlier one)"),
        ));
    }

    if fix && !missing.is_empty() {
        allow
            .append_todos(&root, &missing)
            .expect("write allowlist");
        eprintln!(
            "audit-orderings: appended {} skeleton entries to {ALLOWLIST}",
            missing.len()
        );
    }

    let failures = emit(&diags, true);
    if failures > 0 {
        eprintln!(
            "audit-orderings: FAILED with {failures} problem(s) across {} sites in {} files \
             (allowlist: {ALLOWLIST})",
            sites.len(),
            files.len()
        );
        ExitCode::FAILURE
    } else {
        println!(
            "audit-orderings: ok — {} ordering sites in {} files, all justified",
            sites.len(),
            files.len()
        );
        ExitCode::SUCCESS
    }
}

/// Extract `Ordering::Variant` sites from one file, keying each by the
/// enclosing `fn` name and a per-(fn, variant) ordinal.
fn scan_file(rel: &str, text: &str, sites: &mut Vec<Site>) {
    // (fn-name, variant) -> next ordinal
    let mut ordinals: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut current_fn = String::from("(file)");
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if let Some(name) = fn_name(trimmed) {
            current_fn = name;
        }
        let mut rest = line;
        while let Some(pos) = rest.find("Ordering::") {
            let after = &rest[pos + "Ordering::".len()..];
            let variant: String = after
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            rest = &after[variant.len()..];
            if !matches!(
                variant.as_str(),
                "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"
            ) {
                continue; // `cmp::Ordering::Less` and friends
            }
            let n = ordinals
                .entry((current_fn.clone(), variant.clone()))
                .or_insert(0);
            *n += 1;
            sites.push(Site {
                key: format!("{rel}::{current_fn}::{variant}#{n}"),
                file: rel.to_string(),
                line: idx + 1,
                snippet: line.trim().to_string(),
            });
        }
    }
}

/// Pull a function name out of a (trimmed) line declaring one.
fn fn_name(trimmed: &str) -> Option<String> {
    let mut s = trimmed;
    for prefix in [
        "pub(crate) ",
        "pub(super) ",
        "pub ",
        "const ",
        "unsafe ",
        "async ",
    ] {
        while let Some(r) = s.strip_prefix(prefix) {
            s = r;
        }
    }
    let r = s.strip_prefix("fn ")?;
    let name: String = r
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}
