//! Structural model of one Rust source file, built on [`crate::lex`].
//!
//! This is deliberately *not* a grammar-complete parser: the linter
//! needs (a) which function encloses a given token, (b) which token
//! ranges are test-only (`#[cfg(test)]` items, `mod tests`), (c) where
//! `unsafe` blocks/fns/impls begin, and (d) brace structure for the
//! block-scoped lock analysis. Every approximation errs toward *seeing
//! more* (the rules over-report rather than silently skip; the
//! allowlists absorb deliberate exceptions).

use crate::lex::{lex, Comment, Tok, TokKind};

/// Span of one `fn` item (including nested fns; `fns` is ordered by
/// start token, so the *innermost* enclosing fn for a token is the last
/// span containing it).
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The declared name (`fn name`).
    pub name: String,
    /// Token index of the `fn` keyword.
    pub start: usize,
    /// Token index of the body's opening `{` (== `end` for bodyless
    /// declarations).
    pub body_start: usize,
    /// Token index of the body's closing `}` (exclusive range end).
    pub end: usize,
    /// 1-based line of the declaration.
    pub line: usize,
}

/// One `unsafe` occurrence.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Token index of the `unsafe` keyword.
    pub tok: usize,
    /// 1-based line.
    pub line: usize,
    /// What follows: `block`, `fn`, `impl`, or `trait`.
    pub kind: &'static str,
}

/// Fully analyzed source file.
pub struct SourceModel {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Raw source split into lines (for diagnostics and comment-window
    /// checks).
    pub lines: Vec<String>,
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
    /// All fn item spans, ordered by start token.
    pub fns: Vec<FnSpan>,
    /// Token ranges (start..end) that are test-only code.
    pub test_regions: Vec<(usize, usize)>,
    /// For each token index of a `{`, the index of its matching `}`.
    pub brace_match: Vec<Option<usize>>,
    /// `unsafe` occurrences.
    pub unsafes: Vec<UnsafeSite>,
}

impl SourceModel {
    /// Build the model for `src` at workspace-relative `path`.
    pub fn build(path: &str, src: &str) -> SourceModel {
        let lexed = lex(src);
        let toks = lexed.toks;
        let brace_match = match_braces(&toks);
        let fns = find_fns(&toks, &brace_match);
        let test_regions = find_test_regions(&toks, &brace_match);
        let unsafes = find_unsafes(&toks);
        SourceModel {
            path: path.to_string(),
            lines: src.lines().map(|l| l.to_string()).collect(),
            toks,
            comments: lexed.comments,
            fns,
            test_regions,
            brace_match,
            unsafes,
        }
    }

    /// Innermost fn enclosing token `i`, or `None` for file-level code.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .rfind(|f| f.body_start < f.end && f.start <= i && i < f.end)
    }

    /// Name of the enclosing fn for diagnostics/keys (`(file)` at file
    /// level, matching the audit-orderings convention).
    pub fn enclosing_fn_name(&self, i: usize) -> String {
        self.enclosing_fn(i)
            .map(|f| f.name.clone())
            .unwrap_or_else(|| "(file)".to_string())
    }

    /// Whether token `i` sits in test-only code.
    pub fn in_test_region(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| s <= i && i < e)
    }

    /// Source line `line` (1-based), or empty.
    pub fn line_text(&self, line: usize) -> &str {
        self.lines
            .get(line.saturating_sub(1))
            .map(|s| s.as_str())
            .unwrap_or("")
    }
}

/// Compute the matching `}` for every `{` (token indices). Unbalanced
/// input (can't happen for code rustc accepted) leaves `None`.
fn match_braces(toks: &[Tok]) -> Vec<Option<usize>> {
    let mut out = vec![None; toks.len()];
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => stack.push(i),
                "}" => {
                    if let Some(open) = stack.pop() {
                        out[open] = Some(i);
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Locate every `fn name … { … }` item. The body `{` is found by
/// scanning forward from the name, skipping balanced `(..)` groups; a
/// `;` first means a bodyless declaration (trait method, extern).
fn find_fns(toks: &[Tok], brace_match: &[Option<usize>]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue; // `fn(...)` pointer type
        }
        let name = name_tok.text.clone();
        // Scan for the body `{`, skipping parens (params) and bracket
        // groups; stop at `;` (no body) or `{`.
        let mut j = i + 2;
        let mut depth_paren = 0i32;
        let mut body_start = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth_paren += 1,
                    ")" | "]" => depth_paren -= 1,
                    ";" if depth_paren == 0 => break,
                    "{" if depth_paren == 0 => {
                        body_start = Some(j);
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(bs) = body_start else {
            continue;
        };
        let end = brace_match[bs].unwrap_or(toks.len().saturating_sub(1));
        out.push(FnSpan {
            name,
            start: i,
            body_start: bs,
            end,
            line: toks[i].line,
        });
    }
    out
}

/// Token ranges under `#[cfg(test)]`-style attributes or inside a
/// `mod tests` item. An attribute whose argument tokens contain both
/// `cfg` and `test` marks the *next item's* block (or the item up to its
/// `;`). This over-approximates `#[cfg(all(test, not(loom)))]` and
/// friends correctly: all of them are test-only.
fn find_test_regions(toks: &[Tok], brace_match: &[Option<usize>]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        // `mod tests {` — conventional inline test module.
        if t.kind == TokKind::Ident
            && t.text == "mod"
            && toks.get(i + 1).is_some_and(|n| n.text == "tests")
            && toks.get(i + 2).is_some_and(|b| b.text == "{")
        {
            if let Some(end) = brace_match[i + 2] {
                out.push((i, end + 1));
                i = end + 1;
                continue;
            }
        }
        // `#[cfg(…test…)]` / `#[test]` / `#[bench]` attribute.
        if t.text == "#" && toks.get(i + 1).is_some_and(|n| n.text == "[") {
            // Find the closing `]` of the attribute.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut has_cfg_test = false;
            let mut is_test_attr = false;
            if toks
                .get(i + 2)
                .is_some_and(|n| n.text == "test" || n.text == "bench")
            {
                is_test_attr = true;
            }
            let mut saw_cfg = false;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "cfg" | "cfg_attr" => saw_cfg = true,
                    "test" | "miri" if saw_cfg => has_cfg_test = true,
                    _ => {}
                }
                j += 1;
            }
            if has_cfg_test || is_test_attr {
                // Mark the following item: up to the end of its first
                // balanced brace block, or its `;` for bodyless items.
                let mut k = j;
                let mut pdepth = 0i32;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "(" | "[" => pdepth += 1,
                        ")" | "]" => pdepth -= 1,
                        ";" if pdepth == 0 => {
                            out.push((i, k + 1));
                            break;
                        }
                        "{" if pdepth == 0 => {
                            let end = brace_match[k].unwrap_or(toks.len() - 1);
                            out.push((i, end + 1));
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

/// Locate every `unsafe` keyword and classify what it introduces.
fn find_unsafes(toks: &[Tok]) -> Vec<UnsafeSite> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.kind == TokKind::Ident && t.text == "unsafe") {
            continue;
        }
        let kind = match toks.get(i + 1).map(|n| n.text.as_str()) {
            Some("{") => "block",
            Some("impl") => "impl",
            Some("trait") => "trait",
            Some("extern") => "extern",
            // `unsafe fn`, `unsafe extern "C" fn`, plus qualifier runs
            // like `pub const unsafe fn` put `fn` right after.
            Some("fn") => "fn",
            _ => continue, // `unsafe` in a type position or doc text
        };
        out.push(UnsafeSite {
            tok: i,
            line: t.line,
            kind,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
/// Doc.
pub fn outer(x: usize) -> usize {
    let s = "fn not_a_fn() {";
    inner(x)
}

fn inner(x: usize) -> usize { x + 1 }

#[cfg(test)]
mod tests {
    fn helper() {}
}
"#;

    #[test]
    fn fn_spans_and_test_regions() {
        let m = SourceModel::build("t.rs", SRC);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner", "helper"]);
        let helper = m.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(m.in_test_region(helper.start));
        let outer = m.fns.iter().find(|f| f.name == "outer").unwrap();
        assert!(!m.in_test_region(outer.start));
        // The string literal must not have produced a phantom fn.
        assert_eq!(m.fns.len(), 3);
    }

    #[test]
    fn unsafe_sites_classified() {
        let m = SourceModel::build(
            "u.rs",
            "unsafe fn f() {}\nfn g() { unsafe { } }\nunsafe impl Send for X {}\n",
        );
        let kinds: Vec<&str> = m.unsafes.iter().map(|u| u.kind).collect();
        assert_eq!(kinds, ["fn", "block", "impl"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let m = SourceModel::build("l.rs", "fn f<'a>(x: &'a str) -> char { 'a' }");
        assert_eq!(m.fns.len(), 1);
        let lifetimes = m
            .toks
            .iter()
            .filter(|t| t.kind == crate::lex::TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
    }
}
