//! Workspace maintenance tasks, invoked through cargo aliases (see
//! `.cargo/config.toml`).
//!
//! # `cargo audit-orderings`
//!
//! The workspace's atomic-ordering lint policy: every `Ordering::*`
//! argument at an atomic operation must carry a one-line justification
//! in `orderings.allow` at the workspace root. The audit fails when a
//! site in the code has no entry (most importantly: a *new* `Relaxed`
//! on a shared protocol field slips in without review) and when an
//! entry goes stale (the site it justified is gone), so the allowlist
//! is always exactly the set of orderings the tree actually contains.
//!
//! Sites are keyed `file::item::Variant#n` — the enclosing `fn` (or
//! module path for file-level code) plus a per-(item, variant) ordinal —
//! rather than line numbers, so unrelated edits to a file do not
//! invalidate the allowlist. Run with `--fix` to append skeleton
//! entries (justification `TODO`) for any missing sites; `TODO`
//! justifications still fail the audit, so they must be filled in.
//!
//! # `cargo loom`
//!
//! Runs every loom model-checking suite in the workspace (there is one
//! per crate with a lock-free protocol: `flock-core`'s TCQ and
//! `flock-fabric`'s completion-queue ring) under `RUSTFLAGS="--cfg
//! loom"`. A plain `cargo test --test <t>` can't span packages, so the
//! suite list lives here. Extra arguments are forwarded to every test
//! binary (e.g. `cargo loom handoff` to filter).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directories scanned for `Ordering::` sites, relative to the
/// workspace root. `shims/` is deliberately excluded: those crates
/// reimplement external dependencies' documented APIs and are not part
/// of the Flock protocol surface (the loom shim, for one, is all
/// `SeqCst` by design).
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Paths (relative, prefix match) excluded from the scan.
const EXCLUDE: &[&str] = &["crates/xtask"];

const ALLOWLIST: &str = "orderings.allow";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!("usage: cargo xtask <audit-orderings> [--fix]");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "audit-orderings" => audit_orderings(rest.iter().any(|a| a == "--fix")),
        "loom" => loom(rest),
        other => {
            eprintln!("xtask: unknown task `{other}` (expected `audit-orderings` or `loom`)");
            ExitCode::FAILURE
        }
    }
}

/// Every loom suite in the workspace: (package, test target).
const LOOM_SUITES: &[(&str, &str)] = &[
    ("flock-core", "loom_tcq"),
    ("flock-fabric", "loom_cq"),
];

/// Run all loom model-checking suites with `--cfg loom`, forwarding
/// `extra` to each test binary. Respects an existing `RUSTFLAGS` (so
/// `LOOM_MAX_PREEMPTIONS`-style knobs and extra cfgs compose).
fn loom(extra: &[String]) -> ExitCode {
    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.split_whitespace().any(|f| f == "--cfg=loom")
        && !rustflags.contains("--cfg loom")
    {
        if !rustflags.is_empty() {
            rustflags.push(' ');
        }
        rustflags.push_str("--cfg loom");
    }
    for (pkg, target) in LOOM_SUITES {
        eprintln!("loom: {pkg} --test {target}");
        let status = std::process::Command::new(env!("CARGO"))
            .current_dir(workspace_root())
            .env("RUSTFLAGS", &rustflags)
            .args(["test", "-p", pkg, "--test", target, "--release", "--"])
            .args(extra)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("loom: {pkg} --test {target} FAILED ({s})");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("loom: failed to spawn cargo: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// One `Ordering::Variant` occurrence in the tree.
#[derive(Debug)]
struct Site {
    key: String,
    file: String,
    line: usize,
    snippet: String,
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask; CARGO_MANIFEST_DIR is compiled
    // in, so the audit works from any cwd inside the workspace.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask manifest has a workspace root two levels up")
        .to_path_buf()
}

fn audit_orderings(fix: bool) -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        collect_rs_files(&root.join(scan), &root, &mut files);
    }
    files.sort();

    let mut sites: Vec<Site> = Vec::new();
    for rel in &files {
        let text =
            std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("read {rel}: {e}"));
        scan_file(rel, &text, &mut sites);
    }

    let allow_path = root.join(ALLOWLIST);
    let allow_text = std::fs::read_to_string(&allow_path).unwrap_or_default();
    let allow = parse_allowlist(&allow_text);

    let mut failures = 0usize;
    let mut missing: Vec<&Site> = Vec::new();
    for site in &sites {
        match allow.get(site.key.as_str()) {
            None => {
                eprintln!(
                    "audit-orderings: UNJUSTIFIED {} ({}:{})\n    {}",
                    site.key, site.file, site.line, site.snippet
                );
                missing.push(site);
                failures += 1;
            }
            Some(just) if just.trim() == "TODO" => {
                eprintln!(
                    "audit-orderings: TODO justification for {} ({}:{})",
                    site.key, site.file, site.line
                );
                failures += 1;
            }
            Some(_) => {}
        }
    }
    for key in allow.keys() {
        if !sites.iter().any(|s| s.key == *key) {
            eprintln!("audit-orderings: STALE allowlist entry {key} (site no longer exists)");
            failures += 1;
        }
    }

    if fix && !missing.is_empty() {
        let mut appended = String::new();
        for site in &missing {
            let _ = writeln!(appended, "{} = TODO", site.key);
        }
        let mut out = allow_text;
        if !out.is_empty() && !out.ends_with('\n') {
            out.push('\n');
        }
        out.push_str(&appended);
        std::fs::write(&allow_path, out).expect("write allowlist");
        eprintln!(
            "audit-orderings: appended {} skeleton entries to {ALLOWLIST}",
            missing.len()
        );
    }

    if failures > 0 {
        eprintln!(
            "audit-orderings: FAILED with {failures} problem(s) across {} sites in {} files \
             (allowlist: {ALLOWLIST})",
            sites.len(),
            files.len()
        );
        ExitCode::FAILURE
    } else {
        println!(
            "audit-orderings: ok — {} ordering sites in {} files, all justified",
            sites.len(),
            files.len()
        );
        ExitCode::SUCCESS
    }
}

fn collect_rs_files(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .expect("scanned path under root")
            .to_string_lossy()
            .replace('\\', "/");
        if EXCLUDE.iter().any(|e| rel.starts_with(e)) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(&path, root, out);
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
}

/// Extract `Ordering::Variant` sites from one file, keying each by the
/// enclosing `fn` name and a per-(fn, variant) ordinal.
fn scan_file(rel: &str, text: &str, sites: &mut Vec<Site>) {
    // (fn-name, variant) -> next ordinal
    let mut ordinals: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut current_fn = String::from("(file)");
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if let Some(name) = fn_name(trimmed) {
            current_fn = name;
        }
        let mut rest = line;
        while let Some(pos) = rest.find("Ordering::") {
            let after = &rest[pos + "Ordering::".len()..];
            let variant: String = after
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            rest = &after[variant.len()..];
            if !matches!(
                variant.as_str(),
                "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"
            ) {
                continue; // `cmp::Ordering::Less` and friends
            }
            let n = ordinals
                .entry((current_fn.clone(), variant.clone()))
                .or_insert(0);
            *n += 1;
            sites.push(Site {
                key: format!("{rel}::{current_fn}::{variant}#{n}"),
                file: rel.to_string(),
                line: idx + 1,
                snippet: line.trim().to_string(),
            });
        }
    }
}

/// Pull a function name out of a (trimmed) line declaring one.
fn fn_name(trimmed: &str) -> Option<String> {
    let mut s = trimmed;
    for prefix in [
        "pub(crate) ",
        "pub(super) ",
        "pub ",
        "const ",
        "unsafe ",
        "async ",
    ] {
        while let Some(r) = s.strip_prefix(prefix) {
            s = r;
        }
    }
    let r = s.strip_prefix("fn ")?;
    let name: String = r
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Parse `key = justification` lines; `#` starts a comment.
fn parse_allowlist(text: &str) -> BTreeMap<&str, &str> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((key, just)) = line.split_once(" = ") {
            map.insert(key.trim(), just.trim());
        }
    }
    map
}
