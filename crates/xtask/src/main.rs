//! The `xtask` binary: thin dispatcher over the library modules (see
//! `lib.rs` for the task inventory and `.cargo/config.toml` for the
//! cargo aliases that invoke them).

use std::process::ExitCode;
use xtask::lint::LintOpts;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!("usage: cargo xtask <lint|audit-orderings|loom> [args]");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "lint" => match LintOpts::parse(rest) {
            Ok(opts) => xtask::lint::run(&opts),
            Err(e) => {
                eprintln!("xtask lint: {e}");
                eprintln!("usage: cargo xtask lint [-D] [--fix-allow] [--rule <name>]");
                ExitCode::FAILURE
            }
        },
        "audit-orderings" => xtask::orderings::audit(rest.iter().any(|a| a == "--fix")),
        "loom" => xtask::loom_suites(rest),
        other => {
            eprintln!(
                "xtask: unknown task `{other}` (expected `lint`, `audit-orderings`, or `loom`)"
            );
            ExitCode::FAILURE
        }
    }
}
