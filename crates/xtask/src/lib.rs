//! Workspace maintenance and static-analysis tasks, invoked through
//! cargo aliases (see `.cargo/config.toml`).
//!
//! The library half exists so the linter's analysis passes
//! ([`lex`] → [`parse`] → [`lint`]) are unit-testable against fixture
//! snippets (`tests/lint_fixtures.rs`); the `xtask` binary is a thin
//! dispatcher over these modules.
//!
//! * [`lint`] — `cargo xtask lint`: the four-rule invariant checker
//!   (determinism seam, lock-order graph, SAFETY comments, hot-path
//!   allocations).
//! * [`orderings`] — `cargo audit-orderings`: every `Ordering::*` site
//!   must carry a justification in `orderings.allow`.
//! * [`loom_suites`] — `cargo loom`: run every loom model-checking
//!   suite under `--cfg loom`.

pub mod allowlist;
pub mod diag;
pub mod lex;
pub mod lint;
pub mod orderings;
pub mod parse;
pub mod walk;

use std::process::ExitCode;

/// Every loom suite in the workspace: (package, test target).
const LOOM_SUITES: &[(&str, &str)] = &[
    ("flock-core", "loom_tcq"),
    ("flock-core", "loom_alock"),
    ("flock-fabric", "loom_cq"),
];

/// Run all loom model-checking suites with `--cfg loom`, forwarding
/// `extra` to each test binary. Respects an existing `RUSTFLAGS` (so
/// `LOOM_MAX_PREEMPTIONS`-style knobs and extra cfgs compose).
pub fn loom_suites(extra: &[String]) -> ExitCode {
    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.split_whitespace().any(|f| f == "--cfg=loom") && !rustflags.contains("--cfg loom")
    {
        if !rustflags.is_empty() {
            rustflags.push(' ');
        }
        rustflags.push_str("--cfg loom");
    }
    for (pkg, target) in LOOM_SUITES {
        eprintln!("loom: {pkg} --test {target}");
        let status = std::process::Command::new(env!("CARGO"))
            .current_dir(walk::workspace_root())
            .env("RUSTFLAGS", &rustflags)
            .args(["test", "-p", pkg, "--test", target, "--release", "--"])
            .args(extra)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("loom: {pkg} --test {target} FAILED ({s})");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("loom: failed to spawn cargo: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
