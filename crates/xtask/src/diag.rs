//! Rustc-style diagnostics for the workspace audits.
//!
//! One render path shared by `cargo xtask lint` and
//! `cargo audit-orderings`, so every tool in the crate reports findings
//! the same way: a severity + rule header, a `-->` file:line locator, the
//! offending source line, and optional notes (the allowlist key to
//! justify, the reachability chain, …).

use std::fmt::Write as _;

/// Finding severity. `Error` always fails the run; `Warn` fails only
/// under `-D` (deny-warnings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Warn,
    Error,
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub severity: Severity,
    /// Rule identifier shown in brackets (`determinism`, `lock-order`,
    /// `safety`, `hot-alloc`, `orderings`).
    pub rule: &'static str,
    pub message: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line (0 = whole-file / cross-file finding).
    pub line: usize,
    /// The offending source line, trimmed (empty to omit).
    pub snippet: String,
    /// Extra `= note:` lines (allowlist key, call chain, fix hint).
    pub notes: Vec<String>,
}

impl Diagnostic {
    pub fn error(rule: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            rule,
            message: message.into(),
            file: String::new(),
            line: 0,
            snippet: String::new(),
            notes: Vec::new(),
        }
    }

    pub fn warn(rule: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warn,
            ..Diagnostic::error(rule, message)
        }
    }

    pub fn at(mut self, file: impl Into<String>, line: usize) -> Diagnostic {
        self.file = file.into();
        self.line = line;
        self
    }

    pub fn snippet(mut self, s: impl Into<String>) -> Diagnostic {
        self.snippet = s.into();
        self
    }

    pub fn note(mut self, n: impl Into<String>) -> Diagnostic {
        self.notes.push(n.into());
        self
    }

    /// Render in rustc style.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let sev = match self.severity {
            Severity::Warn => "warning",
            Severity::Error => "error",
        };
        let _ = writeln!(out, "{sev}[{}]: {}", self.rule, self.message);
        if !self.file.is_empty() {
            if self.line > 0 {
                let _ = writeln!(out, "  --> {}:{}", self.file, self.line);
            } else {
                let _ = writeln!(out, "  --> {}", self.file);
            }
        }
        if !self.snippet.is_empty() {
            let _ = writeln!(out, "   |     {}", self.snippet.trim());
        }
        for n in &self.notes {
            let _ = writeln!(out, "   = note: {n}");
        }
        out
    }
}

/// Print `diags`; returns the number of findings that fail the run
/// (`Error` always, `Warn` too when `deny_warnings`).
pub fn emit(diags: &[Diagnostic], deny_warnings: bool) -> usize {
    for d in diags {
        eprint!("{}", d.render());
    }
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error || deny_warnings)
        .count()
}
