//! Rule `determinism`: no time/scheduler/entropy call may bypass the
//! `flock_sync::clock` seam.
//!
//! PR 5 made whole multi-node runs a pure function of their
//! configuration by routing every time and scheduling decision through
//! `flock_sync::clock`. One stray `Instant::now()` silently re-couples a
//! "deterministic" run to the host, and nothing in the type system stops
//! it — so this rule does: any of the patterns below outside
//! `crates/sync/src/clock.rs` (the seam's own threaded arm) is an error
//! unless justified in `determinism.allow`.
//!
//! Test/bench/example scaffolding is exempt: it drives the system from
//! *outside* the lab on real OS threads by design (spawning the client
//! threads that then `clock::install` themselves, timing wall-clock
//! smoke runs, …).

use crate::allowlist::Allowlist;
use crate::diag::Diagnostic;
use crate::lex::TokKind;
use crate::parse::SourceModel;
use std::collections::BTreeMap;

/// The one file allowed to touch `std` time/thread primitives: the seam
/// itself.
const SEAM: &str = "crates/sync/src/clock.rs";

/// `prefix :: name` patterns that escape the seam.
const QUALIFIED: &[(&str, &str)] = &[
    ("Instant", "now"),
    ("SystemTime", "now"),
    ("thread", "sleep"),
    ("thread", "spawn"),
    ("thread", "park"),
    ("thread", "park_timeout"),
    ("thread", "yield_now"),
    ("thread", "Builder"),
    ("rand", "random"),
];

/// Bare identifiers that escape the seam wherever they appear (RNG
/// seeding from host entropy).
const BARE: &[&str] = &["from_entropy", "thread_rng", "OsRng"];

/// A matched seam escape, keyed like the ordering audit:
/// `file::fn::Pattern#n`.
pub struct Escape {
    pub key: String,
    pub file: String,
    pub line: usize,
    pub pattern: String,
}

/// Scan one file model for seam escapes (test regions skipped).
pub fn scan(model: &SourceModel) -> Vec<Escape> {
    if model.path == SEAM {
        return Vec::new();
    }
    let mut ordinals: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut out = Vec::new();
    let toks = &model.toks;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let matched: Option<String> = QUALIFIED
            .iter()
            .find(|(q, name)| {
                toks[i].text == *q
                    && toks.get(i + 1).is_some_and(|t| t.text == "::")
                    && toks.get(i + 2).is_some_and(|t| t.text == *name)
            })
            .map(|(q, name)| format!("{q}::{name}"))
            .or_else(|| {
                BARE.iter()
                    .find(|b| toks[i].text == **b)
                    .map(|b| b.to_string())
            });
        let Some(pattern) = matched else {
            continue;
        };
        if model.in_test_region(i) {
            continue;
        }
        let func = model.enclosing_fn_name(i);
        let n = ordinals.entry((func.clone(), pattern.clone())).or_insert(0);
        *n += 1;
        out.push(Escape {
            key: format!("{}::{}::{}#{}", model.path, func, pattern, n),
            file: model.path.clone(),
            line: toks[i].line,
            pattern,
        });
    }
    out
}

/// Check `escapes` against the allowlist, producing diagnostics and the
/// keys that would need new entries.
pub fn check(models: &[&SourceModel], allow: &Allowlist) -> (Vec<Diagnostic>, Vec<String>) {
    let mut diags = Vec::new();
    let mut missing = Vec::new();
    let mut all_keys = Vec::new();
    for model in models {
        for esc in scan(model) {
            all_keys.push(esc.key.clone());
            match allow.get(&esc.key) {
                None => {
                    diags.push(
                        Diagnostic::error(
                            "determinism",
                            format!("`{}` escapes the virtual-clock seam", esc.pattern),
                        )
                        .at(&esc.file, esc.line)
                        .snippet(model.line_text(esc.line))
                        .note(format!("key: {}", esc.key))
                        .note(
                            "route through flock_sync::clock (now_ns/deadline/sleep/spawn) \
                             or justify in determinism.allow",
                        ),
                    );
                    missing.push(esc.key);
                }
                Some("TODO") => {
                    diags.push(
                        Diagnostic::error(
                            "determinism",
                            format!("TODO justification for `{}`", esc.pattern),
                        )
                        .at(&esc.file, esc.line)
                        .note(format!("key: {}", esc.key)),
                    );
                }
                Some(_) => {}
            }
        }
    }
    // Stale entries: the site a justification covered is gone.
    for key in allow.entries.keys() {
        if !all_keys.iter().any(|k| k == key) {
            diags.push(Diagnostic::warn(
                "determinism",
                format!("stale determinism.allow entry `{key}` (site no longer exists)"),
            ));
        }
    }
    for (key, line) in &allow.duplicates {
        diags.push(Diagnostic::warn(
            "determinism",
            format!(
                "duplicate determinism.allow entry `{key}` (line {line} shadows an earlier one)"
            ),
        ));
    }
    (diags, missing)
}
