//! `cargo xtask lint` — the workspace invariant checker.
//!
//! Four rules over one parsed-source pass (see the rule modules for the
//! precise semantics and over-approximation policies):
//!
//! * [`determinism`] — time/scheduler/entropy calls outside the
//!   `flock_sync::clock` seam (allowlist: `determinism.allow`);
//! * [`lock_order`] — cycles in the cross-crate Mutex/RwLock
//!   acquisition graph (allowlist: `lockorder.allow`);
//! * [`safety`] — `unsafe` without a `// SAFETY:` justification
//!   (no allowlist: write the comment);
//! * [`hot_alloc`] — allocations reachable from the declared hot-path
//!   entry points (allowlist: `hotpath.allow`).
//!
//! `--fix-allow` appends `key = TODO` skeletons for missing determinism
//! and hot-alloc entries (TODO still fails, so each needs a real
//! justification). `-D` promotes warnings (stale or duplicate allowlist
//! entries) to failures — CI runs at `-D`.

pub mod determinism;
pub mod hot_alloc;
pub mod lock_order;
pub mod safety;

use crate::allowlist::Allowlist;
use crate::diag::{emit, Diagnostic};
use crate::parse::SourceModel;
use crate::walk::{is_test_path, rust_files, workspace_root};
use std::process::ExitCode;

/// Allowlist file names at the workspace root.
pub const DETERMINISM_ALLOW: &str = "determinism.allow";
pub const HOTPATH_ALLOW: &str = "hotpath.allow";
pub const LOCKORDER_ALLOW: &str = "lockorder.allow";

/// Parsed CLI for `xtask lint`.
#[derive(Debug, Default)]
pub struct LintOpts {
    /// Treat warnings as errors (`-D`).
    pub deny_warnings: bool,
    /// Append skeleton allowlist entries for missing sites.
    pub fix_allow: bool,
    /// Run only the named rule (all by default).
    pub only: Option<String>,
}

impl LintOpts {
    pub fn parse(args: &[String]) -> Result<LintOpts, String> {
        let mut opts = LintOpts::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "-D" | "--deny-warnings" => opts.deny_warnings = true,
                "--fix-allow" => opts.fix_allow = true,
                "--rule" => {
                    let r = it.next().ok_or("--rule needs an argument")?;
                    match r.as_str() {
                        "determinism" | "lock-order" | "safety" | "hot-alloc" => {
                            opts.only = Some(r.clone());
                        }
                        other => return Err(format!("unknown rule `{other}`")),
                    }
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(opts)
    }
}

/// Run the linter over the workspace.
pub fn run(opts: &LintOpts) -> ExitCode {
    let root = workspace_root();
    let files = rust_files(&root);
    let mut models = Vec::new();
    for rel in &files {
        let text =
            std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("read {rel}: {e}"));
        models.push(SourceModel::build(rel, &text));
    }
    let all: Vec<&SourceModel> = models.iter().collect();
    // Library code only: determinism and hot-alloc guard what can run
    // under a VirtualLab; lock-order skips test scaffolding to keep the
    // name-merged graph about production locks.
    let lib: Vec<&SourceModel> = models.iter().filter(|m| !is_test_path(&m.path)).collect();

    let enabled = |rule: &str| opts.only.as_deref().is_none_or(|o| o == rule);
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut counts: Vec<(&str, usize)> = Vec::new();

    if enabled("determinism") {
        let allow = Allowlist::load(&root, DETERMINISM_ALLOW);
        let (d, missing) = determinism::check(&lib, &allow);
        if opts.fix_allow {
            allow
                .append_todos(&root, &missing)
                .expect("write determinism.allow");
            if !missing.is_empty() {
                eprintln!(
                    "lint: appended {} skeleton entries to {DETERMINISM_ALLOW}",
                    missing.len()
                );
            }
        }
        counts.push(("determinism", d.len()));
        diags.extend(d);
    }
    if enabled("lock-order") {
        let allow = Allowlist::load(&root, LOCKORDER_ALLOW);
        let d = lock_order::check(&lib, &allow);
        counts.push(("lock-order", d.len()));
        diags.extend(d);
    }
    if enabled("safety") {
        let d = safety::check(&all);
        counts.push(("safety", d.len()));
        diags.extend(d);
    }
    if enabled("hot-alloc") {
        let allow = Allowlist::load(&root, HOTPATH_ALLOW);
        let (d, missing) = hot_alloc::check(&lib, &allow);
        if opts.fix_allow {
            allow
                .append_todos(&root, &missing)
                .expect("write hotpath.allow");
            if !missing.is_empty() {
                eprintln!(
                    "lint: appended {} skeleton entries to {HOTPATH_ALLOW}",
                    missing.len()
                );
            }
        }
        counts.push(("hot-alloc", d.len()));
        diags.extend(d);
    }

    let failures = emit(&diags, opts.deny_warnings);
    if failures > 0 {
        eprintln!(
            "lint: FAILED with {failures} problem(s) across {} files",
            files.len()
        );
        ExitCode::FAILURE
    } else {
        let summary: Vec<String> = counts
            .iter()
            .map(|(r, n)| format!("{r}: {}", if *n == 0 { "ok" } else { "warned" }))
            .collect();
        println!("lint: ok — {} files; {}", files.len(), summary.join(", "));
        ExitCode::SUCCESS
    }
}
