//! Rule `lock-order`: the cross-crate lock acquisition graph must be
//! acyclic.
//!
//! Two tasks that take the same pair of locks in opposite orders can
//! deadlock; at workspace scale nobody holds the global order in their
//! head, so this rule extracts it. The analysis:
//!
//! 1. **Lock inventory** — every field/static/binding declared with a
//!    `Mutex<…>` or `RwLock<…>` type (or initialized via `Mutex::new`)
//!    contributes a lock *name*. Names are merged across crates: two
//!    fields both called `inner` become one graph node. That merging is
//!    the rule's deliberate over-approximation — it can only *add*
//!    edges, never hide one (see DESIGN.md §5f for the false-positive
//!    policy).
//! 2. **Acquisitions** — `recv.lock()`, `recv.read()`, `recv.write()`
//!    with *zero arguments* whose receiver's final identifier is a known
//!    lock name. (The zero-argument requirement keeps `MemoryRegion::
//!    write(offset, data)` and friends out.) `try_*` variants are
//!    ignored: a failed try-lock returns instead of blocking, so it
//!    cannot complete a deadlock cycle.
//! 3. **Held-set tracking** — a block-scoped walk of each fn body:
//!    `let g = x.lock()` holds `x` until `drop(g)` or the end of the
//!    enclosing block; an unbound `x.lock().f()` holds `x` to the end of
//!    the statement. Acquiring `B` while `A` is held adds edge `A → B`.
//! 4. **Interprocedural closure** — calling `g()` while holding `A`
//!    adds `A → L` for every lock `L` in `g`'s may-acquire set (computed
//!    to a fixpoint over a name-resolved call graph: same-crate
//!    candidates first, workspace-wide otherwise).
//! 5. **Cycle detection** — any strongly connected component with more
//!    than one lock (self-edges are excluded: re-acquiring the same
//!    name is usually a *different instance* — per-QP lanes — and a
//!    scope-insensitive self-edge would flag every drop-then-relock) is
//!    reported with its cycle path and one witness site per edge.
//!
//! Known-benign edges can be accepted in `lockorder.allow` with key
//! `edge::<A>-><B>`.

use crate::allowlist::Allowlist;
use crate::diag::Diagnostic;
use crate::lex::TokKind;
use crate::parse::SourceModel;
use crate::walk::crate_of;
use std::collections::{BTreeMap, BTreeSet};

/// Method names whose zero-arg calls acquire a lock.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Callee names never resolved through the call graph: trait plumbing
/// and container-shaped accessors implemented all over the workspace
/// that would wire unrelated code together by name (`.len()` on a `Vec`
/// must not resolve to `CompletionQueue::len`). A lock-taking helper
/// should not hide behind one of these names; DESIGN.md §5f records the
/// under-approximation.
const CALL_BLOCKLIST: &[&str] = &[
    "drop", "fmt", "clone", "default", "eq", "hash", "from", "len", "is_empty", "clear", "get",
    "get_mut", "next", "min", "max", "new", "find", "count", "contains",
];

/// One call site inside a fn body.
#[derive(Debug, Clone)]
struct Call {
    callee: String,
    line: usize,
    /// Locks held at the call.
    held: Vec<String>,
}

/// Per-function facts.
#[derive(Debug, Default)]
struct FnFacts {
    /// Edges (A held while acquiring B) with a witness line.
    edges: Vec<(String, String, usize)>,
    /// Locks this fn acquires directly.
    acquires: BTreeSet<String>,
    /// Calls made (with held-set context).
    calls: Vec<Call>,
}

/// A graph edge with one witness site.
#[derive(Debug, Clone)]
pub struct Edge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: usize,
    pub via: String,
}

/// Collect every declared lock name in `models`.
pub fn lock_names(models: &[&SourceModel]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for model in models {
        let toks = &model.toks;
        for i in 0..toks.len() {
            if toks[i].kind != TokKind::Ident
                || (toks[i].text != "Mutex" && toks[i].text != "RwLock")
            {
                continue;
            }
            // Walk back over path qualifiers (`parking_lot ::` etc.).
            let mut j = i;
            while j >= 2 && toks[j - 1].text == "::" && toks[j - 2].kind == TokKind::Ident {
                j -= 2;
            }
            // `name : [path::]Mutex<…>` — field, static, or struct-literal
            // init (`lane: Mutex::new(..)`).
            if j >= 2 && toks[j - 1].text == ":" && toks[j - 2].kind == TokKind::Ident {
                names.insert(toks[j - 2].text.clone());
                continue;
            }
            // `let name = [path::]Mutex::new(..)`.
            if j >= 3
                && toks[j - 1].text == "="
                && toks[j - 2].kind == TokKind::Ident
                && (toks[j - 3].text == "let" || toks[j - 3].text == "mut")
            {
                names.insert(toks[j - 2].text.clone());
            }
        }
    }
    names
}

/// Analyze one fn body: block-scoped held-set walk producing intra-fn
/// edges, the direct-acquire set, and call sites with held context.
fn analyze_fn(model: &SourceModel, body: (usize, usize), locks: &BTreeSet<String>) -> FnFacts {
    let toks = &model.toks;
    let mut facts = FnFacts::default();
    // Scope stack: each open block carries (bound, unbound) held locks.
    struct Scope {
        bound: Vec<(String, String)>, // (binding name, lock)
        unbound: Vec<String>,
    }
    let mut scopes: Vec<Scope> = vec![Scope {
        bound: Vec::new(),
        unbound: Vec::new(),
    }];
    let held = |scopes: &[Scope]| -> Vec<String> {
        scopes
            .iter()
            .flat_map(|s| {
                s.bound
                    .iter()
                    .map(|(_, l)| l.clone())
                    .chain(s.unbound.iter().cloned())
            })
            .collect()
    };
    let (start, end) = body;
    let mut i = start + 1;
    while i < end {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => scopes.push(Scope {
                bound: Vec::new(),
                unbound: Vec::new(),
            }),
            (TokKind::Punct, "}") if scopes.len() > 1 => {
                scopes.pop();
            }
            (TokKind::Punct, ";") => {
                // Statement end releases unbound guard temporaries in
                // the current scope.
                if let Some(s) = scopes.last_mut() {
                    s.unbound.clear();
                }
            }
            // `drop ( name )` releases a bound guard.
            (TokKind::Ident, "drop")
                if toks.get(i + 1).is_some_and(|t| t.text == "(")
                    && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
                    && toks.get(i + 3).is_some_and(|t| t.text == ")") =>
            {
                let name = toks[i + 2].text.clone();
                for s in scopes.iter_mut() {
                    s.bound.retain(|(b, _)| *b != name);
                }
                i += 4;
                continue;
            }
            // `. lock ( )` / `. read ( )` / `. write ( )` acquisition.
            (TokKind::Ident, m)
                if ACQUIRE_METHODS.contains(&m)
                    && i >= 2
                    && toks[i - 1].text == "."
                    && toks[i - 2].kind == TokKind::Ident
                    && toks.get(i + 1).is_some_and(|t| t.text == "(")
                    && toks.get(i + 2).is_some_and(|t| t.text == ")")
                    && locks.contains(&toks[i - 2].text) =>
            {
                let lock = toks[i - 2].text.clone();
                for h in held(&scopes) {
                    if h != lock {
                        facts.edges.push((h, lock.clone(), t.line));
                    }
                }
                facts.acquires.insert(lock.clone());
                // A chained guard — `m.lock().redistribute()` — is a
                // temporary dropped at the end of the statement, even
                // under `let r = …`: the binding captures the method's
                // result, not the guard.
                let chained = toks.get(i + 3).is_some_and(|t| t.text == ".");
                // Otherwise, bound by `let name = …`? Walk back across
                // the receiver chain to find the statement head.
                let mut j = i - 2;
                while j >= 2 && toks[j - 1].text == "." && toks[j - 2].kind == TokKind::Ident {
                    j -= 2;
                }
                let bound = if chained {
                    None
                } else if j >= 2 && toks[j - 1].text == "=" && toks[j - 2].kind == TokKind::Ident {
                    let name = toks[j - 2].text.clone();
                    let kw = if j >= 3 {
                        toks[j - 3].text.as_str()
                    } else {
                        ""
                    };
                    (kw == "let" || kw == "mut").then_some(name)
                } else {
                    None
                };
                let scope = scopes.last_mut().expect("scope stack never empty");
                match bound {
                    Some(b) => scope.bound.push((b, lock)),
                    None => scope.unbound.push(lock),
                }
                i += 3;
                continue;
            }
            // Plain or method call: `name (` not preceded by `fn`/`::<`.
            (TokKind::Ident, name)
                if toks.get(i + 1).is_some_and(|t| t.text == "(")
                    && !CALL_BLOCKLIST.contains(&name)
                    && !is_keyword(name)
                    && (i == 0 || toks[i - 1].text != "fn") =>
            {
                let h = held(&scopes);
                if !h.is_empty() {
                    facts.calls.push(Call {
                        callee: name.to_string(),
                        line: t.line,
                        held: h,
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
    facts
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "match"
            | "for"
            | "loop"
            | "return"
            | "let"
            | "mut"
            | "move"
            | "in"
            | "Some"
            | "Ok"
            | "Err"
            | "None"
            | "Box"
            | "Vec"
            | "assert"
            | "debug_assert"
    )
}

/// Build the acquisition graph over all models and detect cycles.
pub fn check(models: &[&SourceModel], allow: &Allowlist) -> Vec<Diagnostic> {
    let locks = lock_names(models);
    // (crate, fn-name) -> facts; also fn-name -> [(crate, key)] index.
    let mut facts: BTreeMap<(String, String), FnFacts> = BTreeMap::new();
    let mut by_name: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
    let mut edge_sites: BTreeMap<(String, String), Edge> = BTreeMap::new();

    for model in models {
        let krate = crate_of(&model.path).to_string();
        for f in &model.fns {
            if f.body_start >= f.end || model.in_test_region(f.start) {
                continue;
            }
            let ff = analyze_fn(model, (f.body_start, f.end), &locks);
            if ff.edges.is_empty() && ff.acquires.is_empty() && ff.calls.is_empty() {
                continue;
            }
            for (a, b, line) in &ff.edges {
                edge_sites.entry((a.clone(), b.clone())).or_insert(Edge {
                    from: a.clone(),
                    to: b.clone(),
                    file: model.path.clone(),
                    line: *line,
                    via: f.name.clone(),
                });
            }
            by_name
                .entry(f.name.clone())
                .or_default()
                .push((krate.clone(), f.name.clone()));
            // Calls need the model path for witness sites later.
            let key = (krate.clone(), f.name.clone());
            match facts.get_mut(&key) {
                Some(existing) => {
                    // Same fn name twice in a crate (impls for different
                    // types): merge conservatively.
                    existing.edges.extend(ff.edges);
                    existing.acquires.extend(ff.acquires);
                    existing.calls.extend(ff.calls);
                }
                None => {
                    facts.insert(key, ff);
                }
            }
        }
    }

    // May-acquire fixpoint: what locks can a call to (crate, fn) take,
    // transitively?
    let mut may: BTreeMap<(String, String), BTreeSet<String>> = facts
        .iter()
        .map(|(k, f)| (k.clone(), f.acquires.clone()))
        .collect();
    let resolve = |callee: &str, from_crate: &str| -> Vec<(String, String)> {
        let Some(cands) = by_name.get(callee) else {
            return Vec::new();
        };
        let same: Vec<_> = cands
            .iter()
            .filter(|(c, _)| c == from_crate)
            .cloned()
            .collect();
        if same.is_empty() {
            cands.clone()
        } else {
            same
        }
    };
    loop {
        let mut changed = false;
        for ((krate, name), f) in &facts {
            let mut add = BTreeSet::new();
            for call in &f.calls {
                for target in resolve(&call.callee, krate) {
                    if let Some(s) = may.get(&target) {
                        add.extend(s.iter().cloned());
                    }
                }
            }
            let entry = may.get_mut(&(krate.clone(), name.clone())).expect("seeded");
            let before = entry.len();
            entry.extend(add);
            if entry.len() != before {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Cross-fn edges: held A at a call whose target may-acquire B.
    let mut graph: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for e in edge_sites.keys() {
        graph.entry(e.0.clone()).or_default().insert(e.1.clone());
    }
    for ((krate, name), f) in &facts {
        for call in &f.calls {
            for target in resolve(&call.callee, krate) {
                let Some(acq) = may.get(&target) else {
                    continue;
                };
                for h in &call.held {
                    for b in acq {
                        if h == b {
                            continue;
                        }
                        graph.entry(h.clone()).or_default().insert(b.clone());
                        edge_sites.entry((h.clone(), b.clone())).or_insert(Edge {
                            from: h.clone(),
                            to: b.clone(),
                            file: String::new(),
                            line: call.line,
                            via: format!("{name} -> {}", call.callee),
                        });
                    }
                }
            }
        }
    }

    // Drop allowlisted edges before cycle detection.
    for key in allow.entries.keys() {
        if let Some(rest) = key.strip_prefix("edge::") {
            if let Some((a, b)) = rest.split_once("->") {
                if let Some(set) = graph.get_mut(a.trim()) {
                    set.remove(b.trim());
                }
            }
        }
    }

    let mut diags = Vec::new();
    for cycle in find_cycles(&graph) {
        let path = cycle.join(" -> ");
        let mut d = Diagnostic::error(
            "lock-order",
            format!(
                "potential deadlock: lock acquisition cycle {path} -> {}",
                cycle[0]
            ),
        );
        for w in cycle.windows(2).chain(std::iter::once(
            &[cycle[cycle.len() - 1].clone(), cycle[0].clone()][..],
        )) {
            if let Some(e) = edge_sites.get(&(w[0].clone(), w[1].clone())) {
                let site = if e.file.is_empty() {
                    format!("via {}", e.via)
                } else {
                    format!("{}:{} in `{}`", e.file, e.line, e.via)
                };
                d = d.note(format!("{} -> {} ({site})", w[0], w[1]));
            }
        }
        d = d.note(
            "names are merged across crates (over-approximation); accept a benign edge \
             with `edge::A->B = why` in lockorder.allow",
        );
        diags.push(d);
    }
    for (key, line) in &allow.duplicates {
        diags.push(Diagnostic::warn(
            "lock-order",
            format!("duplicate lockorder.allow entry `{key}` (line {line})"),
        ));
    }
    diags
}

/// Minimal cycle enumeration: for each SCC of size > 1, report one cycle
/// through it (enough to act on; the graph is small).
fn find_cycles(graph: &BTreeMap<String, BTreeSet<String>>) -> Vec<Vec<String>> {
    // Tarjan SCC.
    #[derive(Default)]
    struct St {
        index: BTreeMap<String, usize>,
        low: BTreeMap<String, usize>,
        on_stack: BTreeSet<String>,
        stack: Vec<String>,
        next: usize,
        sccs: Vec<Vec<String>>,
    }
    fn strong(v: &str, graph: &BTreeMap<String, BTreeSet<String>>, st: &mut St) {
        st.index.insert(v.to_string(), st.next);
        st.low.insert(v.to_string(), st.next);
        st.next += 1;
        st.stack.push(v.to_string());
        st.on_stack.insert(v.to_string());
        if let Some(succs) = graph.get(v) {
            for w in succs {
                if !st.index.contains_key(w) {
                    strong(w, graph, st);
                    let lw = st.low[w];
                    let lv = st.low.get_mut(v).expect("visited");
                    *lv = (*lv).min(lw);
                } else if st.on_stack.contains(w) {
                    let iw = st.index[w];
                    let lv = st.low.get_mut(v).expect("visited");
                    *lv = (*lv).min(iw);
                }
            }
        }
        if st.low[v] == st.index[v] {
            let mut scc = Vec::new();
            while let Some(w) = st.stack.pop() {
                st.on_stack.remove(&w);
                let done = w == v;
                scc.push(w);
                if done {
                    break;
                }
            }
            if scc.len() > 1 {
                scc.reverse();
                st.sccs.push(scc);
            }
        }
    }
    let mut st = St::default();
    let nodes: Vec<String> = graph.keys().cloned().collect();
    for v in &nodes {
        if !st.index.contains_key(v) {
            strong(v, graph, &mut st);
        }
    }
    st.sccs
}
