//! Rule `safety`: every `unsafe` block, fn, impl, and trait must carry a
//! written justification.
//!
//! PR 1 established the convention (`// SAFETY: …` on blocks, a
//! `# Safety` doc section on unsafe fns); the workspace-level
//! `clippy::undocumented_unsafe_blocks` lint only *warns* and only
//! covers blocks, so this rule enforces the whole convention as an
//! error. Accepted placements:
//!
//! * a `// SAFETY:` (or `/* SAFETY: */`) comment on the lines directly
//!   above the `unsafe` keyword (blank lines and attributes may
//!   intervene, nothing else);
//! * a comment on the same line, or on the first line inside the block
//!   (`unsafe { // SAFETY: …`);
//! * for `unsafe fn`/`unsafe trait`: a doc comment containing
//!   `# Safety` anywhere in the item's doc block.

use crate::diag::Diagnostic;
use crate::parse::SourceModel;

/// Check one file; returns diagnostics for undocumented `unsafe`.
pub fn check(models: &[&SourceModel]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for model in models {
        for site in &model.unsafes {
            if documented(model, site.line) {
                continue;
            }
            diags.push(
                Diagnostic::error(
                    "safety",
                    format!(
                        "`unsafe` {} without a `// SAFETY:` justification",
                        site.kind
                    ),
                )
                .at(&model.path, site.line)
                .snippet(model.line_text(site.line))
                .note(
                    "write `// SAFETY: <why the contract holds>` directly above (or a \
                     `# Safety` doc section for unsafe fns)",
                ),
            );
        }
    }
    diags
}

/// Whether an `unsafe` at 1-based `line` has a SAFETY justification in
/// the accepted window.
fn documented(model: &SourceModel, line: usize) -> bool {
    let has_marker = |l: usize| -> bool {
        let text = model.line_text(l);
        text.contains("SAFETY") || text.contains("# Safety")
    };
    // Same line or first line inside the block.
    if has_marker(line) || has_marker(line + 1) {
        return true;
    }
    // Walk upward through comments, doc comments, attributes, and blank
    // lines; the first "real code" line stops the search.
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        let text = model.line_text(l);
        let t = text.trim_start();
        if t.is_empty()
            || t.starts_with("//")
            || t.starts_with("#[")
            || t.starts_with("#!")
            || t.starts_with("*/")
            || t.starts_with('*')
            || t.starts_with("/*")
        {
            if has_marker(l) {
                return true;
            }
            if l == 1 {
                break;
            }
            l -= 1;
            continue;
        }
        break;
    }
    false
}
