//! Rule `hot-alloc`: the declared hot paths must not reach heap
//! allocations.
//!
//! PR 3 proved the steady-state send path allocation-free with a
//! counting global allocator; that proof is *dynamic* — it holds for the
//! workload the test runs. This rule makes it static: from each declared
//! entry point (TCQ join/publish, CQ poll, the dispatch inner loop, the
//! NIC lane step) it walks the local call graph and flags every
//! reachable allocation-shaped expression. Deliberate allocations
//! (one-time startup before the loop, cold error/teardown arms, pool
//! refills) are justified in `hotpath.allow`.
//!
//! Call-graph resolution is name-based — same-crate candidates first,
//! workspace-wide otherwise — and bounded to [`MAX_DEPTH`] hops, both
//! over-approximations documented in DESIGN.md §5f.

use crate::allowlist::Allowlist;
use crate::diag::Diagnostic;
use crate::lex::TokKind;
use crate::parse::SourceModel;
use crate::walk::crate_of;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Declared hot-path entry points: (file suffix, fn name).
pub const ENTRY_POINTS: &[(&str, &str)] = &[
    ("crates/core/src/tcq.rs", "join"),
    ("crates/core/src/tcq.rs", "join_with"),
    ("crates/core/src/tcq.rs", "complete"),
    ("crates/fabric/src/cq.rs", "poll"),
    ("crates/fabric/src/cq.rs", "poll_one"),
    ("crates/fabric/src/cq.rs", "push"),
    ("crates/core/src/server.rs", "dispatch_loop"),
    ("crates/fabric/src/nic.rs", "engine_loop"),
    ("crates/fabric/src/nic.rs", "engine_loop_virtual"),
    // Elastic control plane: churn makes lease/release warm-path — a
    // reconnecting client must hit the pooled free-list, not the
    // allocator. Cold-path refills are justified in hotpath.allow.
    ("crates/fabric/src/fabric.rs", "lease_qp"),
    ("crates/fabric/src/fabric.rs", "release_qp"),
    // Gateway edge loop: every tenant request flows through the
    // decode/dispatch pump, making it hot-path by construction; the
    // session reuses its decode scratch, so steady-state pumping must
    // not allocate per request.
    ("crates/gateway/src/edge.rs", "pump"),
    // One-sided read loop: a READ + validate per GET — the whole point
    // is zero server CPU and one verb, so the client side must not pay
    // the allocator either (the reader owns its scratch MR slice and
    // the caller's landing buffer is reused).
    ("crates/core/src/onesided.rs", "read_slot"),
    // ALock acquire: a lock-service client takes this on every
    // critical section; local handoff is the fast path and must stay
    // allocation-free (the remote CAS leg's WR posting reuses TCQ
    // slots).
    ("crates/core/src/alock.rs", "acquire"),
];

/// Maximum call-graph depth explored from an entry point.
pub const MAX_DEPTH: usize = 4;

/// `prefix :: name` allocation constructors.
const QUALIFIED: &[(&str, &str)] = &[
    ("Box", "new"),
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("String", "from"),
    ("String", "new"),
];

/// Method calls / macros that allocate.
const METHODS: &[&str] = &["to_vec", "to_owned", "to_string"];
const MACROS: &[&str] = &["vec", "format"];

/// Callee names excluded from call-graph traversal: ubiquitous
/// container/trait names (`.push()` on a `Vec` must not resolve to
/// `CompletionQueue::push`) plus the clock seam's executor dispatch
/// (`charge`/`advance` lead into simulator bookkeeping, which allocates
/// by design and is not a production hot path). An allocation hidden
/// behind a fn with one of these names is out of scope — DESIGN.md §5f
/// records the under-approximation.
const CALLEE_BLOCKLIST: &[&str] = &[
    "drop",
    "fmt",
    "clone",
    "default",
    "eq",
    "hash",
    "from",
    "new",
    "with_capacity",
    "len",
    "is_empty",
    "clear",
    "get",
    "get_mut",
    "push",
    "pop",
    "insert",
    "remove",
    "contains",
    "iter",
    "next",
    "take",
    "replace",
    "extend",
    "min",
    "max",
    "find",
    "count",
    "position",
    "charge",
    "flush_charge",
    "advance",
    // Atomic methods: `x.load(Ordering::…)` must not resolve to a
    // workspace fn named `load` (e.g. the kvstore bulk loader).
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
];

/// One allocation site found in a hot fn.
struct AllocSite {
    key: String,
    file: String,
    line: usize,
    pattern: String,
    /// Entry point and call chain that reaches this fn.
    chain: String,
}

/// Scan one fn body for allocation-shaped expressions.
fn alloc_sites(
    model: &SourceModel,
    body: (usize, usize),
    fn_name: &str,
    chain: &str,
    ordinals: &mut BTreeMap<(String, String), usize>,
) -> Vec<AllocSite> {
    let toks = &model.toks;
    let mut out = Vec::new();
    let mut i = body.0;
    while i < body.1 {
        let t = &toks[i];
        let pattern: Option<String> = if t.kind == TokKind::Ident {
            QUALIFIED
                .iter()
                .find(|(q, name)| {
                    t.text == *q
                        && toks.get(i + 1).is_some_and(|n| n.text == "::")
                        && toks.get(i + 2).is_some_and(|n| n.text == *name)
                })
                .map(|(q, name)| format!("{q}::{name}"))
                .or_else(|| {
                    (METHODS.contains(&t.text.as_str()) && i >= 1 && toks[i - 1].text == ".")
                        .then(|| t.text.clone())
                })
                .or_else(|| {
                    (MACROS.contains(&t.text.as_str())
                        && toks.get(i + 1).is_some_and(|n| n.text == "!"))
                    .then(|| format!("{}!", t.text))
                })
        } else {
            None
        };
        if let Some(pattern) = pattern {
            if !model.in_test_region(i) {
                let n = ordinals
                    .entry((fn_name.to_string(), pattern.clone()))
                    .or_insert(0);
                *n += 1;
                out.push(AllocSite {
                    key: format!("{}::{}::{}#{}", model.path, fn_name, pattern, n),
                    file: model.path.clone(),
                    line: t.line,
                    pattern,
                    chain: chain.to_string(),
                });
            }
        }
        i += 1;
    }
    out
}

/// Call sites (simple callee names) inside a fn body.
fn callees(model: &SourceModel, body: (usize, usize)) -> BTreeSet<String> {
    let toks = &model.toks;
    let mut out = BTreeSet::new();
    for i in body.0..body.1 {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
            && !(i >= 1 && toks[i - 1].text == "fn")
            && !CALLEE_BLOCKLIST.contains(&t.text.as_str())
        {
            out.insert(t.text.clone());
        }
    }
    out
}

/// Check all models against the allowlist.
pub fn check(models: &[&SourceModel], allow: &Allowlist) -> (Vec<Diagnostic>, Vec<String>) {
    check_with_entries(models, allow, ENTRY_POINTS)
}

/// Entry-point-parameterized variant (fixtures use synthetic entries).
pub fn check_with_entries(
    models: &[&SourceModel],
    allow: &Allowlist,
    entries: &[(&str, &str)],
) -> (Vec<Diagnostic>, Vec<String>) {
    // Index: (crate, fn-name) -> (model idx, fn idx); name -> keys.
    // The simulator crate is excluded from resolution: it intentionally
    // allocates (event queues, task bookkeeping) and only runs under
    // VirtualLab, never on a production hot path.
    let mut index: BTreeMap<(String, String), Vec<(usize, usize)>> = BTreeMap::new();
    for (mi, model) in models.iter().enumerate() {
        if model.path.starts_with("crates/sim/") {
            continue;
        }
        let krate = crate_of(&model.path).to_string();
        for (fi, f) in model.fns.iter().enumerate() {
            if f.body_start >= f.end || model.in_test_region(f.start) {
                continue;
            }
            index
                .entry((krate.clone(), f.name.clone()))
                .or_default()
                .push((mi, fi));
        }
    }
    let resolve = |name: &str, from_crate: &str| -> Vec<(usize, usize)> {
        let same = index
            .get(&(from_crate.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default();
        if !same.is_empty() {
            return same;
        }
        index
            .iter()
            .filter(|((_, n), _)| n == name)
            .flat_map(|(_, v)| v.iter().cloned())
            .collect()
    };

    // BFS from each entry point.
    let mut sites: Vec<AllocSite> = Vec::new();
    let mut ordinals: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut seen_fn_site: BTreeSet<String> = BTreeSet::new();
    for (file_suffix, entry) in entries {
        let Some((mi0, fi0)) = models.iter().enumerate().find_map(|(mi, m)| {
            if !m.path.ends_with(file_suffix) {
                return None;
            }
            m.fns
                .iter()
                .position(|f| f.name == *entry && f.body_start < f.end)
                .map(|fi| (mi, fi))
        }) else {
            continue;
        };
        let mut queue: VecDeque<(usize, usize, usize, String)> = VecDeque::new();
        queue.push_back((mi0, fi0, 0, entry.to_string()));
        let mut visited: BTreeSet<(usize, usize)> = BTreeSet::new();
        visited.insert((mi0, fi0));
        while let Some((mi, fi, depth, chain)) = queue.pop_front() {
            let model = models[mi];
            let f = &model.fns[fi];
            let body = (f.body_start, f.end);
            // Each (fn, entry-chain) only reported once globally: two
            // entry points reaching the same alloc produce one finding.
            let fn_id = format!("{}::{}", model.path, f.name);
            if seen_fn_site.insert(fn_id) {
                sites.extend(alloc_sites(model, body, &f.name, &chain, &mut ordinals));
            }
            if depth >= MAX_DEPTH {
                continue;
            }
            let krate = crate_of(&model.path).to_string();
            for callee in callees(model, body) {
                for (cmi, cfi) in resolve(&callee, &krate) {
                    if visited.insert((cmi, cfi)) {
                        queue.push_back((cmi, cfi, depth + 1, format!("{chain} -> {callee}")));
                    }
                }
            }
        }
    }

    let mut diags = Vec::new();
    let mut missing = Vec::new();
    let mut all_keys = Vec::new();
    for s in &sites {
        all_keys.push(s.key.clone());
        match allow.get(&s.key) {
            None => {
                diags.push(
                    Diagnostic::error(
                        "hot-alloc",
                        format!("`{}` reachable from a hot-path entry point", s.pattern),
                    )
                    .at(&s.file, s.line)
                    .snippet(
                        models
                            .iter()
                            .find(|m| m.path == s.file)
                            .map(|m| m.line_text(s.line))
                            .unwrap_or(""),
                    )
                    .note(format!("reached via {}", s.chain))
                    .note(format!("key: {}", s.key))
                    .note("hoist the allocation out of the hot path or justify in hotpath.allow"),
                );
                missing.push(s.key.clone());
            }
            Some("TODO") => {
                diags.push(
                    Diagnostic::error(
                        "hot-alloc",
                        format!("TODO justification for `{}`", s.pattern),
                    )
                    .at(&s.file, s.line)
                    .note(format!("key: {}", s.key)),
                );
            }
            Some(_) => {}
        }
    }
    for key in allow.entries.keys() {
        if !all_keys.iter().any(|k| k == key) {
            diags.push(Diagnostic::warn(
                "hot-alloc",
                format!("stale hotpath.allow entry `{key}` (site no longer reachable)"),
            ));
        }
    }
    for (key, line) in &allow.duplicates {
        diags.push(Diagnostic::warn(
            "hot-alloc",
            format!("duplicate hotpath.allow entry `{key}` (line {line})"),
        ));
    }
    (diags, missing)
}
