//! Fixture tests for the four `cargo xtask lint` rules: each seeded
//! violation under `tests/fixtures/` must be flagged, and its clean
//! twin must pass. Fixtures are parsed (never compiled) under synthetic
//! workspace-relative paths, so they exercise exactly the code path the
//! real lint run takes.

use xtask::allowlist::Allowlist;
use xtask::lint::{determinism, hot_alloc, lock_order, safety};
use xtask::parse::SourceModel;

fn model(path: &str, src: &str) -> SourceModel {
    SourceModel::build(path, src)
}

fn empty_allow() -> Allowlist {
    Allowlist::parse("")
}

// ---------------------------------------------------------- determinism

#[test]
fn determinism_bad_fixture_is_flagged() {
    let m = model(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/determinism_bad.rs"),
    );
    let (diags, missing) = determinism::check(&[&m], &empty_allow());
    let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert_eq!(diags.len(), 4, "findings: {msgs:?}");
    for pat in [
        "Instant::now",
        "thread::sleep",
        "thread::yield_now",
        "thread::spawn",
    ] {
        assert!(
            msgs.iter().any(|m| m.contains(pat)),
            "missing {pat} in {msgs:?}"
        );
    }
    assert_eq!(missing.len(), 4);
}

#[test]
fn determinism_clean_fixture_passes() {
    let m = model(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/determinism_clean.rs"),
    );
    let (diags, _) = determinism::check(&[&m], &empty_allow());
    assert!(
        diags.is_empty(),
        "clean twin flagged: {:?}",
        diags.iter().map(|d| &d.message).collect::<Vec<_>>()
    );
}

#[test]
fn determinism_allowlist_and_seam_are_honored() {
    // A justified site passes; the seam file itself is always exempt.
    let m = model(
        "crates/fixture/src/lib.rs",
        "pub fn t() { let _ = Instant::now(); }\n",
    );
    let allow =
        Allowlist::parse("crates/fixture/src/lib.rs::t::Instant::now#1 = fixture justification\n");
    let (diags, missing) = determinism::check(&[&m], &allow);
    assert!(diags.is_empty() && missing.is_empty());

    let seam = model(
        "crates/sync/src/clock.rs",
        "pub fn now() { let _ = Instant::now(); }\n",
    );
    let (diags, _) = determinism::check(&[&seam], &empty_allow());
    assert!(diags.is_empty(), "seam file must be exempt");
}

#[test]
fn determinism_todo_justification_still_fails() {
    let m = model(
        "crates/fixture/src/lib.rs",
        "pub fn t() { let _ = Instant::now(); }\n",
    );
    let allow = Allowlist::parse("crates/fixture/src/lib.rs::t::Instant::now#1 = TODO\n");
    let (diags, _) = determinism::check(&[&m], &allow);
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("TODO"));
}

// ----------------------------------------------------------- lock-order

#[test]
fn lock_order_three_lock_cycle_is_flagged() {
    let m = model(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/lock_order_bad.rs"),
    );
    let diags = lock_order::check(&[&m], &empty_allow());
    assert_eq!(diags.len(), 1, "expected exactly one cycle report");
    let msg = &diags[0].message;
    for lock in ["alpha", "beta", "gamma"] {
        assert!(msg.contains(lock), "cycle path missing {lock}: {msg}");
    }
}

#[test]
fn lock_order_consistent_order_passes() {
    let m = model(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/lock_order_clean.rs"),
    );
    let diags = lock_order::check(&[&m], &empty_allow());
    assert!(
        diags.is_empty(),
        "clean twin flagged: {:?}",
        diags.iter().map(|d| &d.message).collect::<Vec<_>>()
    );
}

#[test]
fn lock_order_interprocedural_cycle_is_flagged_and_allowable() {
    let m = model(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/lock_order_call_bad.rs"),
    );
    let diags = lock_order::check(&[&m], &empty_allow());
    assert_eq!(diags.len(), 1, "expected the left<->right cycle");
    assert!(diags[0].message.contains("left") && diags[0].message.contains("right"));

    // Accepting one direction in lockorder.allow breaks the cycle.
    let allow = Allowlist::parse("edge::left->right = fixture: benign by protocol\n");
    let diags = lock_order::check(&[&m], &allow);
    assert!(diags.is_empty());
}

// --------------------------------------------------------------- safety

#[test]
fn safety_bad_fixture_is_flagged() {
    let m = model(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/safety_bad.rs"),
    );
    let diags = safety::check(&[&m]);
    // Three sites: the block in `peek`, the `unsafe fn` itself, and the
    // inner block in its body.
    assert_eq!(
        diags.len(),
        3,
        "expected undocumented block + fn + inner block: {:?}",
        diags.iter().map(|d| &d.message).collect::<Vec<_>>()
    );
}

#[test]
fn safety_clean_fixture_passes() {
    let m = model(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/safety_clean.rs"),
    );
    let diags = safety::check(&[&m]);
    assert!(
        diags.is_empty(),
        "clean twin flagged: {:?}",
        diags.iter().map(|d| &d.message).collect::<Vec<_>>()
    );
}

// ------------------------------------------------------------ hot-alloc

const FIXTURE_ENTRIES: &[(&str, &str)] = &[("crates/fixture/src/hot.rs", "hot_entry")];

#[test]
fn hot_alloc_bad_fixture_is_flagged() {
    let m = model(
        "crates/fixture/src/hot.rs",
        include_str!("fixtures/hot_alloc_bad.rs"),
    );
    let (diags, missing) = hot_alloc::check_with_entries(&[&m], &empty_allow(), FIXTURE_ENTRIES);
    let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert_eq!(diags.len(), 2, "findings: {msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("Vec::with_capacity")));
    assert!(msgs.iter().any(|m| m.contains("format!")));
    assert_eq!(missing.len(), 2);
}

#[test]
fn hot_alloc_clean_fixture_passes() {
    let m = model(
        "crates/fixture/src/hot.rs",
        include_str!("fixtures/hot_alloc_clean.rs"),
    );
    let (diags, _) = hot_alloc::check_with_entries(&[&m], &empty_allow(), FIXTURE_ENTRIES);
    assert!(
        diags.is_empty(),
        "clean twin flagged: {:?}",
        diags.iter().map(|d| &d.message).collect::<Vec<_>>()
    );
}

#[test]
fn hot_alloc_allowlist_is_honored() {
    let m = model(
        "crates/fixture/src/hot.rs",
        include_str!("fixtures/hot_alloc_bad.rs"),
    );
    let allow = Allowlist::parse(
        "crates/fixture/src/hot.rs::build_scratch::Vec::with_capacity#1 = fixture\n\
         crates/fixture/src/hot.rs::build_scratch::format!#1 = fixture\n",
    );
    let (diags, missing) = hot_alloc::check_with_entries(&[&m], &allow, FIXTURE_ENTRIES);
    assert!(diags.is_empty() && missing.is_empty());
}
