//! Clean twin of `safety_bad.rs`: the same unsafe shapes, each with a
//! `// SAFETY:` justification the audit accepts.

pub fn peek(v: &[u8]) -> u8 {
    // SAFETY: callers pass a non-empty slice, so `as_ptr` is in-bounds
    // and aligned for `u8`.
    unsafe { *v.as_ptr() }
}

// SAFETY: caller guarantees `p` is valid for reads of one byte.
pub unsafe fn raw_read(p: *const u8) -> u8 {
    // SAFETY: delegated to the fn contract above.
    unsafe { *p }
}
