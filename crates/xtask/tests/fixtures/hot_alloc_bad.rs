//! Seeded hot-path allocation violations: the entry point reaches a
//! helper that allocates on every call.

pub fn hot_entry(n: usize) -> usize {
    let mut total = 0;
    for i in 0..n {
        total += build_scratch(i);
    }
    total
}

fn build_scratch(i: usize) -> usize {
    let v: Vec<usize> = Vec::with_capacity(i);
    let s = format!("{i}");
    v.capacity() + s.len()
}
