//! Seeded SAFETY violations: an unsafe block and an unsafe fn, neither
//! carrying a `// SAFETY:` justification.

pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}

pub unsafe fn raw_read(p: *const u8) -> u8 {
    unsafe { *p }
}
