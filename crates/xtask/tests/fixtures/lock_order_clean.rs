//! Clean twin of `lock_order_bad.rs`: the same three locks, but every
//! multi-lock path respects the global order alpha < beta < gamma.

use parking_lot::Mutex;

pub struct Shards {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
    gamma: Mutex<u32>,
}

impl Shards {
    pub fn ab(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }

    pub fn bc(&self) {
        let b = self.beta.lock();
        let c = self.gamma.lock();
        drop(c);
        drop(b);
    }

    pub fn ac(&self) {
        let a = self.alpha.lock();
        let c = self.gamma.lock();
        drop(c);
        drop(a);
    }
}
