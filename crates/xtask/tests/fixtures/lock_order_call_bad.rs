//! Seeded interprocedural lock-order violation: neither fn acquires
//! both locks directly — the opposing edge comes from a callee's
//! may-acquire set.

use parking_lot::Mutex;

pub struct Pair {
    left: Mutex<u32>,
    right: Mutex<u32>,
}

fn take_right(p: &Pair) {
    let r = p.right.lock();
    drop(r);
}

fn take_left(p: &Pair) {
    let l = p.left.lock();
    drop(l);
}

pub fn left_then_right(p: &Pair) {
    let l = p.left.lock();
    take_right(p);
    drop(l);
}

pub fn right_then_left(p: &Pair) {
    let r = p.right.lock();
    take_left(p);
    drop(r);
}
