//! Seeded lock-order violation: three locks acquired pairwise in a
//! ring (`alpha -> beta -> gamma -> alpha`), a classic 3-party
//! deadlock.

use parking_lot::Mutex;

pub struct Shards {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
    gamma: Mutex<u32>,
}

impl Shards {
    pub fn ab(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }

    pub fn bc(&self) {
        let b = self.beta.lock();
        let c = self.gamma.lock();
        drop(c);
        drop(b);
    }

    pub fn ca(&self) {
        let c = self.gamma.lock();
        let a = self.alpha.lock();
        drop(a);
        drop(c);
    }
}
