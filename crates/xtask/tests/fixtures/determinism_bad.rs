//! Seeded determinism violations: every time/scheduler call here
//! escapes the virtual-clock seam and must be flagged.

use std::time::Instant;

pub fn poll_wait() {
    let t0 = Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    std::thread::yield_now();
    let _ = t0;
}

pub fn spawn_worker() {
    let h = std::thread::spawn(|| {});
    let _ = h.join();
}
