//! Clean twin of `hot_alloc_bad.rs`: the entry point works entirely in
//! borrowed buffers.

pub fn hot_entry(buf: &mut [u8]) -> usize {
    let mut total = 0;
    for b in buf.iter() {
        total += usize::from(*b);
    }
    scale(total)
}

fn scale(n: usize) -> usize {
    n.saturating_mul(2)
}
