//! Clean twin of `determinism_bad.rs`: the same shapes routed through
//! the clock seam, plus a test region (exempt by policy).

use flock_sync::clock;

pub fn poll_wait() {
    let t0 = clock::now_ns();
    clock::sleep_ns(500);
    clock::yield_now();
    let _ = t0;
}

pub fn spawn_worker() {
    let h = clock::spawn("worker", || {});
    let _ = h.join();
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_exempt() {
        let _ = std::time::Instant::now();
        std::thread::yield_now();
    }
}
