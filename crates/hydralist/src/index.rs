//! The two-layer index: data layer + asynchronously updated search layer.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

/// Sentinel "no next node".
const NIL: usize = usize::MAX;

/// Index configuration.
#[derive(Debug, Clone)]
pub struct HydraConfig {
    /// Maximum entries per data node before it splits.
    pub node_capacity: usize,
    /// Apply search-layer updates synchronously after each split (true)
    /// or only on [`HydraList::flush_search_updates`] (false — the
    /// asynchronous mode HydraList is named for).
    pub sync_search_updates: bool,
}

impl Default for HydraConfig {
    fn default() -> Self {
        HydraConfig {
            node_capacity: 64,
            sync_search_updates: true,
        }
    }
}

#[derive(Debug)]
struct DataNode {
    /// Sorted `(key, value)` entries.
    entries: Vec<(u64, u64)>,
}

/// Arena slot: the node payload under its own lock, plus lock-free
/// navigation fields readable without the lock.
#[derive(Debug)]
struct Slot {
    node: Mutex<DataNode>,
    min_key: AtomicU64,
    next: AtomicUsize,
}

/// [`HydraList::export_node`]'s snapshot: `(min_key, next, entries)`,
/// with `next` as `None` at the tail.
pub type NodeSnapshot = (u64, Option<usize>, Vec<(u64, u64)>);

/// The HydraList-style ordered index. Keys and values are `u64` (the
/// paper's workload uses 8-byte keys and values).
#[derive(Debug)]
pub struct HydraList {
    cfg: HydraConfig,
    /// Append-only arena of reference-counted slots: indices are stable
    /// and slots can be pinned without holding the arena lock.
    arena: RwLock<Vec<Arc<Slot>>>,
    /// Search layer: anchor key → arena index. Possibly stale.
    search: RwLock<BTreeMap<u64, usize>>,
    /// Search-layer updates not yet applied (async mode).
    pending: Mutex<Vec<(u64, usize)>>,
    len: AtomicUsize,
}

impl Default for HydraList {
    fn default() -> Self {
        Self::new(HydraConfig::default())
    }
}

impl HydraList {
    /// Create an empty index.
    pub fn new(cfg: HydraConfig) -> HydraList {
        assert!(cfg.node_capacity >= 2);
        let arena = vec![Arc::new(Slot {
            node: Mutex::new(DataNode {
                entries: Vec::new(),
            }),
            min_key: AtomicU64::new(0),
            next: AtomicUsize::new(NIL),
        })];
        let mut search = BTreeMap::new();
        search.insert(0u64, 0usize);
        HydraList {
            cfg,
            arena: RwLock::new(arena),
            search: RwLock::new(search),
            pending: Mutex::new(Vec::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of data nodes currently in the arena.
    pub fn node_count(&self) -> usize {
        self.arena.read().len()
    }

    /// Maximum entries a data node holds before splitting.
    pub fn node_capacity(&self) -> usize {
        self.cfg.node_capacity
    }

    /// Number of pending (unapplied) search-layer updates.
    pub fn pending_search_updates(&self) -> usize {
        self.pending.lock().len()
    }

    /// Apply all pending search-layer updates (the asynchronous updater's
    /// work; call from a background thread in async mode).
    pub fn flush_search_updates(&self) {
        let updates: Vec<(u64, usize)> = std::mem::take(&mut *self.pending.lock());
        if updates.is_empty() {
            return;
        }
        let mut search = self.search.write();
        for (anchor, idx) in updates {
            search.insert(anchor, idx);
        }
    }

    fn slot(&self, idx: usize) -> Arc<Slot> {
        Arc::clone(&self.arena.read()[idx])
    }

    /// Locate the data node that may hold `key`: search layer first, then
    /// forward-walk in the data layer to repair staleness. Returns
    /// `(index, slot)`.
    fn locate(&self, key: u64) -> (usize, Arc<Slot>) {
        let start = {
            let search = self.search.read();
            search
                .range(..=key)
                .next_back()
                .map(|(_, &idx)| idx)
                .unwrap_or(0)
        };
        let mut idx = start;
        let mut slot = self.slot(idx);
        loop {
            let next = slot.next.load(Ordering::Acquire);
            if next == NIL {
                return (idx, slot);
            }
            let next_slot = self.slot(next);
            if next_slot.min_key.load(Ordering::Acquire) <= key {
                idx = next;
                slot = next_slot;
            } else {
                return (idx, slot);
            }
        }
    }

    /// Insert or overwrite `key`; returns the previous value if any.
    pub fn insert(&self, key: u64, value: u64) -> Option<u64> {
        self.insert_watch(key, value, &mut |_| {})
    }

    /// [`HydraList::insert`] that also reports every arena index whose
    /// node changed (the node inserted into, plus the new upper half on
    /// a split). Mirrors that export the leaf layer into a one-sided
    /// segment (`flock-gateway`'s hydra bridge) republish exactly the
    /// touched nodes.
    pub fn insert_watch(
        &self,
        key: u64,
        value: u64,
        touched: &mut dyn FnMut(usize),
    ) -> Option<u64> {
        loop {
            let (idx, slot) = self.locate(key);
            let mut node = slot.node.lock();
            // Re-check under the lock: a concurrent split may have moved
            // our key range to a successor.
            let next = slot.next.load(Ordering::Acquire);
            if next != NIL && self.slot(next).min_key.load(Ordering::Acquire) <= key {
                continue; // raced with a split; retry
            }
            match node.entries.binary_search_by_key(&key, |e| e.0) {
                Ok(pos) => {
                    let old = node.entries[pos].1;
                    node.entries[pos].1 = value;
                    touched(idx);
                    return Some(old);
                }
                Err(pos) => {
                    node.entries.insert(pos, (key, value));
                    self.len.fetch_add(1, Ordering::Relaxed);
                    if node.entries.len() > self.cfg.node_capacity {
                        self.split(idx, &slot, &mut node, touched);
                    }
                    touched(idx);
                    return None;
                }
            }
        }
    }

    /// Snapshot one data node for export: `(min_key, next, entries)`,
    /// with `next` as `None` at the tail. Navigation fields and payload
    /// are read under the node lock, so the snapshot is internally
    /// consistent (a concurrent split cannot interleave).
    pub fn export_node(&self, idx: usize) -> Option<NodeSnapshot> {
        let slot = {
            let arena = self.arena.read();
            Arc::clone(arena.get(idx)?)
        };
        let node = slot.node.lock();
        let next = slot.next.load(Ordering::Acquire);
        Some((
            slot.min_key.load(Ordering::Acquire),
            (next != NIL).then_some(next),
            node.entries.clone(),
        ))
    }

    /// Split a full node (whose lock is held): the upper half moves to a
    /// new node appended to the arena; the search-layer update is queued.
    fn split(
        &self,
        _idx: usize,
        slot: &Arc<Slot>,
        node: &mut DataNode,
        touched: &mut dyn FnMut(usize),
    ) {
        let mid = node.entries.len() / 2;
        let upper: Vec<(u64, u64)> = node.entries.split_off(mid);
        let split_key = upper[0].0;
        let new_idx = {
            // The node mutex is held but the arena lock is not, so taking
            // the write lock here cannot deadlock.
            let mut arena = self.arena.write();
            let old_next = slot.next.load(Ordering::Acquire);
            arena.push(Arc::new(Slot {
                node: Mutex::new(DataNode { entries: upper }),
                min_key: AtomicU64::new(split_key),
                next: AtomicUsize::new(old_next),
            }));
            let new_idx = arena.len() - 1;
            // Publish the new node *after* it is fully initialized.
            slot.next.store(new_idx, Ordering::Release);
            new_idx
        };
        touched(new_idx);
        self.pending.lock().push((split_key, new_idx));
        if self.cfg.sync_search_updates {
            self.flush_search_updates();
        }
    }

    /// Point lookup.
    pub fn get(&self, key: u64) -> Option<u64> {
        loop {
            let (_, slot) = self.locate(key);
            let node = slot.node.lock();
            // Re-check under the lock: a concurrent split may have moved
            // this key's range to a successor between locate and lock.
            let next = slot.next.load(Ordering::Acquire);
            if next != NIL && self.slot(next).min_key.load(Ordering::Acquire) <= key {
                continue;
            }
            return node
                .entries
                .binary_search_by_key(&key, |e| e.0)
                .ok()
                .map(|pos| node.entries[pos].1);
        }
    }

    /// Scan `count` entries starting at the first key `>= start`.
    pub fn scan(&self, start: u64, count: usize) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(count);
        let (_, mut slot) = self.locate(start);
        loop {
            let next = {
                let node = slot.node.lock();
                let from = node
                    .entries
                    .binary_search_by_key(&start, |e| e.0)
                    .unwrap_or_else(|p| p);
                for &(k, v) in &node.entries[from..] {
                    if out.len() == count {
                        return out;
                    }
                    if k >= start {
                        out.push((k, v));
                    }
                }
                slot.next.load(Ordering::Acquire)
            };
            if out.len() == count || next == NIL {
                return out;
            }
            slot = self.slot(next);
        }
    }

    /// Remove `key`; returns its value if present.
    pub fn remove(&self, key: u64) -> Option<u64> {
        loop {
            let (_, slot) = self.locate(key);
            let mut node = slot.node.lock();
            // Same split re-check as `get`.
            let next = slot.next.load(Ordering::Acquire);
            if next != NIL && self.slot(next).min_key.load(Ordering::Acquire) <= key {
                continue;
            }
            return match node.entries.binary_search_by_key(&key, |e| e.0) {
                Ok(pos) => {
                    let (_, v) = node.entries.remove(pos);
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    Some(v)
                }
                Err(_) => None,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let h = HydraList::default();
        assert!(h.is_empty());
        assert_eq!(h.insert(10, 100), None);
        assert_eq!(h.insert(20, 200), None);
        assert_eq!(h.get(10), Some(100));
        assert_eq!(h.get(20), Some(200));
        assert_eq!(h.get(15), None);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn overwrite_returns_old() {
        let h = HydraList::default();
        h.insert(1, 1);
        assert_eq!(h.insert(1, 2), Some(1));
        assert_eq!(h.get(1), Some(2));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn splits_preserve_all_keys() {
        let h = HydraList::new(HydraConfig {
            node_capacity: 8,
            sync_search_updates: true,
        });
        for k in 0..1000u64 {
            h.insert(k * 7 % 1000, k);
        }
        assert!(h.node_count() > 10, "no splits happened");
        for k in 0..1000u64 {
            assert!(h.get(k).is_some(), "lost key {k}");
        }
    }

    #[test]
    fn scan_is_ordered_and_bounded() {
        let h = HydraList::new(HydraConfig {
            node_capacity: 16,
            sync_search_updates: true,
        });
        for k in (0..500u64).rev() {
            h.insert(k * 2, k);
        }
        let out = h.scan(100, 64);
        assert_eq!(out.len(), 64);
        assert_eq!(out[0].0, 100);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        // Scan starting between keys begins at the next key.
        let out = h.scan(101, 4);
        assert_eq!(out[0].0, 102);
        // Scan past the end returns what exists.
        let out = h.scan(990, 64);
        assert_eq!(out.len(), 5); // 990, 992, 994, 996, 998
    }

    #[test]
    fn remove_works_across_splits() {
        let h = HydraList::new(HydraConfig {
            node_capacity: 8,
            sync_search_updates: true,
        });
        for k in 0..200u64 {
            h.insert(k, k);
        }
        for k in (0..200u64).step_by(2) {
            assert_eq!(h.remove(k), Some(k));
        }
        assert_eq!(h.len(), 100);
        for k in 0..200u64 {
            assert_eq!(h.get(k).is_some(), k % 2 == 1);
        }
        assert_eq!(h.remove(400), None);
    }

    #[test]
    fn stale_search_layer_is_repaired_by_walking() {
        // Async mode: splits do NOT update the search layer until flushed.
        let h = HydraList::new(HydraConfig {
            node_capacity: 4,
            sync_search_updates: false,
        });
        for k in 0..100u64 {
            h.insert(k, k + 1);
        }
        assert!(h.pending_search_updates() > 0);
        // All lookups still succeed through forward walks.
        for k in 0..100u64 {
            assert_eq!(h.get(k), Some(k + 1), "stale lookup failed for {k}");
        }
        let pending = h.pending_search_updates();
        h.flush_search_updates();
        assert_eq!(h.pending_search_updates(), 0);
        assert!(pending > 0);
        for k in 0..100u64 {
            assert_eq!(h.get(k), Some(k + 1));
        }
    }

    #[test]
    fn concurrent_inserts_and_gets() {
        let h = Arc::new(HydraList::new(HydraConfig {
            node_capacity: 16,
            sync_search_updates: true,
        }));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let k = t * 10_000 + i;
                    h.insert(k, k);
                    assert_eq!(h.get(k), Some(k));
                }
            }));
        }
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(h.len(), 2000);
        for t in 0..4u64 {
            for i in 0..500u64 {
                let k = t * 10_000 + i;
                assert_eq!(h.get(k), Some(k));
            }
        }
    }

    #[test]
    fn insert_watch_reports_touched_nodes_and_exports_chain() {
        let h = HydraList::new(HydraConfig {
            node_capacity: 4,
            sync_search_updates: true,
        });
        let mut touched = Vec::new();
        for k in 0..16u64 {
            h.insert_watch(k, k + 100, &mut |i| touched.push(i));
        }
        assert!(touched.len() >= 16, "each insert reports at least one node");
        assert!(touched.iter().any(|&i| i > 0), "splits report the new node");
        // Walking the exported chain from node 0 visits every key in order
        // (the invariant the one-sided leaf traversal relies on).
        let mut chain = Vec::new();
        let mut cur = Some(0);
        while let Some(i) = cur {
            let (min_key, next, entries) = h.export_node(i).unwrap();
            assert!(entries.iter().all(|&(k, _)| k >= min_key));
            chain.extend(entries);
            cur = next;
        }
        assert_eq!(chain.len(), 16);
        assert!(chain.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(h.export_node(h.node_count()).is_none());
    }

    #[test]
    fn scan_spanning_many_nodes() {
        let h = HydraList::new(HydraConfig {
            node_capacity: 4,
            sync_search_updates: true,
        });
        for k in 0..64u64 {
            h.insert(k, k * 10);
        }
        let out = h.scan(0, 64);
        assert_eq!(out.len(), 64);
        for (i, (k, v)) in out.iter().enumerate() {
            assert_eq!(*k, i as u64);
            assert_eq!(*v, i as u64 * 10);
        }
    }

    #[test]
    fn background_updater_keeps_lookups_correct() {
        // Async mode with a dedicated updater thread flushing the search
        // layer while writers insert — the HydraList deployment model.
        let h = Arc::new(HydraList::new(HydraConfig {
            node_capacity: 8,
            sync_search_updates: false,
        }));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let updater = {
            let h = Arc::clone(&h);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    h.flush_search_updates();
                    std::thread::yield_now();
                }
                h.flush_search_updates();
            })
        };
        let mut writers = Vec::new();
        for t in 0..3u64 {
            let h = Arc::clone(&h);
            writers.push(std::thread::spawn(move || {
                for i in 0..400u64 {
                    let k = i * 3 + t;
                    h.insert(k, k + 7);
                    assert_eq!(h.get(k), Some(k + 7));
                }
            }));
        }
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        updater.join().unwrap();
        assert_eq!(h.len(), 1200);
        assert_eq!(h.pending_search_updates(), 0);
        for t in 0..3u64 {
            for i in 0..400u64 {
                let k = i * 3 + t;
                assert_eq!(h.get(k), Some(k + 7));
            }
        }
    }

    #[test]
    fn interleaved_concurrent_inserts_split_safely() {
        // Threads insert interleaved key ranges to force split races on
        // the same nodes.
        let h = Arc::new(HydraList::new(HydraConfig {
            node_capacity: 4,
            sync_search_updates: true,
        }));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    h.insert(i * 4 + t, i);
                }
            }));
        }
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(h.len(), 2000);
        let all = h.scan(0, 2000);
        assert_eq!(all.len(), 2000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
