#![warn(missing_docs)]

//! # flock-hydralist
//!
//! A HydraList-style in-memory ordered index (Mathew & Min, VLDB 2020) —
//! the index workload of the Flock paper's §8.6 (32 M keys, 8-byte keys
//! and values, 90% get / 10% scan-64).
//!
//! HydraList splits the index into a *data layer* (a linked list of nodes,
//! each holding a sorted run of key-value pairs) and a *search layer* (an
//! ordered map from anchor keys to data nodes) that is updated
//! *asynchronously*: structural changes (node splits) enqueue search-layer
//! updates that a background pass applies later. Lookups tolerate a stale
//! search layer by walking forward in the data layer.
//!
//! This reproduction keeps that architecture: per-node locks in the data
//! layer, an `RwLock<BTreeMap>` search layer, an explicit pending-update
//! queue, and forward-walk repair on stale hits.

pub mod index;

pub use index::{HydraConfig, HydraList};
