//! Deterministic random number generation for simulations.
//!
//! Wraps a seeded xoshiro-family generator (via `rand::rngs::SmallRng`) and
//! adds the distributions the Flock experiments need: uniform ranges,
//! Bernoulli mixes, bounded Zipf, and exponential inter-arrival jitter.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded simulation RNG.
///
/// All randomness in an experiment should flow from one (or a small forest
/// of) `SimRng` values derived from the experiment seed, keeping runs
/// reproducible.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child RNG (e.g., one per client thread),
    /// decorrelated from the parent via SplitMix64 mixing.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.inner.gen::<u64>();
        SimRng::new(splitmix64(
            base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Uniform `u64` in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.inner.gen_range(0..bound)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform in `[lo, hi]` inclusive.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..=hi)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A raw 64-bit draw.
    pub fn u64(&mut self) -> u64 {
        self.inner.gen::<u64>()
    }

    /// Exponentially distributed value with the given mean (rejection-free
    /// inverse transform). Used for arrival jitter.
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Sample from a bounded Zipf distribution over `[0, n)` with skew `s`.
    ///
    /// Uses the classic rejection-inversion-free CDF walk for small `n`, and
    /// is intended for workload key popularity. `s = 0` degenerates to
    /// uniform.
    pub fn zipf(&mut self, table: &ZipfTable) -> usize {
        let u = self.f64() * table.total;
        match table
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(table.cdf.len() - 1),
        }
    }
}

/// Precomputed cumulative weights for bounded Zipf sampling.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
    total: f64,
}

impl ZipfTable {
    /// Build a table for `n` items with exponent `s >= 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfTable requires at least one item");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        ZipfTable { total: acc, cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the table is empty (never true: construction requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// SplitMix64 mixing step, used for seed derivation.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.u64() == b.u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn forked_streams_are_decorrelated() {
        let mut root = SimRng::new(7);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let same = (0..64).filter(|_| c1.u64() == c2.u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn chance_estimates_probability() {
        let mut r = SimRng::new(9);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn exp_has_requested_mean() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exp(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.25, "mean={mean}");
    }

    #[test]
    fn zipf_skews_towards_head() {
        let mut r = SimRng::new(13);
        let table = ZipfTable::new(100, 0.99);
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[r.zipf(&table)] += 1;
        }
        assert!(counts[0] > counts[50] * 5);
        // Every sample must be in range (implicitly checked by indexing).
    }

    #[test]
    fn zipf_zero_skew_is_uniformish() {
        let mut r = SimRng::new(17);
        let table = ZipfTable::new(10, 0.0);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[r.zipf(&table)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts={counts:?}");
        }
    }
}
