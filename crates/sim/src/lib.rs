#![warn(missing_docs)]

//! # flock-sim
//!
//! A small deterministic discrete-event simulation (DES) kernel used to
//! reproduce the cluster-scale experiments of the Flock paper (SOSP 2021)
//! on commodity hardware.
//!
//! The kernel provides:
//!
//! * a virtual clock in nanoseconds ([`Ns`]),
//! * an event engine ([`Sim`]) dispatching boxed closures in time order,
//! * passive FIFO resources ([`resource`]) for modelling NIC processing
//!   units, wires, and CPU cores,
//! * reproducible random number generation ([`rng`]),
//! * streaming statistics ([`stats`]) including an HDR-style log-bucket
//!   histogram for median / p99 latency series.
//!
//! Determinism: all state lives in the caller-supplied *world*; events fire
//! in `(time, sequence)` order; RNGs are explicitly seeded. Two runs with
//! the same seed produce byte-identical output.

pub mod engine;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;
pub mod vtime;

pub use engine::Sim;
pub use resource::{BankedServer, MultiServer};
pub use rng::SimRng;
pub use stats::{Counter, Histogram};
pub use time::Ns;
pub use vtime::VirtualLab;
