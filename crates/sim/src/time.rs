//! Virtual time represented as integer nanoseconds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, in nanoseconds.
///
/// `Ns` is a transparent `u64` newtype: cheap to copy, totally ordered, and
/// saturating on subtraction so that cost-model arithmetic can never panic
/// in release builds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ns(pub u64);

impl Ns {
    /// Zero time.
    pub const ZERO: Ns = Ns(0);
    /// The maximum representable time; used as an "infinitely far" sentinel.
    pub const MAX: Ns = Ns(u64::MAX);

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Ns {
        Ns(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Ns {
        Ns(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Ns {
        Ns(s * 1_000_000_000)
    }

    /// Value in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Ns) -> Ns {
        Ns(self.0.saturating_sub(rhs.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, rhs: Ns) -> Ns {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, rhs: Ns) -> Ns {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }
}

impl Add for Ns {
    type Output = Ns;
    #[inline]
    fn add(self, rhs: Ns) -> Ns {
        Ns(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Ns {
    #[inline]
    fn add_assign(&mut self, rhs: Ns) {
        *self = *self + rhs;
    }
}

impl Sub for Ns {
    type Output = Ns;
    #[inline]
    fn sub(self, rhs: Ns) -> Ns {
        Ns(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Ns {
    #[inline]
    fn sub_assign(&mut self, rhs: Ns) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Ns {
    type Output = Ns;
    #[inline]
    fn mul(self, rhs: u64) -> Ns {
        Ns(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Ns {
    type Output = Ns;
    #[inline]
    fn div(self, rhs: u64) -> Ns {
        Ns(self.0 / rhs)
    }
}

impl Sum for Ns {
    fn sum<I: Iterator<Item = Ns>>(iter: I) -> Ns {
        iter.fold(Ns::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(Ns::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Ns::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(Ns::from_secs(1).as_nanos(), 1_000_000_000);
        assert!((Ns(1_500).as_micros_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn saturating_arithmetic() {
        assert_eq!(Ns(5) - Ns(7), Ns::ZERO);
        assert_eq!(Ns::MAX + Ns(1), Ns::MAX);
        assert_eq!(Ns(4) * u64::MAX, Ns::MAX);
    }

    #[test]
    fn ordering_and_minmax() {
        assert!(Ns(1) < Ns(2));
        assert_eq!(Ns(1).max(Ns(2)), Ns(2));
        assert_eq!(Ns(1).min(Ns(2)), Ns(1));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Ns(12)), "12ns");
        assert_eq!(format!("{}", Ns(1_500)), "1.500us");
        assert_eq!(format!("{}", Ns(2_500_000)), "2.500ms");
        assert_eq!(format!("{}", Ns(3_000_000_000)), "3.000s");
    }

    #[test]
    fn sum_of_spans() {
        let total: Ns = [Ns(1), Ns(2), Ns(3)].into_iter().sum();
        assert_eq!(total, Ns(6));
    }
}
