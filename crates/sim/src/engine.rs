//! The discrete-event engine.
//!
//! [`Sim`] owns a binary heap of scheduled events. Each event is a boxed
//! `FnOnce(&mut W, &mut Sim<W>)` closure over a caller-defined *world* `W`
//! holding all model state. Events fire in `(time, sequence)` order, so
//! same-instant events run in scheduling order and the simulation is fully
//! deterministic.
//!
//! ```
//! use flock_sim::{Ns, Sim};
//!
//! struct World { ticks: u32 }
//! let mut sim = Sim::new();
//! let mut world = World { ticks: 0 };
//! sim.after(Ns(10), |w: &mut World, sim| {
//!     w.ticks += 1;
//!     sim.after(Ns(10), |w: &mut World, _| w.ticks += 1);
//! });
//! sim.run(&mut world);
//! assert_eq!(world.ticks, 2);
//! assert_eq!(sim.now(), Ns(20));
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Ns;

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>)>;

struct Scheduled<W> {
    at: Ns,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}

impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<W> Ord for Scheduled<W> {
    // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The discrete-event simulator.
///
/// Generic over the world type `W`; see the module docs for an example.
pub struct Sim<W> {
    now: Ns,
    seq: u64,
    executed: u64,
    heap: BinaryHeap<Scheduled<W>>,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// Create an empty simulator at time zero.
    pub fn new() -> Self {
        Sim {
            now: Ns::ZERO,
            seq: 0,
            executed: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `f` to run at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to `now` (the event runs at the
    /// current instant, after already-scheduled same-instant events).
    pub fn at(&mut self, at: Ns, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled {
            at,
            seq,
            f: Box::new(f),
        });
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn after(&mut self, delay: Ns, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        self.at(self.now + delay, f);
    }

    /// Run a single event if one is pending; returns whether one ran.
    pub fn step(&mut self, world: &mut W) -> bool {
        match self.heap.pop() {
            Some(ev) => {
                debug_assert!(ev.at >= self.now, "event scheduled in the past");
                self.now = ev.at;
                self.executed += 1;
                (ev.f)(world, self);
                true
            }
            None => false,
        }
    }

    /// Run until the event queue drains.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Run until the queue drains or virtual time would exceed `t_end`.
    ///
    /// Events scheduled strictly after `t_end` remain queued; the clock is
    /// left at the last executed event (or advanced to `t_end` if any events
    /// remain beyond it).
    pub fn run_until(&mut self, world: &mut W, t_end: Ns) {
        while let Some(head) = self.heap.peek() {
            if head.at > t_end {
                self.now = t_end;
                return;
            }
            self.step(world);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct W {
        order: Vec<u32>,
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new();
        let mut w = W::default();
        sim.at(Ns(30), |w: &mut W, _| w.order.push(3));
        sim.at(Ns(10), |w: &mut W, _| w.order.push(1));
        sim.at(Ns(20), |w: &mut W, _| w.order.push(2));
        sim.run(&mut w);
        assert_eq!(w.order, vec![1, 2, 3]);
        assert_eq!(sim.now(), Ns(30));
        assert_eq!(sim.executed(), 3);
    }

    #[test]
    fn same_instant_events_fire_fifo() {
        let mut sim = Sim::new();
        let mut w = W::default();
        for i in 0..16 {
            sim.at(Ns(5), move |w: &mut W, _| w.order.push(i));
        }
        sim.run(&mut w);
        assert_eq!(w.order, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new();
        let mut w = W::default();
        fn tick(w: &mut W, sim: &mut Sim<W>) {
            let n = w.order.len() as u32;
            w.order.push(n);
            if n < 4 {
                sim.after(Ns(7), tick);
            }
        }
        sim.after(Ns(7), tick);
        sim.run(&mut w);
        assert_eq!(w.order, vec![0, 1, 2, 3, 4]);
        assert_eq!(sim.now(), Ns(35));
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim = Sim::new();
        let mut w = W::default();
        sim.at(Ns(100), |w: &mut W, sim| {
            w.order.push(1);
            sim.at(Ns(1), |w: &mut W, _| w.order.push(2));
        });
        sim.run(&mut w);
        assert_eq!(w.order, vec![1, 2]);
        assert_eq!(sim.now(), Ns(100));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new();
        let mut w = W::default();
        sim.at(Ns(10), |w: &mut W, _| w.order.push(1));
        sim.at(Ns(50), |w: &mut W, _| w.order.push(2));
        sim.run_until(&mut w, Ns(20));
        assert_eq!(w.order, vec![1]);
        assert_eq!(sim.now(), Ns(20));
        assert_eq!(sim.pending(), 1);
        sim.run(&mut w);
        assert_eq!(w.order, vec![1, 2]);
    }

    #[test]
    fn step_on_empty_returns_false() {
        let mut sim: Sim<W> = Sim::new();
        let mut w = W::default();
        assert!(!sim.step(&mut w));
    }
}
