//! Streaming statistics: counters and an HDR-style log-bucket histogram.
//!
//! The histogram stores values (typically latencies in nanoseconds) in
//! buckets with bounded relative error (~3% by default), supporting
//! constant-time record and fast percentile queries — exactly what is
//! needed to report the median and 99th-percentile series of the paper's
//! latency figures.

use crate::time::Ns;

/// A monotonically increasing event counter with a byte tally.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counter {
    /// Number of events.
    pub events: u64,
    /// Accumulated bytes (or any secondary magnitude).
    pub bytes: u64,
}

impl Counter {
    /// Record one event carrying `bytes`.
    #[inline]
    pub fn record(&mut self, bytes: u64) {
        self.events += 1;
        self.bytes += bytes;
    }

    /// Events per second over an elapsed virtual span.
    pub fn rate(&self, elapsed: Ns) -> f64 {
        if elapsed == Ns::ZERO {
            return 0.0;
        }
        self.events as f64 / elapsed.as_secs_f64()
    }

    /// Millions of events per second over an elapsed virtual span.
    pub fn mops(&self, elapsed: Ns) -> f64 {
        self.rate(elapsed) / 1e6
    }

    /// Gigabits per second over an elapsed virtual span.
    pub fn gbps(&self, elapsed: Ns) -> f64 {
        if elapsed == Ns::ZERO {
            return 0.0;
        }
        self.bytes as f64 * 8.0 / elapsed.as_secs_f64() / 1e9
    }
}

const SUB_BUCKET_BITS: u32 = 5; // 32 linear sub-buckets per power of two
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// A log-linear histogram with ~3% relative bucket width.
///
/// Values are `u64` (nanoseconds in practice). Zero is stored in its own
/// bucket. Memory: 64 * 32 u64 counters (16 KiB) regardless of range.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; 64 * SUB_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn bucket_of(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUB_BUCKET_BITS;
        let sub = ((value >> shift) as usize) & (SUB_BUCKETS - 1);
        ((msb - SUB_BUCKET_BITS + 1) as usize) * SUB_BUCKETS + sub
    }

    /// Representative (lower-bound) value of bucket `i`.
    fn bucket_value(i: usize) -> u64 {
        let major = i / SUB_BUCKETS;
        let sub = (i % SUB_BUCKETS) as u64;
        if major == 0 {
            return sub;
        }
        let shift = (major - 1) as u32;
        ((SUB_BUCKETS as u64) + sub) << shift
    }

    /// Record a single value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        self.counts[b] += 1;
        self.total += 1;
        self.sum += value as u128;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn record_ns(&mut self, value: Ns) {
        self.record(value.as_nanos());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded values, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Minimum recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Maximum recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]` (bucket lower bound), or 0 if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(i);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn median(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Median in microseconds.
    pub fn median_us(&self) -> f64 {
        self.median() as f64 / 1_000.0
    }

    /// 99th percentile in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.p99() as f64 / 1_000.0
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_rates() {
        let mut c = Counter::default();
        for _ in 0..1_000_000 {
            c.events += 1;
        }
        c.bytes = 125_000_000; // 1 Gbit
        assert!((c.mops(Ns::from_secs(1)) - 1.0).abs() < 1e-9);
        assert!((c.gbps(Ns::from_secs(1)) - 1.0).abs() < 1e-9);
        assert_eq!(c.rate(Ns::ZERO), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 31);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.04, "q={q} got={got} expect={expect} rel={rel}");
        }
    }

    #[test]
    fn mean_and_count() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(30);
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.median(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_combines_populations() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=1000 {
            a.record(v);
        }
        for v in 9001..=10_000 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 2000);
        let med = a.quantile(0.5) as f64;
        assert!((900.0..1100.0).contains(&med) || (0.0..1100.0).contains(&med));
        let p99 = a.p99() as f64;
        assert!(p99 > 9_000.0, "p99={p99}");
        assert_eq!(a.max(), 10_000);
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new();
        h.record(123);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn large_values_survive() {
        let mut h = Histogram::new();
        let v = u64::MAX / 2;
        h.record(v);
        assert_eq!(h.count(), 1);
        let got = h.quantile(1.0) as f64;
        let rel = (got - v as f64).abs() / v as f64;
        assert!(rel < 0.04);
    }
}
