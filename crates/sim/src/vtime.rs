//! Virtual-time execution of *real* threaded code.
//!
//! [`VirtualLab`] implements the [`flock_sync::clock::Executor`] seam:
//! it runs ordinary multi-threaded code — the actual server dispatch
//! loops, NIC engine lanes, and client threads from `flock-core` /
//! `flock-fabric` — as **cooperatively scheduled virtual cores** under a
//! deterministic virtual clock.
//!
//! ## How it works
//!
//! Every task spawned through `clock::spawn` gets its own OS thread, but
//! the lab guarantees that **exactly one task executes at any wall
//! instant**. All other tasks are parked on per-task condvars. A task
//! runs until it yields through the seam (`yield_now`, `sleep_ns`, an
//! [`flock_sync::AdaptiveBackoff::idle`] round, a [`flock_sync::backoff`]
//! spin, …). The yield:
//!
//! 1. pushes the task back onto a binary heap keyed by
//!    `(wake_time, sequence)` — wake time is `now + charged cost`,
//!    clamped to strictly advance;
//! 2. pops the earliest entry, advances the virtual clock to its wake
//!    time, and hands it the core (waking its parked thread);
//! 3. parks itself until its own entry is popped.
//!
//! Because execution is serialized and wake-ups follow a total
//! `(time, sequence)` order, the interleaving — and therefore every
//! counter, histogram, and byte of benchmark output — is a pure function
//! of the program and its seeds. The scheme is the cooperative-task twin
//! of the event-closure engine in [`crate::engine`]: same heap
//! discipline, but the "events" are suspension points of real code
//! instead of boxed closures, so the production hot path runs unmodified
//! with any simulated degree of parallelism on a single host CPU.
//!
//! ## Rules for code running under the lab
//!
//! * Never block on an OS primitive (channel `recv`, condvar wait, bare
//!   `thread::sleep`) — the core would never be handed over and the lab
//!   deadlocks. Blocking sites must poll (`try_recv`) and yield through
//!   the seam; the fabric/core crates branch on `clock::is_virtual()`.
//! * Never yield while holding a lock another task can contend (the
//!   holder parks; the contender then spins forever as the only runnable
//!   task). All converted sites drop locks before yielding, as the
//!   threaded code already did.
//! * Join tasks through [`flock_sync::clock::TaskHandle::join`], which
//!   polls in virtual time, never via a bare `JoinHandle`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use flock_sync::clock::{self, Executor, TaskHandle};

/// Virtual cost of one bare yield, and the minimum advance of any
/// suspension: no task can occupy the core for zero virtual time, so
/// same-instant yield livelocks (producer spinning on a consumer
/// scheduled later) are impossible by construction.
pub const YIELD_COST_NS: u64 = 50;

/// Go-flag parker for one task's OS thread.
///
/// Stateful on purpose: a wake that races ahead of the park (the core is
/// handed to a task whose thread has not reached `park` yet, e.g. right
/// after spawn) is remembered by the flag.
struct TaskSlot {
    run: Mutex<bool>,
    cv: Condvar,
}

impl TaskSlot {
    fn new() -> TaskSlot {
        TaskSlot {
            run: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn park(&self) {
        let mut go = self.run.lock().expect("task slot poisoned");
        while !*go {
            go = self.cv.wait(go).expect("task slot poisoned");
        }
        *go = false;
    }

    fn wake(&self) {
        *self.run.lock().expect("task slot poisoned") = true;
        self.cv.notify_one();
    }
}

struct LabState {
    now: u64,
    seq: u64,
    /// `Reverse((wake_ns, seq, task_id))`: min-heap on (time, sequence).
    /// Invariant: every live task except `current` has exactly one entry.
    heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
    /// Slot per task id; `None` = id free (on `free_ids`).
    slots: Vec<Option<Arc<TaskSlot>>>,
    free_ids: Vec<usize>,
    /// The task currently holding the core.
    current: usize,
    /// Registered tasks, including the root.
    live: usize,
    handovers: u64,
    tasks_spawned: u64,
}

struct LabInner {
    state: Mutex<LabState>,
}

/// Deterministic virtual-time executor; see the module docs.
///
/// Cheap to clone (shared interior). Install into a run with
/// [`VirtualLab::run`].
#[derive(Clone)]
pub struct VirtualLab {
    inner: Arc<LabInner>,
}

/// Summary of a completed [`VirtualLab::run_report`].
#[derive(Debug, Clone, Copy)]
pub struct LabReport {
    /// Final virtual clock value.
    pub virtual_ns: u64,
    /// Core handovers (suspension points crossed) — the virtual analogue
    /// of the event count in [`crate::engine::Sim::executed`].
    pub handovers: u64,
    /// Tasks spawned over the run (excluding the root).
    pub tasks_spawned: u64,
}

impl VirtualLab {
    fn new() -> VirtualLab {
        VirtualLab {
            inner: Arc::new(LabInner {
                state: Mutex::new(LabState {
                    now: 0,
                    seq: 0,
                    heap: BinaryHeap::new(),
                    slots: Vec::new(),
                    free_ids: Vec::new(),
                    current: 0,
                    live: 0,
                    handovers: 0,
                    tasks_spawned: 0,
                }),
            }),
        }
    }

    /// Run `f` as the root task of a fresh lab and return its result.
    ///
    /// `f` executes on the calling thread with the lab installed as its
    /// executor; everything it spawns through `clock::spawn` becomes a
    /// virtual task. `f` must join all tasks it spawned before
    /// returning (the production shutdown paths already do), otherwise
    /// this panics — a leaked virtual task would block on a core that no
    /// longer exists.
    pub fn run<R>(f: impl FnOnce() -> R) -> R {
        Self::run_report(f).0
    }

    /// Like [`VirtualLab::run`], but also return run statistics.
    pub fn run_report<R>(f: impl FnOnce() -> R) -> (R, LabReport) {
        let lab = VirtualLab::new();
        {
            let mut st = lab.inner.state.lock().expect("lab poisoned");
            st.slots.push(Some(Arc::new(TaskSlot::new())));
            st.live = 1;
            st.current = 0;
        }
        let guard = clock::install(Arc::new(lab.clone()));
        let result = f();
        drop(guard);
        let st = lab.inner.state.lock().expect("lab poisoned");
        assert_eq!(
            st.live, 1,
            "VirtualLab::run returned with {} spawned task(s) still live; join all tasks before returning",
            st.live - 1
        );
        let report = LabReport {
            virtual_ns: st.now,
            handovers: st.handovers,
            tasks_spawned: st.tasks_spawned,
        };
        (result, report)
    }

    /// Deregister the calling (current) task and hand the core to the
    /// next scheduled one. Called by the spawn wrapper after the task
    /// body returns; `finished` is published under the lab lock, before
    /// the handover, so joiners observe it at a deterministic virtual
    /// instant.
    fn exit_current(&self, finished: &AtomicBool) {
        let next = {
            let mut st = self.inner.state.lock().expect("lab poisoned");
            let me = st.current;
            st.slots[me] = None;
            st.free_ids.push(me);
            st.live -= 1;
            finished.store(true, Ordering::Release);
            if st.live == 0 {
                None
            } else {
                let Reverse((t, _, id)) = st
                    .heap
                    .pop()
                    .expect("virtual-time deadlock: live tasks but none runnable");
                st.now = st.now.max(t);
                st.current = id;
                st.handovers += 1;
                Some(st.slots[id].clone().expect("scheduled task has no slot"))
            }
        };
        if let Some(slot) = next {
            slot.wake();
        }
    }
}

impl Executor for VirtualLab {
    fn now_ns(&self) -> u64 {
        self.inner.state.lock().expect("lab poisoned").now
    }

    fn advance(&self, ns: u64) {
        // Strictly positive advance: see YIELD_COST_NS.
        let ns = ns.max(1);
        let (next, mine) = {
            let mut st = self.inner.state.lock().expect("lab poisoned");
            let me = st.current;
            let wake = st.now.saturating_add(ns);
            let seq = st.seq;
            st.seq += 1;
            st.heap.push(Reverse((wake, seq, me)));
            let Reverse((t, _, id)) = st
                .heap
                .pop()
                .expect("virtual-time deadlock: no runnable task");
            st.now = st.now.max(t);
            st.current = id;
            st.handovers += 1;
            if id == me {
                // Fast path: we are still the earliest task; keep the core.
                return;
            }
            (
                st.slots[id].clone().expect("scheduled task has no slot"),
                st.slots[me].clone().expect("running task has no slot"),
            )
        };
        next.wake();
        mine.park();
    }

    fn spawn_task(&self, name: String, f: Box<dyn FnOnce() + Send>) -> TaskHandle {
        let slot = Arc::new(TaskSlot::new());
        {
            let mut st = self.inner.state.lock().expect("lab poisoned");
            let id = match st.free_ids.pop() {
                Some(id) => id,
                None => {
                    st.slots.push(None);
                    st.slots.len() - 1
                }
            };
            st.slots[id] = Some(slot.clone());
            st.live += 1;
            st.tasks_spawned += 1;
            // First wake-up at the current instant, in spawn order; the
            // spawner keeps the core until its own next yield.
            let seq = st.seq;
            st.seq += 1;
            let now = st.now;
            st.heap.push(Reverse((now, seq, id)));
        }
        let lab = self.clone();
        let finished = Arc::new(AtomicBool::new(false));
        let fin = finished.clone();
        let thread = std::thread::Builder::new()
            .name(name)
            // Virtual tasks number in the hundreds at paper scale; keep
            // their address-space reservation small.
            .stack_size(512 * 1024)
            .spawn(move || {
                let _guard = clock::install(Arc::new(lab.clone()));
                slot.park(); // wait to be scheduled for the first time
                f();
                lab.exit_current(&fin);
            })
            .expect("spawn virtual task thread");
        TaskHandle::virtualized(thread, finished)
    }

    fn yield_cost_ns(&self) -> u64 {
        YIELD_COST_NS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn clock_starts_at_zero_and_sleep_advances() {
        let report = VirtualLab::run_report(|| {
            assert!(clock::is_virtual());
            assert_eq!(clock::now_ns(), 0);
            clock::sleep_ns(1_000);
            assert_eq!(clock::now_ns(), 1_000);
            clock::yield_now();
            assert_eq!(clock::now_ns(), 1_000 + YIELD_COST_NS);
        })
        .1;
        assert_eq!(report.virtual_ns, 1_000 + YIELD_COST_NS);
        assert_eq!(report.tasks_spawned, 0);
    }

    #[test]
    fn charge_applies_at_next_yield() {
        VirtualLab::run(|| {
            clock::charge(300);
            clock::charge(200);
            assert_eq!(clock::now_ns(), 0); // not yet applied
            clock::flush_charge();
            assert_eq!(clock::now_ns(), 500);
            clock::flush_charge(); // nothing pending: no advance
            assert_eq!(clock::now_ns(), 500);
        });
    }

    #[test]
    fn tasks_interleave_in_virtual_time_order() {
        let order = Arc::new(Mutex::new(Vec::new()));
        VirtualLab::run({
            let order = order.clone();
            move || {
                let mk = |tag: &'static str,
                          period: u64,
                          order: Arc<Mutex<Vec<(u64, &'static str)>>>| {
                    clock::spawn(tag, move || {
                        for _ in 0..3 {
                            clock::sleep_ns(period);
                            order.lock().unwrap().push((clock::now_ns(), tag));
                        }
                    })
                };
                let a = mk("a", 100, order.clone());
                let b = mk("b", 70, order.clone());
                a.join().unwrap();
                b.join().unwrap();
            }
        });
        let got = order.lock().unwrap().clone();
        assert_eq!(
            got,
            vec![
                (70, "b"),
                (100, "a"),
                (140, "b"),
                (200, "a"),
                (210, "b"),
                (300, "a"),
            ]
        );
    }

    #[test]
    fn runs_are_deterministic() {
        fn run_once() -> (Vec<u64>, u64) {
            let log = Arc::new(Mutex::new(Vec::new()));
            let counter = Arc::new(AtomicU64::new(0));
            let report = VirtualLab::run_report({
                let log = log.clone();
                move || {
                    let handles: Vec<_> = (0..8)
                        .map(|i| {
                            let log = log.clone();
                            let counter = counter.clone();
                            clock::spawn(&format!("w{i}"), move || {
                                for _ in 0..20 {
                                    clock::sleep_ns(37 + i * 13);
                                    let v = counter.fetch_add(1, Ordering::Relaxed);
                                    log.lock().unwrap().push(v * 1_000_000 + clock::now_ns());
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                }
            })
            .1;
            let log = log.lock().unwrap().clone();
            (log, report.handovers)
        }
        let (log1, h1) = run_once();
        let (log2, h2) = run_once();
        assert_eq!(log1, log2);
        assert_eq!(h1, h2);
    }

    #[test]
    fn spawned_task_starts_at_spawn_instant() {
        VirtualLab::run(|| {
            clock::sleep_ns(500);
            let started = Arc::new(AtomicU64::new(u64::MAX));
            let s = started.clone();
            let h = clock::spawn("child", move || {
                s.store(clock::now_ns(), Ordering::Relaxed);
            });
            h.join().unwrap();
            // The child's first schedule is at the spawn instant (the
            // joiner's poll sleeps past it, but the child ran at 500).
            assert_eq!(started.load(Ordering::Relaxed), 500);
        });
    }

    #[test]
    fn backoff_and_adaptive_backoff_advance_virtual_time() {
        VirtualLab::run(|| {
            let t0 = clock::now_ns();
            flock_sync::backoff(0);
            assert!(clock::now_ns() > t0);
            let mut b = flock_sync::AdaptiveBackoff::new(std::time::Duration::from_micros(5));
            let t1 = clock::now_ns();
            for _ in 0..32 {
                b.idle();
            }
            // Escalates to the cap without wall-clock sleeping.
            assert!(clock::now_ns() - t1 >= 5_000);
        });
    }

    #[test]
    #[should_panic(expected = "still live")]
    fn leaked_task_panics_at_run_end() {
        VirtualLab::run(|| {
            // Spawn a task that idles forever, and leak its handle.
            std::mem::forget(clock::spawn("leak", || loop {
                clock::sleep_ns(1_000_000);
            }));
            clock::sleep_ns(10_000);
        });
    }
}
