//! Passive FIFO resources in virtual time.
//!
//! A *passive* resource does not schedule events itself; the caller admits a
//! job with its arrival time and service demand and receives the computed
//! `(start, end)` interval, then schedules the downstream event at `end`.
//! This models non-preemptive FIFO servers — NIC processing units, wire
//! serialization, polling CPU cores — with a tiny amount of state.
//!
//! Correctness requires jobs be admitted in nondecreasing arrival-time
//! order, which holds naturally when admission happens inside DES events.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Ns;

/// A FIFO queueing station with `k` identical parallel servers.
///
/// Jobs are served in admission order by the earliest-available server.
#[derive(Debug, Clone)]
pub struct MultiServer {
    free_at: BinaryHeap<Reverse<Ns>>,
    busy: Ns,
    jobs: u64,
}

impl MultiServer {
    /// Create a station with `k >= 1` servers, all idle at time zero.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "MultiServer requires at least one server");
        let mut free_at = BinaryHeap::with_capacity(k);
        for _ in 0..k {
            free_at.push(Reverse(Ns::ZERO));
        }
        MultiServer {
            free_at,
            busy: Ns::ZERO,
            jobs: 0,
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// Admit a job arriving at `arrival` needing `service` time.
    ///
    /// Returns `(start, end)`: the job starts at the later of its arrival
    /// and the earliest server-free instant, and completes `service` later.
    pub fn admit(&mut self, arrival: Ns, service: Ns) -> (Ns, Ns) {
        let Reverse(avail) = self.free_at.pop().expect("at least one server");
        let start = arrival.max(avail);
        let end = start + service;
        self.free_at.push(Reverse(end));
        self.busy += service;
        self.jobs += 1;
        (start, end)
    }

    /// Total service time accumulated across all servers.
    pub fn busy_time(&self) -> Ns {
        self.busy
    }

    /// Number of jobs admitted.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilization in `[0, 1]` over a horizon of `elapsed` virtual time.
    pub fn utilization(&self, elapsed: Ns) -> f64 {
        if elapsed == Ns::ZERO {
            return 0.0;
        }
        self.busy.as_nanos() as f64 / (elapsed.as_nanos() as f64 * self.servers() as f64)
    }
}

/// A bank of single-server FIFO stations with static job-to-bank affinity.
///
/// This models an RNIC's processing units: a queue pair is statically hashed
/// to one unit, so few QPs exploit few units — the left-hand rise of the
/// paper's Figure 2(a) — while many QPs spread across all of them.
#[derive(Debug, Clone)]
pub struct BankedServer {
    free_at: Vec<Ns>,
    busy: Ns,
    jobs: u64,
}

impl BankedServer {
    /// Create `k >= 1` banks, all idle at time zero.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "BankedServer requires at least one bank");
        BankedServer {
            free_at: vec![Ns::ZERO; k],
            busy: Ns::ZERO,
            jobs: 0,
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.free_at.len()
    }

    /// Admit a job with affinity `key` (hashed to a bank) arriving at
    /// `arrival` needing `service` time. Returns `(start, end)`.
    pub fn admit(&mut self, key: u64, arrival: Ns, service: Ns) -> (Ns, Ns) {
        let bank = (key % self.free_at.len() as u64) as usize;
        let start = arrival.max(self.free_at[bank]);
        let end = start + service;
        self.free_at[bank] = end;
        self.busy += service;
        self.jobs += 1;
        (start, end)
    }

    /// Total accumulated service time.
    pub fn busy_time(&self) -> Ns {
        self.busy
    }

    /// Number of jobs admitted.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_is_fifo() {
        let mut r = MultiServer::new(1);
        let (s1, e1) = r.admit(Ns(0), Ns(10));
        assert_eq!((s1, e1), (Ns(0), Ns(10)));
        // Arrives while busy: queued behind job 1.
        let (s2, e2) = r.admit(Ns(3), Ns(10));
        assert_eq!((s2, e2), (Ns(10), Ns(20)));
        // Arrives after idle gap: starts immediately.
        let (s3, e3) = r.admit(Ns(50), Ns(5));
        assert_eq!((s3, e3), (Ns(50), Ns(55)));
        assert_eq!(r.busy_time(), Ns(25));
        assert_eq!(r.jobs(), 3);
    }

    #[test]
    fn two_servers_run_in_parallel() {
        let mut r = MultiServer::new(2);
        let (_, e1) = r.admit(Ns(0), Ns(10));
        let (_, e2) = r.admit(Ns(0), Ns(10));
        assert_eq!(e1, Ns(10));
        assert_eq!(e2, Ns(10));
        // Third job waits for the earliest of the two.
        let (s3, _) = r.admit(Ns(1), Ns(1));
        assert_eq!(s3, Ns(10));
    }

    #[test]
    fn utilization_accounts_for_all_servers() {
        let mut r = MultiServer::new(2);
        r.admit(Ns(0), Ns(10));
        assert!((r.utilization(Ns(10)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn banked_server_respects_affinity() {
        let mut b = BankedServer::new(2);
        // Keys 0 and 2 hash to bank 0; serialized.
        let (_, e1) = b.admit(0, Ns(0), Ns(10));
        let (s2, _) = b.admit(2, Ns(0), Ns(10));
        assert_eq!(e1, Ns(10));
        assert_eq!(s2, Ns(10));
        // Key 1 hashes to bank 1; parallel.
        let (s3, _) = b.admit(1, Ns(0), Ns(10));
        assert_eq!(s3, Ns(0));
        assert_eq!(b.jobs(), 3);
        assert_eq!(b.busy_time(), Ns(30));
    }

    #[test]
    #[should_panic]
    fn zero_servers_rejected() {
        let _ = MultiServer::new(0);
    }
}
