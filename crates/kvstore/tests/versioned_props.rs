//! Property-based tests of the version/lock word (`flock_kvstore::versioned`).
//!
//! The word is the contract between the store's write path and every
//! remote validator — FlockTX's validation read and the one-sided
//! seqlock reader (`flock_core::onesided`) both reject a snapshot whose
//! word is locked or changed. These properties pin the invariants those
//! readers rely on:
//!
//! * **Round-trip** — lock state and version encode/decode losslessly
//!   for any 63-bit version.
//! * **Torn-read detection** — a reader sampling the word at any point
//!   of any lock/publish schedule never accepts a mid-write snapshot:
//!   every accepted (unlocked) word is one of the committed versions.
//! * **Monotonicity** — versions only grow across lock/publish cycles,
//!   and aborts never change the version.

use proptest::collection::vec;
use proptest::prelude::*;

use flock_kvstore::{VersionEntry, LOCK_BIT};

/// One step of a writer schedule: `(commit, value)` — `try_lock`, then
/// publish `value` and unlock (commit) or release without publishing
/// (abort).
type Step = (bool, Vec<u8>);

fn step_strategy() -> impl Strategy<Value = Step> {
    (any::<bool>(), vec(any::<u8>(), 0..16usize))
}

proptest! {
    /// Lock bit and version are independent fields of the word: any
    /// 63-bit version round-trips unchanged through lock/unlock.
    #[test]
    fn word_roundtrip(version in 0u64..(1 << 63)) {
        let mut e = VersionEntry::new(Vec::new());
        e.word = version;
        prop_assert!(!e.is_locked());
        prop_assert_eq!(e.version(), version);
        if e.try_lock() {
            prop_assert!(e.is_locked());
            prop_assert_eq!(e.version(), version, "locking must not disturb the version");
            prop_assert_eq!(e.word, version | LOCK_BIT);
            e.unlock();
            prop_assert!(!e.is_locked());
            prop_assert_eq!(e.version(), version, "abort must not bump the version");
        }
    }

    /// Drive an arbitrary commit/abort schedule and sample the word
    /// after every sub-step, as a one-sided reader would. An unlocked
    /// word is always a committed version — never a mid-write state —
    /// and a locked word is always rejected.
    #[test]
    fn torn_reads_are_detectable(steps in vec(step_strategy(), 1..32)) {
        let mut e = VersionEntry::new(vec![0xAB]);
        let mut committed = vec![e.word];
        for step in steps {
            prop_assert!(e.try_lock(), "unlocked entry must lock");
            // Mid-write sample: the reader must reject this snapshot.
            prop_assert!(e.is_locked());
            prop_assert!(e.word & LOCK_BIT != 0);
            let (commit, value) = step;
            if commit {
                e.update_and_unlock(value);
                committed.push(e.word);
            } else {
                e.unlock();
            }
            // Post-step sample: an accepted (unlocked) word is exactly
            // one of the committed versions.
            prop_assert!(!e.is_locked());
            prop_assert!(committed.contains(&e.word), "accepted word is not a committed version");
        }
    }

    /// Versions never decrease across any schedule, bump by exactly one
    /// per commit, and stay fixed across aborts.
    #[test]
    fn version_is_monotonic(steps in vec(step_strategy(), 1..64)) {
        let mut e = VersionEntry::new(Vec::new());
        let mut last = e.version();
        let mut commits = 0u64;
        for step in steps {
            prop_assert!(e.try_lock());
            let before = e.version();
            let (commit, value) = step;
            if commit {
                e.update_and_unlock(value);
                commits += 1;
                prop_assert_eq!(e.version(), before + 1, "commit bumps by exactly one");
            } else {
                e.unlock();
                prop_assert_eq!(e.version(), before, "abort leaves the version alone");
            }
            prop_assert!(e.version() >= last, "version went backwards");
            last = e.version();
        }
        prop_assert_eq!(e.version(), 1 + commits, "final version counts the commits");
    }
}
