//! Version/lock words for optimistic concurrency control.

/// Bit 63 of a version word: the entry is locked by a writer.
pub const LOCK_BIT: u64 = 1 << 63;

/// A versioned, lockable value.
#[derive(Debug, Clone)]
pub struct VersionEntry {
    /// The value bytes.
    pub value: Vec<u8>,
    /// Version/lock word: bit 63 = locked, low bits = version counter.
    pub word: u64,
}

impl VersionEntry {
    /// A fresh unlocked entry at version 1.
    pub fn new(value: Vec<u8>) -> VersionEntry {
        VersionEntry { value, word: 1 }
    }

    /// Whether the lock bit is set.
    pub fn is_locked(&self) -> bool {
        self.word & LOCK_BIT != 0
    }

    /// The version (lock bit masked off).
    pub fn version(&self) -> u64 {
        self.word & !LOCK_BIT
    }

    /// Try to acquire the lock; returns `false` if already locked.
    pub fn try_lock(&mut self) -> bool {
        if self.is_locked() {
            return false;
        }
        self.word |= LOCK_BIT;
        true
    }

    /// Release the lock without changing the version (abort path).
    pub fn unlock(&mut self) {
        self.word &= !LOCK_BIT;
    }

    /// Install a new value, bump the version, and release the lock
    /// (commit path).
    pub fn update_and_unlock(&mut self, value: Vec<u8>) {
        self.value = value;
        self.word = (self.version() + 1) & !LOCK_BIT;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_entry_is_unlocked_v1() {
        let e = VersionEntry::new(vec![1]);
        assert!(!e.is_locked());
        assert_eq!(e.version(), 1);
    }

    #[test]
    fn lock_unlock_cycle() {
        let mut e = VersionEntry::new(vec![]);
        assert!(e.try_lock());
        assert!(e.is_locked());
        assert!(!e.try_lock());
        e.unlock();
        assert!(!e.is_locked());
        assert_eq!(e.version(), 1, "abort must not bump the version");
    }

    #[test]
    fn commit_bumps_version_and_unlocks() {
        let mut e = VersionEntry::new(vec![1]);
        assert!(e.try_lock());
        e.update_and_unlock(vec![2]);
        assert!(!e.is_locked());
        assert_eq!(e.version(), 2);
        assert_eq!(e.value, vec![2]);
    }

    #[test]
    fn version_survives_many_commits() {
        let mut e = VersionEntry::new(vec![]);
        for i in 0..100 {
            assert!(e.try_lock());
            e.update_and_unlock(vec![i as u8]);
        }
        assert_eq!(e.version(), 101);
    }
}
