//! Read-path selection: RPC, one-sided, or adaptive.
//!
//! The store itself is access-path agnostic; this module is the *policy*
//! layer consumed by clients (the gateway's `KvClient`) that can reach a
//! value either through a coalesced Flock RPC or through a raw one-sided
//! READ of an exported value segment (`flock_core::onesided`). Which
//! path wins is exactly the crossover this repo measures (`bench_onesided`,
//! EXPERIMENTS.md "RPC vs one-sided crossover"):
//!
//! * **One-sided** pays one NIC verb and zero server CPU per read, but
//!   every read moves the whole slot (header + value capacity), cannot
//!   coalesce with neighbors, and must retry when a concurrent writer
//!   holds the slot's seqlock.
//! * **RPC** pays two verbs amortized over the coalescing degree plus a
//!   server dispatch, but moves only the live bytes and is immune to
//!   torn reads.
//!
//! [`AdaptivePolicy`] tracks the client-observable quantities those
//! costs hinge on — value size, validation retry rate, and per-path
//! read latency — as EWMAs and picks the path per read. Latency is the
//! only signal that reflects the *responder's* state: past the fan-in
//! crossover the server NIC's connection cache no longer holds every
//! client's one-sided QP and each READ pays a state fetch, which a
//! client sees purely as one-sided reads slowing down relative to RPC.
//! A deterministic probe (every [`AdaptivePolicy::PROBE_PERIOD`]-th
//! read takes the currently losing path) keeps both latency EWMAs live
//! so the policy can cross back. The defaults mirror the measured
//! thresholds in EXPERIMENTS.md.
//!
//! A measured honesty note (EXPERIMENTS.md, "Adaptive and the limits
//! of client-side signals"): past the fan-in crossover the latency
//! latch does *not* rescue a whole cohort running Adaptive. The thrash
//! is a commons problem — the responder cache miss inflates the tail
//! (p99) and stretches everyone's run, but each client's *typical*
//! one-sided read still completes faster than an RPC probe, because
//! the probe's response ride shares the same evicted connection cache.
//! A greedy per-client latency comparison therefore keeps choosing
//! one-sided even while aggregate throughput is ~2x worse; escaping
//! the equilibrium needs coordination, which is precisely Flock's
//! argument for designing around shared-QP RPCs rather than adapting
//! per client. The latch still earns its keep against *visible*
//! degradation (a genuinely slow remote path, gross oversubscription),
//! and the size and retry axes track the crossover exactly.

/// How a client reads a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadMode {
    /// Always through the coalesced Flock RPC path.
    #[default]
    Rpc,
    /// Always through one-sided READ + version validation.
    OneSided,
    /// Per-read choice from an [`AdaptivePolicy`].
    Adaptive,
}

/// EWMA-driven policy behind [`ReadMode::Adaptive`].
///
/// Deterministic: the state is two `f64` EWMAs updated in call order, so
/// a `VirtualLab` run replays identically.
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    ewma_size: f64,
    ewma_retries: f64,
    /// Per-path read latency EWMAs (ns); 0.0 until first observation.
    ewma_lat_os: f64,
    ewma_lat_rpc: f64,
    /// Hysteresis latch: set when one-sided latency crossed
    /// [`Self::LAT_RATIO_UP`] × RPC, cleared only below
    /// [`Self::LAT_RATIO_DOWN`] ×. Without the latch the policy
    /// oscillates: the moment a cohort abandons one-sided reads the
    /// responder cache recovers, probes look healthy again, and
    /// everyone piles back in (see the module doc).
    lat_rpc_latched: bool,
    /// Reads decided so far (drives the probe cadence).
    reads: u64,
    alpha: f64,
    size_cutover: f64,
    retry_cutover: f64,
}

impl AdaptivePolicy {
    /// Smoothing factor: ~1/32 weight per observation, long enough to
    /// ride out bursts, short enough to track a phase change within a
    /// few hundred reads.
    pub const ALPHA: f64 = 1.0 / 32.0;
    /// Value size (bytes) above which the RPC path is preferred: the
    /// bench geometry's slot stride. EXPERIMENTS.md's oversize rows pin
    /// the measured size threshold at the mirror's inline capacity
    /// (448 B inline / 512 B stride): past it every one-sided READ is a
    /// wasted verb before the RPC fallback, and RPC wins at *all*
    /// client counts.
    pub const SIZE_CUTOVER: f64 = 512.0;
    /// Validation retries per read above which the RPC path is
    /// preferred: retries multiply the one-sided verb count while the
    /// RPC path is immune to torn reads.
    pub const RETRY_CUTOVER: f64 = 0.125;
    /// One-sided reads beyond this factor of the RPC latency EWMA trip
    /// the latch: the responder is visibly struggling to keep the
    /// one-sided QPs resident. Generous enough that the small-fan-in
    /// regime (where one-sided is *faster*) never trips it by noise.
    pub const LAT_RATIO_UP: f64 = 1.5;
    /// The latch clears only when one-sided probes run decisively
    /// faster than RPC. Asymmetric on purpose: once a cohort retreats
    /// to RPC the responder cache recovers and a lone probe looks
    /// merely "not terrible" (its own QP went cold, so it still pays a
    /// state fetch) — crossing back on parity would re-thrash.
    pub const LAT_RATIO_DOWN: f64 = 0.75;
    /// Every `PROBE_PERIOD`-th read takes the currently losing path so
    /// its latency EWMA stays live and the policy can cross back —
    /// without probes, the first flip would be permanent. ~6% of reads.
    pub const PROBE_PERIOD: u64 = 16;

    /// Policy with the default thresholds.
    pub fn new() -> AdaptivePolicy {
        AdaptivePolicy::with_cutovers(Self::SIZE_CUTOVER, Self::RETRY_CUTOVER)
    }

    /// Policy with explicit size/retry thresholds (benchmarks sweep
    /// these; deployments tune them from measured crossovers).
    pub fn with_cutovers(size_cutover: f64, retry_cutover: f64) -> AdaptivePolicy {
        AdaptivePolicy {
            ewma_size: 0.0,
            ewma_retries: 0.0,
            ewma_lat_os: 0.0,
            ewma_lat_rpc: 0.0,
            lat_rpc_latched: false,
            reads: 0,
            alpha: Self::ALPHA,
            size_cutover,
            retry_cutover,
        }
    }

    /// Record a completed one-sided read: the value size observed, how
    /// many validation retries it took, and how long it took end to end
    /// (0 = not measured; the latency EWMA is left alone).
    pub fn observe_one_sided(&mut self, value_len: usize, retries: u32, lat_ns: u64) {
        self.observe_size(value_len);
        self.ewma_retries += self.alpha * (retries as f64 - self.ewma_retries);
        if lat_ns > 0 {
            self.ewma_lat_os = ewma_or_seed(self.ewma_lat_os, lat_ns as f64, self.alpha);
            self.update_latch();
        }
    }

    /// Record a completed RPC read (sizes still steer the choice; the
    /// retry EWMA decays since RPC reads cannot be torn).
    pub fn observe_rpc(&mut self, value_len: usize, lat_ns: u64) {
        self.observe_size(value_len);
        self.ewma_retries += self.alpha * (0.0 - self.ewma_retries);
        if lat_ns > 0 {
            self.ewma_lat_rpc = ewma_or_seed(self.ewma_lat_rpc, lat_ns as f64, self.alpha);
            self.update_latch();
        }
    }

    /// Re-evaluate the hysteresis latch after a latency observation.
    fn update_latch(&mut self) {
        if self.ewma_lat_os == 0.0 || self.ewma_lat_rpc == 0.0 {
            return;
        }
        if self.lat_rpc_latched {
            if self.ewma_lat_os < Self::LAT_RATIO_DOWN * self.ewma_lat_rpc {
                self.lat_rpc_latched = false;
            }
        } else if self.ewma_lat_os > Self::LAT_RATIO_UP * self.ewma_lat_rpc {
            self.lat_rpc_latched = true;
        }
    }

    fn observe_size(&mut self, value_len: usize) {
        self.ewma_size += self.alpha * (value_len as f64 - self.ewma_size);
    }

    /// The steady-state preference: one-sided while observed values
    /// stay small, validation retries rare, and one-sided latency
    /// competitive with RPC (the fan-in signal — see the module doc).
    pub fn use_one_sided(&self) -> bool {
        self.ewma_size <= self.size_cutover
            && self.ewma_retries <= self.retry_cutover
            && !self.latency_prefers_rpc()
    }

    /// The latched latency verdict (see [`Self::LAT_RATIO_UP`] /
    /// [`Self::LAT_RATIO_DOWN`]).
    fn latency_prefers_rpc(&self) -> bool {
        self.lat_rpc_latched
    }

    /// The per-read decision: the steady-state preference, except that
    /// every [`Self::PROBE_PERIOD`]-th read deliberately takes the
    /// losing path to keep its latency EWMA live. Deterministic — a
    /// plain read counter, no randomness.
    pub fn decide(&mut self) -> bool {
        self.reads += 1;
        let preferred = self.use_one_sided();
        if self.reads.is_multiple_of(Self::PROBE_PERIOD) {
            // Probing the losing path is only meaningful once the size
            // and retry axes allow one-sided at all: a 4 KiB value or a
            // retry storm loses regardless of responder cache state.
            if preferred || self.latency_prefers_rpc() {
                return !preferred;
            }
        }
        preferred
    }

    /// Observed mean value size (bytes).
    pub fn mean_size(&self) -> f64 {
        self.ewma_size
    }

    /// Observed mean retries per one-sided read.
    pub fn mean_retries(&self) -> f64 {
        self.ewma_retries
    }

    /// Observed mean one-sided read latency (ns; 0 before the first
    /// measured read).
    pub fn mean_lat_one_sided(&self) -> f64 {
        self.ewma_lat_os
    }

    /// Observed mean RPC read latency (ns; 0 before the first measured
    /// read).
    pub fn mean_lat_rpc(&self) -> f64 {
        self.ewma_lat_rpc
    }
}

/// EWMA update that seeds from the first observation instead of pulling
/// up from 0 over 1/alpha samples (latencies start unobserved, and a
/// slow warm-up would mask a real 1.5x gap for hundreds of reads).
fn ewma_or_seed(current: f64, sample: f64, alpha: f64) -> f64 {
    if current == 0.0 {
        sample
    } else {
        current + alpha * (sample - current)
    }
}

impl Default for AdaptivePolicy {
    fn default() -> AdaptivePolicy {
        AdaptivePolicy::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_policy_prefers_one_sided() {
        assert!(AdaptivePolicy::new().use_one_sided());
    }

    #[test]
    fn large_values_flip_to_rpc_and_back() {
        let mut p = AdaptivePolicy::new();
        for _ in 0..256 {
            p.observe_one_sided(4096, 0, 0);
        }
        assert!(!p.use_one_sided(), "4 KiB values must steer to RPC");
        for _ in 0..512 {
            p.observe_rpc(64, 0);
        }
        assert!(p.use_one_sided(), "small values steer back");
    }

    #[test]
    fn retry_storms_flip_to_rpc() {
        let mut p = AdaptivePolicy::new();
        for _ in 0..256 {
            p.observe_one_sided(64, 3, 0);
        }
        assert!(!p.use_one_sided(), "torn-read storms must steer to RPC");
        // Retry EWMA decays once the contention passes.
        for _ in 0..512 {
            p.observe_one_sided(64, 0, 0);
        }
        assert!(p.use_one_sided());
    }

    #[test]
    fn slow_one_sided_reads_latch_to_rpc_with_hysteresis() {
        let mut p = AdaptivePolicy::new();
        // Small values, no retries — but each READ pays a responder
        // cache miss while RPC stays fast: the fan-in signature.
        for _ in 0..64 {
            p.observe_one_sided(64, 0, 6_000);
            p.observe_rpc(64, 3_000);
        }
        assert!(!p.use_one_sided(), "a 2x latency gap must steer to RPC");
        // Parity is NOT enough to cross back (hysteresis: parity is
        // what a recovered cache shows a lone probe).
        for _ in 0..256 {
            p.observe_one_sided(64, 0, 3_000);
            p.observe_rpc(64, 3_000);
        }
        assert!(!p.use_one_sided(), "parity must not clear the latch");
        // Decisively faster one-sided probes do clear it.
        for _ in 0..256 {
            p.observe_one_sided(64, 0, 1_800);
            p.observe_rpc(64, 3_000);
        }
        assert!(p.use_one_sided());
    }

    #[test]
    fn decide_probes_the_losing_path() {
        let mut p = AdaptivePolicy::new();
        for _ in 0..64 {
            p.observe_one_sided(64, 0, 1_000);
            p.observe_rpc(64, 3_000);
        }
        assert!(p.use_one_sided());
        let choices: Vec<bool> = (0..AdaptivePolicy::PROBE_PERIOD * 2)
            .map(|_| p.decide())
            .collect();
        let probes = choices.iter().filter(|&&c| !c).count();
        assert_eq!(probes, 2, "one probe per PROBE_PERIOD reads");
    }

    #[test]
    fn cutovers_are_configurable() {
        let mut p = AdaptivePolicy::with_cutovers(16.0, 10.0);
        for _ in 0..256 {
            p.observe_one_sided(64, 0, 0);
        }
        assert!(!p.use_one_sided(), "custom size cutover respected");
    }
}
