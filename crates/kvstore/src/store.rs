//! The partitioned store.

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::versioned::VersionEntry;

/// Store configuration.
#[derive(Debug, Clone)]
pub struct KvConfig {
    /// Number of partitions (one per server in a distributed deployment).
    pub partitions: usize,
    /// Lock stripes per partition.
    pub stripes: usize,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            partitions: 1,
            stripes: 16,
        }
    }
}

/// One partition: lock-striped hash buckets of versioned entries.
#[derive(Debug)]
pub struct Partition {
    stripes: Vec<RwLock<HashMap<u64, VersionEntry>>>,
}

impl Partition {
    fn new(stripes: usize) -> Partition {
        Partition {
            stripes: (0..stripes).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn stripe(&self, key: u64) -> &RwLock<HashMap<u64, VersionEntry>> {
        &self.stripes[mix(key) as usize % self.stripes.len()]
    }

    /// Number of keys in this partition.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the partition holds no keys.
    pub fn is_empty(&self) -> bool {
        self.stripes.iter().all(|s| s.read().is_empty())
    }
}

/// SplitMix-style hash used for partitioning and striping.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A read snapshot of an entry: `(value, version word)`.
pub type ReadResult = Option<(Vec<u8>, u64)>;

/// The partitioned key-value store.
#[derive(Debug)]
pub struct KvStore {
    partitions: Vec<Partition>,
}

impl KvStore {
    /// Create a store with the given configuration.
    pub fn new(cfg: KvConfig) -> KvStore {
        assert!(cfg.partitions >= 1 && cfg.stripes >= 1);
        KvStore {
            partitions: (0..cfg.partitions)
                .map(|_| Partition::new(cfg.stripes))
                .collect(),
        }
    }

    /// Which partition owns `key`.
    pub fn partition_of(&self, key: u64) -> usize {
        (mix(key) >> 32) as usize % self.partitions.len()
    }

    /// Access a partition directly (e.g., a server owning one partition).
    pub fn partition(&self, idx: usize) -> &Partition {
        &self.partitions[idx]
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total keys across partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.partitions.iter().all(|p| p.is_empty())
    }

    /// Insert or overwrite `key` (unconditional put; version bumps if the
    /// key exists).
    pub fn put(&self, key: u64, value: &[u8]) {
        let part = &self.partitions[self.partition_of(key)];
        let mut map = part.stripe(key).write();
        match map.get_mut(&key) {
            Some(e) => {
                // Unconditional puts ignore the lock (loader path).
                let locked = e.is_locked();
                e.value = value.to_vec();
                e.word = (e.version() + 1) | if locked { crate::LOCK_BIT } else { 0 };
            }
            None => {
                map.insert(key, VersionEntry::new(value.to_vec()));
            }
        }
    }

    /// Read `key`: `(value, version word)` or `None`.
    pub fn get(&self, key: u64) -> ReadResult {
        let part = &self.partitions[self.partition_of(key)];
        let map = part.stripe(key).read();
        map.get(&key).map(|e| (e.value.clone(), e.word))
    }

    /// Remove `key`; returns whether it existed.
    pub fn remove(&self, key: u64) -> bool {
        let part = &self.partitions[self.partition_of(key)];
        part.stripe(key).write().remove(&key).is_some()
    }

    /// OCC: try to lock `key` for writing. Returns `false` if missing or
    /// already locked.
    pub fn try_lock(&self, key: u64) -> bool {
        let part = &self.partitions[self.partition_of(key)];
        let mut map = part.stripe(key).write();
        map.get_mut(&key).map(|e| e.try_lock()).unwrap_or(false)
    }

    /// OCC: unlock without updating (abort).
    pub fn unlock(&self, key: u64) {
        let part = &self.partitions[self.partition_of(key)];
        if let Some(e) = part.stripe(key).write().get_mut(&key) {
            e.unlock();
        }
    }

    /// OCC: install `value`, bump the version, release the lock (commit).
    pub fn update_and_unlock(&self, key: u64, value: &[u8]) {
        let part = &self.partitions[self.partition_of(key)];
        if let Some(e) = part.stripe(key).write().get_mut(&key) {
            e.update_and_unlock(value.to_vec());
        }
    }

    /// OCC: validate that `key` still has version word `word` and is not
    /// locked by another writer (paper Fig. 13 validation phase).
    pub fn validate(&self, key: u64, word: u64) -> bool {
        let part = &self.partitions[self.partition_of(key)];
        let map = part.stripe(key).read();
        match map.get(&key) {
            Some(e) => !e.is_locked() && e.word == word,
            None => false,
        }
    }

    /// The current version word of `key` (what a one-sided validation read
    /// would fetch), or `None`.
    pub fn version_word(&self, key: u64) -> Option<u64> {
        let part = &self.partitions[self.partition_of(key)];
        part.stripe(key).read().get(&key).map(|e| e.word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> KvStore {
        KvStore::new(KvConfig {
            partitions: 4,
            stripes: 8,
        })
    }

    #[test]
    fn put_get_remove() {
        let kv = store();
        kv.put(1, b"one");
        kv.put(2, b"two");
        assert_eq!(kv.get(1).unwrap().0, b"one");
        assert_eq!(kv.get(2).unwrap().0, b"two");
        assert!(kv.get(3).is_none());
        assert!(kv.remove(1));
        assert!(!kv.remove(1));
        assert!(kv.get(1).is_none());
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn overwrite_bumps_version() {
        let kv = store();
        kv.put(7, b"a");
        let (_, v1) = kv.get(7).unwrap();
        kv.put(7, b"b");
        let (val, v2) = kv.get(7).unwrap();
        assert_eq!(val, b"b");
        assert!(v2 > v1);
    }

    #[test]
    fn partitioning_is_stable_and_total() {
        let kv = store();
        for key in 0..1000 {
            let p = kv.partition_of(key);
            assert!(p < 4);
            assert_eq!(p, kv.partition_of(key));
        }
        // All partitions get some share.
        for key in 0..1000 {
            kv.put(key, b"x");
        }
        for p in 0..4 {
            assert!(kv.partition(p).len() > 100, "partition {p} underfilled");
        }
    }

    #[test]
    fn occ_lock_protocol() {
        let kv = store();
        kv.put(5, b"v");
        let (_, word) = kv.get(5).unwrap();
        assert!(kv.try_lock(5));
        assert!(!kv.try_lock(5), "double lock must fail");
        // Validation fails while locked.
        assert!(!kv.validate(5, word));
        kv.unlock(5);
        assert!(kv.validate(5, word));
        // Commit path.
        assert!(kv.try_lock(5));
        kv.update_and_unlock(5, b"v2");
        assert!(!kv.validate(5, word), "version changed");
        let (val, word2) = kv.get(5).unwrap();
        assert_eq!(val, b"v2");
        assert!(kv.validate(5, word2));
    }

    #[test]
    fn lock_missing_key_fails() {
        let kv = store();
        assert!(!kv.try_lock(99));
        kv.unlock(99); // no-op, no panic
        assert!(!kv.validate(99, 1));
    }

    #[test]
    fn version_word_matches_get() {
        let kv = store();
        kv.put(11, b"x");
        assert_eq!(kv.version_word(11).unwrap(), kv.get(11).unwrap().1);
        assert!(kv.version_word(12).is_none());
    }

    #[test]
    fn concurrent_occ_commits_are_serializable() {
        use std::sync::Arc;
        let kv = Arc::new(store());
        kv.put(1, &0u64.to_le_bytes());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let kv = Arc::clone(&kv);
            handles.push(std::thread::spawn(move || {
                let mut commits = 0u64;
                for _ in 0..500 {
                    // Read-modify-write with OCC retry.
                    loop {
                        let (val, _word) = kv.get(1).unwrap();
                        let n = u64::from_le_bytes(val.try_into().unwrap());
                        if !kv.try_lock(1) {
                            std::thread::yield_now();
                            continue;
                        }
                        // Re-read under lock (the value may have moved
                        // between read and lock) — classic OCC upgrade.
                        let (val2, _) = kv.get(1).unwrap();
                        let n2 = u64::from_le_bytes(val2.try_into().unwrap());
                        let _ = n;
                        kv.update_and_unlock(1, &(n2 + 1).to_le_bytes());
                        commits += 1;
                        break;
                    }
                }
                commits
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 2000);
        let (val, _) = kv.get(1).unwrap();
        assert_eq!(u64::from_le_bytes(val.try_into().unwrap()), 2000);
    }
}
