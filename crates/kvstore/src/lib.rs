#![warn(missing_docs)]

//! # flock-kvstore
//!
//! A MICA-style partitioned in-memory key-value store — the storage
//! substrate for FlockTX and the FaSST comparison (paper §8.5). Unlike
//! MICA's lossy index we are lossless; what matters for the reproduction
//! is the access interface: partitioned ownership, per-entry version and
//! lock words for optimistic concurrency control, and O(1) point access.
//!
//! Layout: keys hash to a partition; each partition holds lock-striped
//! buckets. Every entry carries a 64-bit *version/lock word* — bit 63 is
//! the lock bit, the low 63 bits a version counter bumped on each update —
//! exactly the word a remote validator reads with a one-sided RDMA read in
//! the validation phase of FlockTX.

pub mod readmode;
pub mod store;
pub mod versioned;

pub use readmode::{AdaptivePolicy, ReadMode};
pub use store::{KvConfig, KvStore, Partition};
pub use versioned::{VersionEntry, LOCK_BIT};
