//! Synchronization facade: `std` primitives normally, `loom` under
//! `cfg(loom)`.
//!
//! The facade itself now lives in the `flock-sync` crate so layers below
//! `flock-core` (notably the fabric's lock-free completion queue) can
//! share it; this module re-exports it unchanged so existing
//! `flock_core::sync::…` paths — including the loom suites — keep
//! working. See `flock-sync`'s crate docs for the API contract
//! (`UnsafeCell`'s closure accessors, `backoff`, `AdaptiveBackoff`).

/// Thread-local allocation pool for the hot send path (DESIGN.md §5c).
///
/// Lives on the sync facade because its correctness argument is tied to
/// the TCQ protocol the facade model-checks: it takes no locks and no
/// atomics, so it behaves identically under `std` and `cfg(loom)` and
/// adds no schedule points to bounded-exhaustive exploration.
#[path = "pool.rs"]
pub(crate) mod pool;

pub use flock_sync::*;
