//! Synchronization facade: `std` primitives normally, `loom` under
//! `cfg(loom)`.
//!
//! Every concurrent module in the workspace (`tcq`, `ring`, `credit`,
//! `sched::qp` here; `lockshare` in `flock-baselines`) imports its
//! atomics, threads, and unsafe cells from this module instead of `std`
//! directly. A normal build resolves to the real `std` types with zero
//! overhead. Building with `RUSTFLAGS="--cfg loom"` swaps in the `loom`
//! model checker's instrumented equivalents, so the `loom_tcq` suite can
//! exhaustively explore thread interleavings of the TCQ protocol (see
//! DESIGN.md, "Memory ordering and verification", and `cargo loom`).
//!
//! Two deliberate API choices keep the two worlds identical:
//!
//! * [`UnsafeCell`] exposes only loom's closure-based `with`/`with_mut`
//!   accessors (no bare `get`), so every raw access site reads the same
//!   under both backends.
//! * [`backoff`] is the one blessed way to spin-wait. Under `std` it
//!   spins with a periodic OS yield; under loom every call is a
//!   *voluntary* yield, which the model scheduler uses to deprioritize
//!   the spinner — that is what makes spin loops terminate during
//!   bounded-exhaustive exploration.

/// Thread-local allocation pool for the hot send path (DESIGN.md §5c).
///
/// Lives on the sync facade because its correctness argument is tied to
/// the TCQ protocol the facade model-checks: it takes no locks and no
/// atomics, so it behaves identically under `std` and `cfg(loom)` and
/// adds no schedule points to bounded-exhaustive exploration.
#[path = "pool.rs"]
pub(crate) mod pool;

#[cfg(loom)]
pub use loom::{cell::UnsafeCell, hint, sync::atomic, sync::Arc, thread};

#[cfg(not(loom))]
pub use std::{hint, sync::atomic, sync::Arc, thread};

/// `std` counterpart of loom's closure-based `UnsafeCell`.
#[cfg(not(loom))]
#[derive(Debug, Default)]
pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

#[cfg(not(loom))]
impl<T> UnsafeCell<T> {
    /// Create a cell.
    pub const fn new(value: T) -> UnsafeCell<T> {
        UnsafeCell(std::cell::UnsafeCell::new(value))
    }

    /// Immutable access to the contents via raw pointer.
    ///
    /// The pointer must not escape the closure; callers uphold the usual
    /// `UnsafeCell` aliasing rules inside `f`.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        f(self.0.get())
    }

    /// Mutable access to the contents via raw pointer.
    ///
    /// The pointer must not escape the closure; callers guarantee no
    /// concurrent access for the duration of `f`.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }
}

/// Pads and aligns a value to a 64-byte cache line (destructive
/// interference range on x86-64 and most aarch64 parts).
///
/// Used to keep hot atomics that different threads write (e.g. the TCQ
/// `tail`) off the cache lines of fields that are merely read or updated
/// by one thread (stats counters), eliminating false sharing.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

impl<T> CachePadded<T> {
    /// Wrap `value` on its own cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded(value)
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// One iteration of a bounded spin-wait.
///
/// `spins` is the caller's iteration counter. Under `std` this emits a
/// `spin_loop` hint and yields to the OS every 128 iterations; under
/// loom it always yields to the model scheduler so exploration makes
/// progress past the spin.
#[inline]
pub fn backoff(spins: u32) {
    #[cfg(loom)]
    {
        let _ = spins;
        thread::yield_now();
    }
    #[cfg(not(loom))]
    {
        if spins.is_multiple_of(128) {
            thread::yield_now();
        } else {
            hint::spin_loop();
        }
    }
}
