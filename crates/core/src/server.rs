//! The server side of Flock: accepting connections, the request
//! dispatcher (paper §4.3), response coalescing, and the receiver-side QP
//! scheduler with credit renewal over write-with-imm (§5.1, §7).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use flock_fabric::{
    Access, CompletionQueue, CostModel, CqOpcode, MemoryRegion, Node, NodeId, Qp, RecvWr,
    RemoteAddr, SendWr, Sge, Transport, WrId,
};
use flock_sync::clock::{self, TaskHandle};
use parking_lot::{Mutex, RwLock};

use crate::domain::{
    AttachMemReply, AttachMemRequest, AttachReply, AttachRequest, ConnectReply, ConnectRequest,
    CtrlMsg, ExportReply, FlockDomain, MemRegionInfo, RingInfo, SegmentLease,
};
use crate::error::{FlockError, Result};
use crate::msg::{self, EntryMeta, EntryRef, MsgHeader, FLAG_CREDIT_GRANT};
use crate::ring::{RingConsumer, RingLayout, RingProducer};
use crate::sched::qp::{QpScheduler, QpSchedulerConfig, SenderQp};
use crate::sched::tenant::{FairnessSnapshot, TenantCounters};

/// Server configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Request/response ring capacity per QP (bytes).
    pub ring_capacity: usize,
    /// Receiver-side QP scheduler parameters.
    pub sched: QpSchedulerConfig,
    /// QP redistribution interval.
    pub sched_interval: Duration,
    /// Receive buffers posted per QP for credit-renewal immediates.
    pub imm_recv_depth: usize,
    /// Signal every Nth response write.
    pub signal_every: u64,
    /// Blocking-wait timeout.
    pub timeout: Duration,
    /// Dispatcher worker threads. Each owns a disjoint partition of
    /// connections (rebalanced when the QP scheduler redistributes active
    /// QPs); `1` is the single-dispatcher degenerate case. Defaults to
    /// [`auto_dispatch_threads`].
    pub dispatch_threads: usize,
}

/// Default dispatcher worker count: the host's available parallelism,
/// clamped to `1..=8`. Sharding the dispatch only wins when the workers
/// can actually run in parallel; on a 1-CPU host extra workers just
/// time-slice the same core through the idle ladder (the honest 0.78×
/// of the pre-seam 4/4 BENCH_e2e point), so the degenerate 1-worker
/// path is chosen automatically there.
pub fn auto_dispatch_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            ring_capacity: 1 << 16,
            sched: QpSchedulerConfig::default(),
            sched_interval: Duration::from_millis(10),
            imm_recv_depth: 64,
            signal_every: 64,
            timeout: Duration::from_secs(10),
            dispatch_threads: auto_dispatch_threads(),
        }
    }
}

/// An RPC handler: bytes in, bytes out.
pub type Handler = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

/// A request pulled via the manual API (`fl_recv_rpc`).
pub struct IncomingRpc {
    /// The registered RPC id.
    pub rpc_id: u32,
    /// Request payload: a zero-copy slice of the coalesced request
    /// message.
    pub data: Bytes,
    /// Token to pass to [`FlockServer::send_res`].
    pub token: RpcToken,
}

/// Identifies the request's origin for `fl_send_res`.
#[derive(Debug, Clone, Copy)]
pub struct RpcToken {
    conn: usize,
    qp: usize,
    meta: EntryMeta,
}

struct ServerQpCtx {
    qp: Arc<Qp>,
    req_mr: Arc<MemoryRegion>,
    req_cons: Mutex<RingConsumer>,
    resp_prod: Mutex<RingProducer>,
    resp_remote: RingInfo,
    staging: Arc<MemoryRegion>,
    /// Client's response-ring consumed head (piggybacked on requests).
    client_resp_head: AtomicU64,
    /// Our request-ring consumed head as of the last successful
    /// `flush_response` (any kind — every response message piggybacks
    /// it). Lets the dispatcher skip redundant zero-entry head-only
    /// writes while the client is not actually short of ring space.
    last_flushed_head: AtomicU64,
    write_count: AtomicU64,
    canary_seq: AtomicU64,
    /// Mirror of the QP scheduler's active bit (updated on
    /// redistribution). Dispatchers poll deactivated QPs only every
    /// [`INACTIVE_POLL_PERIOD`]th sweep: clients drain in-flight
    /// requests on a deactivated QP but send new ones elsewhere, so at
    /// high connection counts (QPs ≫ MAX_AQP) polling every ring every
    /// sweep burns the dispatch budget on empty probes.
    active: AtomicBool,
}

impl ServerQpCtx {
    fn next_canary(&self) -> u64 {
        0xC0DE_0000_0000_0001 + self.canary_seq.fetch_add(1, Ordering::Relaxed)
    }
}

struct ServerConn {
    sender_id: u32,
    #[allow(dead_code)]
    client_node: NodeId,
    /// Tenant this connection acts for (from the connect handshake).
    #[allow(dead_code)]
    tenant: u32,
    /// The tenant's shared counter block, cloned out of the scheduler's
    /// registry at accept time so the dispatch hot path bumps per-tenant
    /// issued/completed statistics without any lock.
    counters: Arc<TenantCounters>,
    /// Send CQ shared by this connection's QPs (drained once per
    /// dispatcher sweep).
    send_cq: Arc<CompletionQueue>,
    /// The connection's QP lanes. Behind a lock because lanes attach
    /// lazily (`CtrlMsg::Attach`) and leave in one batch at detach;
    /// dispatchers never take it on the hot path — they clone the list
    /// into their generation-stamped partition snapshot.
    qps: RwLock<Vec<Arc<ServerQpCtx>>>,
    /// Passive peers of the client's dedicated one-sided QPs
    /// ([`CtrlMsg::AttachMem`]). Never polled or dispatched — one-sided
    /// verbs complete on the requester's CQ — but each one is live NIC
    /// connection state on this node, competing for the connection
    /// cache exactly as the paper's crossover argument describes.
    mem_qps: Mutex<Vec<Arc<Qp>>>,
    /// Graceful-teardown tombstone: a departed connection stays in the
    /// `conns` slot (indices are stable) but leaves every snapshot.
    departed: AtomicBool,
}

/// Aggregate server statistics.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Coalesced request messages received.
    pub messages: AtomicU64,
    /// Individual RPC requests processed.
    pub requests: AtomicU64,
    /// Credit renewals granted.
    pub grants: AtomicU64,
    /// Credit renewals declined.
    pub declines: AtomicU64,
    /// Redundant head-only response writes elided because the client's
    /// view of the consumed head was still fresh (within a quarter ring).
    pub head_flushes_skipped: AtomicU64,
}

impl ServerStats {
    /// Observed mean coalescing degree (requests per message).
    pub fn mean_coalescing_degree(&self) -> f64 {
        let m = self.messages.load(Ordering::Relaxed);
        if m == 0 {
            0.0
        } else {
            self.requests.load(Ordering::Relaxed) as f64 / m as f64
        }
    }
}

/// A registered one-sided export: `(name, mem_mrs index, stride,
/// slots, meta)`.
type ExportEntry = (String, usize, u32, u32, u64);

struct ServerInner {
    node: Arc<Node>,
    cfg: ServerConfig,
    /// Fabric cost model, used to charge virtual CPU time for host-side
    /// work (polling, codec, handlers, doorbells) when running under a
    /// virtual-time executor. Charges are no-ops in threaded mode.
    cost: CostModel,
    handlers: RwLock<HashMap<u32, Handler>>,
    /// Handler-table generation: bumped (under the write lock) on every
    /// registration so dispatchers refresh their handler snapshot only
    /// when it actually changed, instead of taking the read lock per
    /// polled message.
    handlers_gen: AtomicU64,
    conns: RwLock<Vec<Arc<ServerConn>>>,
    /// Connection → dispatcher-worker assignment, indexed by connection
    /// slot. Seeded round-robin at accept time and rebalanced by the QP
    /// scheduler using active-QP weights (see `rebalance_dispatch`).
    dispatch_assign: RwLock<Vec<usize>>,
    /// Topology generation: bumped (under the respective write lock)
    /// whenever connection membership *or* the dispatcher assignment
    /// changes; lets each dispatcher cache its partition snapshot
    /// instead of re-reading the shared tables on every sweep.
    topo_gen: AtomicU64,
    /// Quiescence acknowledgements: `dispatch_acks[w]` is the latest
    /// topology generation worker `w` has folded into its partition
    /// snapshot. Graceful teardown publishes a new generation and waits
    /// for every worker's ack before recycling the departing
    /// connection's QPs and rings — the only point where teardown
    /// synchronizes with dispatch, and it blocks only the control plane.
    dispatch_acks: Vec<AtomicU64>,
    qpn_map: RwLock<HashMap<u32, (usize, usize)>>,
    qp_sched: Mutex<QpScheduler>,
    mem_mrs: RwLock<Vec<Arc<MemoryRegion>>>,
    /// One-sided segment exports. Registered by the application via
    /// [`FlockServer::export_segment`]; served to clients as
    /// [`SegmentLease`]s over [`CtrlMsg::Export`].
    exports: RwLock<Vec<ExportEntry>>,
    imm_cq: Arc<flock_fabric::CompletionQueue>,
    manual_tx: Sender<IncomingRpc>,
    manual_rx: Receiver<IncomingRpc>,
    stats: ServerStats,
    stop: AtomicBool,
}

/// A Flock RPC server bound to one node.
pub struct FlockServer {
    inner: Arc<ServerInner>,
    name: String,
    threads: Mutex<Vec<TaskHandle>>,
}

impl FlockServer {
    /// Start a server on `node`, listening in the domain registry as
    /// `name`. Spawns the accept, dispatcher, and QP-scheduler threads.
    pub fn listen(
        domain: &FlockDomain,
        node: &Arc<Node>,
        name: &str,
        cfg: ServerConfig,
    ) -> FlockServer {
        let (manual_tx, manual_rx) = unbounded();
        let imm_cq = node.create_cq(4096);
        let inner = Arc::new(ServerInner {
            node: Arc::clone(node),
            cfg: cfg.clone(),
            cost: domain.fabric().config().cost.clone(),
            handlers: RwLock::new(HashMap::new()),
            handlers_gen: AtomicU64::new(0),
            conns: RwLock::new(Vec::new()),
            dispatch_assign: RwLock::new(Vec::new()),
            topo_gen: AtomicU64::new(0),
            dispatch_acks: (0..cfg.dispatch_threads.max(1))
                .map(|_| AtomicU64::new(0))
                .collect(),
            qpn_map: RwLock::new(HashMap::new()),
            qp_sched: Mutex::new(QpScheduler::new(cfg.sched.clone())),
            mem_mrs: RwLock::new(Vec::new()),
            exports: RwLock::new(Vec::new()),
            imm_cq,
            manual_tx,
            manual_rx,
            stats: ServerStats::default(),
            stop: AtomicBool::new(false),
        });

        let (accept_tx, accept_rx) = unbounded::<CtrlMsg>();
        domain.register_listener(name, accept_tx);

        let mut threads = Vec::new();
        {
            let inner = Arc::clone(&inner);
            threads.push(clock::spawn(&format!("fl-accept-{name}"), move || {
                accept_loop(&inner, accept_rx)
            }));
        }
        for worker in 0..cfg.dispatch_threads.max(1) {
            let inner = Arc::clone(&inner);
            threads.push(clock::spawn(
                &format!("fl-dispatch-{name}/{worker}"),
                move || dispatch_loop(&inner, worker),
            ));
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(clock::spawn(&format!("fl-qpsched-{name}"), move || {
                qp_sched_loop(&inner)
            }));
        }

        FlockServer {
            inner,
            name: name.to_string(),
            threads: Mutex::new(threads),
        }
    }

    /// Register the handler for `rpc_id` (`fl_reg_handler`).
    pub fn reg_handler(&self, rpc_id: u32, f: impl Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static) {
        let mut handlers = self.inner.handlers.write();
        handlers.insert(rpc_id, Arc::new(f));
        // Publish under the write lock: a dispatcher that observes the
        // new generation and re-reads the table sees the registration.
        self.inner.handlers_gen.fetch_add(1, Ordering::Release);
    }

    /// Register a memory region of `len` bytes for one-sided operations
    /// (`fl_attach_mreg`). Must be called before clients connect. Returns
    /// the region index clients use.
    pub fn attach_mreg(&self, len: usize) -> usize {
        let mr = self.inner.node.register_mr(len, Access::REMOTE_ALL);
        let mut mrs = self.inner.mem_mrs.write();
        mrs.push(mr);
        mrs.len() - 1
    }

    /// Direct access to an attached region (server-local reads/writes).
    pub fn mem_region(&self, idx: usize) -> Option<Arc<MemoryRegion>> {
        self.inner.mem_mrs.read().get(idx).cloned()
    }

    /// Export a slotted view of an attached region for one-sided reads:
    /// `slots` records of `stride` bytes each, starting at the region
    /// base. Clients discover exports by name over the control path
    /// ([`crate::client::ConnectionHandle::fetch_exports`]) and read
    /// slots with zero further server CPU involvement. `meta` is
    /// layout-specific (e.g. the value capacity inside a versioned
    /// slot). Fails if the geometry overruns the region.
    pub fn export_segment(
        &self,
        name: &str,
        mr_idx: usize,
        stride: u32,
        slots: u32,
        meta: u64,
    ) -> Result<()> {
        let mrs = self.inner.mem_mrs.read();
        let mr = mrs.get(mr_idx).ok_or(FlockError::Disconnected)?;
        let need = stride as u64 * slots as u64;
        if stride == 0 || need > mr.len() as u64 {
            return Err(FlockError::CorruptMessage("export overruns its region"));
        }
        drop(mrs);
        self.inner
            .exports
            .write()
            .push((name.to_string(), mr_idx, stride, slots, meta));
        Ok(())
    }

    /// Pull a request with no registered handler (`fl_recv_rpc`).
    pub fn recv_rpc(&self, timeout: Duration) -> Option<IncomingRpc> {
        if clock::is_virtual() {
            // Poll in virtual time; a blocking `recv_timeout` would stall
            // the whole serialized lab on this one OS thread.
            let deadline = clock::deadline(timeout);
            loop {
                match self.inner.manual_rx.try_recv() {
                    Ok(rpc) => return Some(rpc),
                    Err(TryRecvError::Disconnected) => return None,
                    Err(TryRecvError::Empty) => {
                        if clock::expired(deadline) {
                            return None;
                        }
                        clock::sleep_ns(1_000);
                    }
                }
            }
        }
        self.inner.manual_rx.recv_timeout(timeout).ok()
    }

    /// Respond to a request obtained via [`FlockServer::recv_rpc`]
    /// (`fl_send_res`).
    pub fn send_res(&self, token: RpcToken, data: &[u8]) -> Result<()> {
        let (qp, counters) = {
            let conns = self.inner.conns.read();
            let conn = conns.get(token.conn).ok_or(FlockError::Disconnected)?;
            if conn.departed.load(Ordering::Relaxed) {
                return Err(FlockError::Disconnected);
            }
            let qp = conn.qps.read().get(token.qp).cloned();
            (qp.ok_or(FlockError::Disconnected)?, Arc::clone(&conn.counters))
        };
        let meta = EntryMeta {
            len: data.len() as u32,
            rpc_id: 0,
            ..token.meta
        };
        // `flush_response` is generic over the payload, so the response
        // bytes go straight from the caller's slice into the staging ring.
        flush_response(&self.inner, &qp, &[(meta, data)], 0, 0)?;
        counters.note_completed(1);
        Ok(())
    }

    /// Server statistics.
    pub fn stats(&self) -> &ServerStats {
        &self.inner.stats
    }

    /// Number of QPs currently active under the scheduler.
    pub fn active_qps(&self) -> usize {
        self.inner.qp_sched.lock().total_active()
    }

    /// Cap `tenant`'s total active QPs (takes effect at the next
    /// scheduler redistribution). See
    /// [`crate::sched::QpScheduler::set_tenant_cap`].
    pub fn set_tenant_cap(&self, tenant: u32, cap: usize) {
        self.inner.qp_sched.lock().set_tenant_cap(tenant, cap);
    }

    /// Remove `tenant`'s active-QP cap.
    pub fn clear_tenant_cap(&self, tenant: u32) {
        self.inner.qp_sched.lock().clear_tenant_cap(tenant);
    }

    /// Point-in-time per-tenant fairness view (shares, caps, request
    /// counters, Jain's index helpers).
    pub fn fairness_snapshot(&self) -> FairnessSnapshot {
        self.inner.qp_sched.lock().fairness_snapshot()
    }

    /// Stop all server threads and unregister from `domain`.
    pub fn shutdown(&self, domain: &FlockDomain) {
        domain.unregister_listener(&self.name);
        self.inner.stop.store(true, Ordering::SeqCst);
        for h in self.threads.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// Control-plane loop: connection handshakes (paper §3's `fl_connect`
/// server side), lazy lane attach, and graceful detach — the server end
/// of the out-of-band control channel.
fn accept_loop(inner: &Arc<ServerInner>, rx: Receiver<CtrlMsg>) {
    let virt = clock::is_virtual();
    while !inner.stop.load(Ordering::Relaxed) {
        let msg = if virt {
            // Poll in virtual time instead of blocking the lab's core.
            match rx.try_recv() {
                Ok(msg) => msg,
                Err(TryRecvError::Disconnected) => return,
                Err(TryRecvError::Empty) => {
                    clock::sleep_ns(5_000);
                    continue;
                }
            }
        } else {
            let Ok(msg) = rx.recv_timeout(Duration::from_millis(50)) else {
                continue;
            };
            msg
        };
        match msg {
            CtrlMsg::Connect(req) => {
                let reply = accept_one(inner, &req);
                let _ = req.reply.send(reply);
            }
            CtrlMsg::Attach(req) => {
                let reply = attach_one(inner, &req);
                let _ = req.reply.send(reply);
            }
            CtrlMsg::AttachMem(req) => {
                let reply = attach_mem_one(inner, &req);
                let _ = req.reply.send(reply);
            }
            CtrlMsg::Detach(req) => {
                let reply = detach_one(inner, req.sender_id);
                let _ = req.reply.send(reply);
            }
            CtrlMsg::Export(req) => {
                let mrs = inner.mem_mrs.read();
                let segments = inner
                    .exports
                    .read()
                    .iter()
                    .filter(|(name, ..)| {
                        req.filter.as_deref().is_none_or(|f| f == name.as_str())
                    })
                    .filter_map(|(name, mr_idx, stride, slots, meta)| {
                        mrs.get(*mr_idx).map(|mr| SegmentLease {
                            name: name.clone(),
                            region: MemRegionInfo {
                                rkey: mr.rkey(),
                                addr: mr.addr(),
                                len: mr.len(),
                            },
                            stride: *stride,
                            slots: *slots,
                            meta: *meta,
                        })
                    })
                    .collect();
                let _ = req.reply.send(Ok(ExportReply { segments }));
            }
        }
    }
}

/// Lease a server QP paired to `client_qp` and build its lane context.
/// The QP comes from the node's pool (warm path: reset + reuse instead
/// of the full creation penalty) and its rings from the MR cache.
fn build_server_lane(
    inner: &ServerInner,
    send_cq: &Arc<CompletionQueue>,
    client_qp: &Arc<Qp>,
    response_ring: RingInfo,
) -> Result<Arc<ServerQpCtx>> {
    let qp = inner.node.lease_qp(Transport::Rc, send_cq, &inner.imm_cq);
    flock_fabric::connect_qps(client_qp, &qp)?;
    let req_mr = inner
        .node
        .acquire_mr(inner.cfg.ring_capacity, Access::REMOTE_WRITE);
    let staging = inner
        .node
        .acquire_mr(inner.cfg.ring_capacity, Access::LOCAL);
    // Post receive slots for credit-renewal write-with-imm.
    for _ in 0..inner.cfg.imm_recv_depth {
        qp.post_recv(RecvWr {
            wr_id: WrId(0),
            local: Sge {
                lkey: req_mr.lkey(),
                addr: req_mr.addr(),
                len: 0,
            },
        })?;
    }
    Ok(Arc::new(ServerQpCtx {
        qp,
        req_mr,
        req_cons: Mutex::new(RingConsumer::new(RingLayout::new(
            0,
            inner.cfg.ring_capacity,
        ))),
        resp_prod: Mutex::new(RingProducer::new(RingLayout::new(0, response_ring.capacity))),
        resp_remote: response_ring,
        staging,
        client_resp_head: AtomicU64::new(0),
        last_flushed_head: AtomicU64::new(0),
        write_count: AtomicU64::new(0),
        canary_seq: AtomicU64::new(0),
        active: AtomicBool::new(true),
    }))
}

fn accept_one(inner: &Arc<ServerInner>, req: &ConnectRequest) -> Result<ConnectReply> {
    let n = req.client_qps.len();
    if n == 0 || req.response_rings.len() != n {
        return Err(FlockError::CorruptMessage("malformed connect request"));
    }
    let mut conns = inner.conns.write();
    let conn_idx = conns.len();
    let sender_id = conn_idx as u32;

    let send_cq = inner.node.create_cq(1024);
    let mut qps = Vec::with_capacity(n);
    let mut server_qpns = Vec::with_capacity(n);
    let mut request_rings = Vec::with_capacity(n);
    for (i, client_qp) in req.client_qps.iter().enumerate() {
        let ctx = build_server_lane(inner, &send_cq, client_qp, req.response_rings[i])?;
        server_qpns.push(ctx.qp.qpn());
        request_rings.push(RingInfo {
            rkey: ctx.req_mr.rkey(),
            addr: ctx.req_mr.addr(),
            capacity: inner.cfg.ring_capacity,
        });
        inner.qpn_map.write().insert(ctx.qp.qpn().0, (conn_idx, i));
        qps.push(ctx);
    }

    let counters = {
        let mut sched = inner.qp_sched.lock();
        sched.register_sender_tenant(sender_id, n, req.tenant);
        sched.accounting().counters(req.tenant)
    };
    conns.push(Arc::new(ServerConn {
        sender_id,
        client_node: req.client_node,
        tenant: req.tenant,
        counters,
        send_cq,
        qps: RwLock::new(qps),
        mem_qps: Mutex::new(Vec::new()),
        departed: AtomicBool::new(false),
    }));
    // Seed the new connection's dispatcher round-robin; the QP scheduler
    // rebalances by active-QP weight as traffic develops.
    inner
        .dispatch_assign
        .write()
        .push(conn_idx % inner.cfg.dispatch_threads.max(1));
    // Publish the membership change while still holding the write lock:
    // a dispatcher that observes the new generation and re-reads `conns`
    // is guaranteed to see the pushed connection.
    inner.topo_gen.fetch_add(1, Ordering::Release);

    let memory_regions: Vec<MemRegionInfo> = inner
        .mem_mrs
        .read()
        .iter()
        .map(|mr| MemRegionInfo {
            rkey: mr.rkey(),
            addr: mr.addr(),
            len: mr.len(),
        })
        .collect();

    Ok(ConnectReply {
        server_node: inner.node.id(),
        server_qps: server_qpns,
        request_rings,
        memory_regions,
        initial_credits: inner.cfg.sched.grant_size,
        sender_id,
    })
}

/// Materialize one more lane on a live connection (the server half of
/// lazy QP creation): lease a QP, pair it with the client's, and grow
/// both the scheduler's view of the sender and the dispatch snapshot.
fn attach_one(inner: &Arc<ServerInner>, req: &AttachRequest) -> Result<AttachReply> {
    let conns = inner.conns.read();
    let (conn_idx, conn) = conns
        .iter()
        .enumerate()
        .find(|(_, c)| c.sender_id == req.sender_id && !c.departed.load(Ordering::Relaxed))
        .ok_or(FlockError::Disconnected)?;

    let ctx = build_server_lane(inner, &conn.send_cq, &req.client_qp, req.response_ring)?;
    let server_qp = ctx.qp.qpn();
    let request_ring = RingInfo {
        rkey: ctx.req_mr.rkey(),
        addr: ctx.req_mr.addr(),
        capacity: inner.cfg.ring_capacity,
    };

    let mut qps = conn.qps.write();
    if req.lane != qps.len() {
        // Lanes attach densely in order; a mismatch means the client and
        // server disagree about the connection's shape.
        inner.node.release_qp(&ctx.qp);
        inner.node.release_mr(&ctx.req_mr);
        inner.node.release_mr(&ctx.staging);
        return Err(FlockError::CorruptMessage("attach lane out of order"));
    }
    inner
        .qpn_map
        .write()
        .insert(server_qp.0, (conn_idx, req.lane));
    // Grow the sender in the scheduler; the lane starts active only if
    // the AQP budget has room (the next redistribution arbitrates).
    {
        let mut sched = inner.qp_sched.lock();
        sched.add_qp(req.sender_id);
        ctx.active.store(
            sched.is_active(SenderQp {
                sender: req.sender_id,
                qp: req.lane,
            }),
            Ordering::Relaxed,
        );
    }
    qps.push(ctx);
    // Publish while holding the lane write lock, mirroring `accept_one`.
    inner.topo_gen.fetch_add(1, Ordering::Release);

    Ok(AttachReply {
        server_qp,
        request_ring,
        initial_credits: inner.cfg.sched.grant_size,
    })
}

/// Pair a dedicated one-sided QP with a live connection (the client
/// half is a per-thread "mem QP", the FaRM/HERD-style baseline). The
/// server side is passive: the QP joins no dispatch shard and no
/// scheduler sender — it is raw per-client connection state, outside
/// every coordination mechanism Flock layers over the shared lanes.
fn attach_mem_one(inner: &Arc<ServerInner>, req: &AttachMemRequest) -> Result<AttachMemReply> {
    // Clone the connection out of the registry before touching its
    // mem_qps lock: never hold `conns` and `mem_qps` together (the
    // detach path orders them the other way around).
    let conn = {
        let conns = inner.conns.read();
        conns
            .iter()
            .find(|c| c.sender_id == req.sender_id && !c.departed.load(Ordering::Relaxed))
            .map(Arc::clone)
            .ok_or(FlockError::Disconnected)?
    };
    // Tiny CQ: nothing ever completes on the passive side (one-sided
    // verbs signal only the requester), but a QP needs one to exist.
    let cq = inner.node.create_cq(8);
    let qp = inner.node.lease_qp(Transport::Rc, &cq, &cq);
    if let Err(e) = flock_fabric::connect_qps(&req.client_qp, &qp) {
        inner.node.release_qp(&qp);
        return Err(e.into());
    }
    let server_qp = qp.qpn();
    conn.mem_qps.lock().push(qp);
    Ok(AttachMemReply { server_qp })
}

/// Gracefully tear down a sender: release its AQP share immediately,
/// tombstone the connection out of every dispatcher's next snapshot,
/// wait for all workers to acknowledge the new topology (quiescence —
/// no shard still holds the departing QPs), then recycle the QPs and
/// rings into the node's pools. Established connections only ever see
/// a republished generation, never a stalled dispatcher.
fn detach_one(inner: &Arc<ServerInner>, sender_id: u32) -> Result<()> {
    let conn = {
        let conns = inner.conns.read();
        let Some(conn) = conns.iter().find(|c| c.sender_id == sender_id) else {
            return Ok(()); // unknown or already detached: idempotent
        };
        if conn.departed.swap(true, Ordering::Relaxed) {
            return Ok(());
        }
        Arc::clone(conn)
    };
    // Tombstone published: the Release RMW on `topo_gen` orders the
    // `departed` store before any dispatcher's Acquire load of the new
    // generation.
    let target_gen = inner.topo_gen.fetch_add(1, Ordering::Release) + 1;

    // The departing sender's whole AQP share returns to the pool now —
    // survivors pick it up at the next redistribution.
    inner.qp_sched.lock().unregister_sender(sender_id);
    {
        let qps = conn.qps.read();
        let mut map = inner.qpn_map.write();
        for qp in qps.iter() {
            map.remove(&qp.qp.qpn().0);
        }
    }

    // Quiesce: every dispatcher must fold the tombstoned topology into
    // its snapshot before the QPs and rings can be recycled (a stale
    // shard would otherwise post into a ring another lessee now owns).
    let deadline = clock::deadline(inner.cfg.timeout);
    for ack in &inner.dispatch_acks {
        while ack.load(Ordering::Acquire) < target_gen {
            if inner.stop.load(Ordering::Relaxed) {
                return Err(FlockError::Disconnected);
            }
            if clock::expired(deadline) {
                return Err(FlockError::Timeout);
            }
            clock::sleep_ns(1_000);
        }
    }

    let drained: Vec<Arc<ServerQpCtx>> = std::mem::take(&mut *conn.qps.write());
    for ctx in drained {
        inner.node.release_qp(&ctx.qp);
        inner.node.release_mr(&ctx.req_mr);
        inner.node.release_mr(&ctx.staging);
    }
    // Dedicated one-sided QPs leave with the sender too (no quiescence
    // needed: no dispatcher ever touches them). Take the list in its
    // own statement so the mem_qps guard is dropped before the release
    // calls and the re-cut below.
    let mem_qps = std::mem::take(&mut *conn.mem_qps.lock());
    for qp in mem_qps {
        inner.node.release_qp(&qp);
    }
    // Re-cut the dispatcher partition without the departed connection.
    rebalance_dispatch(inner);
    Ok(())
}

/// Empty response slice with a concrete payload type, for head-only and
/// credit-control messages (the generic [`flush_response`] cannot infer
/// `B` from a bare `&[]`).
const NO_RESPONSES: &[(EntryMeta, &[u8])] = &[];

/// One request-dispatcher worker: polls the request rings of the
/// connections assigned to it, runs handlers, coalesces responses per
/// message, and piggybacks the consumed head.
///
/// With `cfg.dispatch_threads == 1` (the default) a single worker owns
/// every connection — the seed's single-dispatcher behaviour. With more
/// workers each owns a disjoint partition of connections, re-cut by the
/// QP scheduler as active-QP weights shift (`rebalance_dispatch`).
/// Sweep period on which dispatchers still probe *deactivated* QPs (see
/// [`ServerQpCtx::active`]): bounded drain latency for in-flight requests
/// without paying an empty ring probe per inactive QP per sweep.
const INACTIVE_POLL_PERIOD: u64 = 16;

fn dispatch_loop(inner: &Arc<ServerInner>, worker: usize) {
    // Generation-stamped partition snapshot: cloning the `Arc` vector on
    // every sweep made each idle poll O(conns) in refcount traffic; the
    // snapshot is refreshed only when `accept_one`, `attach_one`,
    // `detach_one` or the rebalancer publishes a new topology
    // generation. Each entry carries its lane list so the sweep never
    // touches `conn.qps`' lock.
    let mut conns: Vec<(usize, Arc<ServerConn>, Vec<Arc<ServerQpCtx>>)> = Vec::new();
    let mut conns_seen = u64::MAX;
    // Handler snapshot, same gen-stamped scheme: the seed took
    // `handlers.read()` per polled message, putting a shared rwlock on
    // the hottest path. `reg_handler` bumps `handlers_gen`; the sweep
    // clones the table only when that moves.
    let mut handlers: HashMap<u32, Handler> = HashMap::new();
    let mut handlers_seen = u64::MAX;
    // Response scratch, reused across messages (cleared, not freed).
    let mut responses: Vec<(EntryMeta, Vec<u8>)> = Vec::new();
    // Send-CQ drain scratch: batched poll, one sync edge per sweep.
    let mut drained: Vec<flock_fabric::Completion> = Vec::new();
    // Dispatchers are dedicated polling cores (paper §4.3): the wall
    // ladder may park up to 100 µs to spare a shared host, but in the
    // lab a deep ladder would charge burst-detection latency that grows
    // with dispatcher count (fewer conns each → deeper idle between
    // bursts), inverting the sharding win. 1 µs models a polling core.
    let mut idler =
        flock_sync::AdaptiveBackoff::new(Duration::from_micros(100)).with_virtual_cap(1_000);
    let mut sweep: u64 = 0;
    while !inner.stop.load(Ordering::Relaxed) {
        sweep = sweep.wrapping_add(1);
        let gen = inner.topo_gen.load(Ordering::Acquire);
        if gen != conns_seen {
            // Lock order: `conns` before `dispatch_assign` before
            // `conn.qps`, matching `accept_one` and
            // `rebalance_dispatch`.
            let all = inner.conns.read();
            let assign = inner.dispatch_assign.read();
            conns = all
                .iter()
                .enumerate()
                .filter(|(idx, c)| {
                    assign.get(*idx).copied().unwrap_or(0) == worker
                        && !c.departed.load(Ordering::Relaxed)
                })
                .map(|(idx, c)| (idx, Arc::clone(c), c.qps.read().clone()))
                .collect();
            conns_seen = gen;
            // Quiescence ack: once this store is visible, no departed
            // QP is referenced by this worker's snapshot, so
            // `detach_one` may recycle the connection's resources.
            inner.dispatch_acks[worker].fetch_max(gen, Ordering::Release);
        }
        let hgen = inner.handlers_gen.load(Ordering::Acquire);
        if hgen != handlers_seen {
            handlers = inner.handlers.read().clone();
            handlers_seen = hgen;
        }
        let mut progressed = false;
        for &(conn_idx, ref conn, ref qps) in conns.iter() {
            // Drain signaled response-write completions for the whole
            // connection in one batched sweep (the send CQ is shared by
            // the connection's QPs).
            if !qps.is_empty() {
                drained.clear();
                conn.send_cq.poll(&mut drained, usize::MAX);
            }
            for (qp_idx, qp) in qps.iter().enumerate() {
                // Deactivated QPs drain at a reduced probe rate.
                if !qp.active.load(Ordering::Relaxed) && !sweep.is_multiple_of(INACTIVE_POLL_PERIOD)
                {
                    continue;
                }
                let polled = { qp.req_cons.lock().poll(&qp.req_mr) };
                match polled {
                    Ok(Some(m)) => {
                        progressed = true;
                        clock::charge(inner.cost.cpu_ring_poll_ns);
                        let view = m.view();
                        qp.client_resp_head
                            .fetch_max(view.header.head, Ordering::AcqRel);
                        inner.stats.messages.fetch_add(1, Ordering::Relaxed);
                        responses.clear();
                        let mut entries = 0u64;
                        for (meta, range) in view.entry_ranges() {
                            entries += 1;
                            inner.stats.requests.fetch_add(1, Ordering::Relaxed);
                            if let Some(h) = handlers.get(&meta.rpc_id) {
                                clock::charge(inner.cost.cpu_codec_ns + inner.cost.app_handler_ns);
                                // The handler's output Vec is the one
                                // per-request allocation the server keeps:
                                // the `Handler` signature owns its result.
                                let out = h(&m.bytes()[range]);
                                responses.push((
                                    EntryMeta {
                                        len: out.len() as u32,
                                        thread_id: meta.thread_id,
                                        seq: meta.seq,
                                        rpc_id: 0,
                                    },
                                    out,
                                ));
                            } else {
                                clock::charge(inner.cost.cpu_codec_ns);
                                let _ = inner.manual_tx.send(IncomingRpc {
                                    rpc_id: meta.rpc_id,
                                    // Zero-copy slice of the shared
                                    // request-message buffer.
                                    data: m.bytes().slice(range),
                                    token: RpcToken {
                                        conn: conn_idx,
                                        qp: qp_idx,
                                        meta,
                                    },
                                });
                            }
                        }
                        // Per-tenant accounting: lock-free Relaxed bumps
                        // on the shared counter block (never through the
                        // scheduler mutex).
                        conn.counters.note_issued(entries);
                        if !responses.is_empty() {
                            // Responses coalesce into one message, like
                            // requests (paper §4.3).
                            if flush_response(inner, qp, &responses, 0, 0).is_ok() {
                                conn.counters.note_completed(responses.len() as u64);
                            }
                        } else {
                            // Manual-path-only message: nothing to send
                            // now, but the consumed head must still reach
                            // the client eventually. A head-only write
                            // per polled message is redundant while the
                            // client still sees plenty of free ring, so
                            // defer until its view lags by a quarter
                            // ring (head debt). Every data-carrying
                            // flush republishes the head too, so once
                            // debt crosses the threshold the next polled
                            // message flushes it — the client's stale
                            // view is bounded at cap/4 plus one message
                            // and never wedges the producer.
                            let consumed = { qp.req_cons.lock().head() };
                            let flushed = qp.last_flushed_head.load(Ordering::Relaxed);
                            if consumed.saturating_sub(flushed)
                                >= (inner.cfg.ring_capacity as u64) / 4
                            {
                                let _ = flush_response(inner, qp, NO_RESPONSES, 0, 0);
                            } else {
                                inner.stats.head_flushes_skipped.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    Ok(None) => {
                        clock::charge(inner.cost.cpu_poll_empty_ns);
                    }
                    Err(_) => {
                        // Corrupt request ring: drop the message stream.
                        progressed = true;
                    }
                }
            }
        }
        if progressed {
            idler.reset();
            // Busy sweeps never reach `idle()`, so apply the accrued
            // virtual CPU cost here — otherwise a saturated dispatcher
            // would freeze virtual time for every other task.
            clock::flush_charge();
        } else {
            idler.idle();
        }
    }
}

/// Encode and post one coalesced response message on `qp`.
///
/// Generic over the payload type so handler outputs (`Vec<u8>`), manual
/// responses (`&[u8]`), and head-only messages all encode without an
/// intermediate copy into an owned buffer.
fn flush_response<B: AsRef<[u8]>>(
    inner: &ServerInner,
    qp: &ServerQpCtx,
    responses: &[(EntryMeta, B)],
    extra_flags: u16,
    aux: u64,
) -> Result<()> {
    let need = msg::encoded_size(responses.iter().map(|(_, d)| d.as_ref().len()));
    let canary = qp.next_canary();
    let consumed_head = { qp.req_cons.lock().head() };
    let header = MsgHeader {
        total_len: 0,
        count: 0,
        flags: extra_flags,
        canary,
        head: consumed_head,
        aux,
    };

    let deadline = clock::deadline(inner.cfg.timeout);
    let reservation = loop {
        let mut prod = qp.resp_prod.lock();
        prod.update_head(qp.client_resp_head.load(Ordering::Acquire));
        match prod.reserve(need) {
            Ok(r) => break r,
            Err(FlockError::RingFull { .. }) => {
                drop(prod);
                if inner.stop.load(Ordering::Relaxed) {
                    return Err(FlockError::Disconnected);
                }
                if clock::expired(deadline) {
                    return Err(FlockError::Timeout);
                }
                clock::yield_now();
            }
            Err(e) => return Err(e),
        }
    };

    if let Some((woff, wlen)) = reservation.wrap {
        // Write the wrap record directly into the staging ring; the old
        // `wrap_record` helper allocated a scratch Vec per ring wrap.
        qp.staging.with_write(|buf| {
            RingProducer::write_wrap_record(&mut buf[woff..woff + wlen], canary);
        });
        qp.qp.post_send(
            SendWr::write(
                WrId(0),
                Sge {
                    lkey: qp.staging.lkey(),
                    addr: qp.staging.addr() + woff as u64,
                    len: wlen,
                },
                RemoteAddr {
                    rkey: qp.resp_remote.rkey,
                    addr: qp.resp_remote.addr + woff as u64,
                },
            )
            .unsignaled(),
        )?;
    }

    // `encode_iter` walks the responses twice (size, then write) instead
    // of materialising a `Vec<EntryRef>` per flush.
    qp.staging.with_write(|buf| {
        msg::encode_iter(
            &mut buf[reservation.offset..reservation.offset + need],
            &header,
            responses.iter().map(|(meta, data)| EntryRef {
                meta: *meta,
                data: data.as_ref(),
            }),
        )
        .map(|_| ())
    })?;

    let nwrite = qp.write_count.fetch_add(1, Ordering::Relaxed);
    let mut wr = SendWr::write(
        WrId(u64::MAX),
        Sge {
            lkey: qp.staging.lkey(),
            addr: qp.staging.addr() + reservation.offset as u64,
            len: need,
        },
        RemoteAddr {
            rkey: qp.resp_remote.rkey,
            addr: qp.resp_remote.addr + reservation.offset as u64,
        },
    );
    if !nwrite.is_multiple_of(inner.cfg.signal_every) {
        wr = wr.unsignaled();
    }
    qp.qp.post_send(wr)?;
    // Every response message piggybacks the consumed head; remember the
    // last one published so dispatchers can elide redundant head-only
    // writes (`fetch_max`: concurrent flushers never move it backwards).
    qp.last_flushed_head.fetch_max(consumed_head, Ordering::Relaxed);
    // Host cost of staging the message and ringing the doorbell.
    clock::charge(inner.cost.cpu_doorbell_ns + inner.cost.memcpy_time(need).as_nanos());
    Ok(())
}

/// QP scheduler loop: polls the shared receive CQ for credit-renewal
/// immediates, grants or declines, and periodically redistributes active
/// QPs (paper §5.1, §7) — re-cutting the dispatcher partition to match.
fn qp_sched_loop(inner: &Arc<ServerInner>) {
    let sched_interval_ns = inner.cfg.sched_interval.as_nanos().min(u64::MAX as u128) as u64;
    let mut last_redistribution = clock::now_ns();
    // Batched immediate sweep: one sync edge per sweep instead of one
    // `poll_one` per credit request.
    let mut imms: Vec<flock_fabric::Completion> = Vec::new();
    // The park cap matches the seed's fixed 200 µs sleep, but the ladder
    // reaches it only after spinning and yielding through idle rounds —
    // a credit request arriving at a busy server is now picked up in
    // microseconds instead of a fixed 200 µs snooze. Under virtual time
    // the cap is 1 µs like the dispatch loop's: the model is a dedicated
    // polling core, and a 200 µs virtual nap would turn every credit
    // renewal that lands in it into a hundreds-of-µs client stall.
    let mut idler = flock_sync::AdaptiveBackoff::new(Duration::from_micros(200))
        .with_virtual_cap(1_000);
    while !inner.stop.load(Ordering::Relaxed) {
        let mut progressed = false;
        imms.clear();
        inner.imm_cq.poll(&mut imms, 1024);
        for c in imms.drain(..) {
            progressed = true;
            clock::charge(inner.cost.cpu_poll_cqe_ns);
            if c.opcode != CqOpcode::RecvImm {
                continue;
            }
            let Some(imm) = c.imm else { continue };
            let lookup = { inner.qpn_map.read().get(&c.qpn.0).copied() };
            let Some((conn_idx, qp_idx)) = lookup else {
                continue;
            };
            // Clone the lane context out of the locks: `flush_response`
            // below can spin in virtual time on a full ring, and holding
            // `conns` across that would stall connect/teardown.
            let looked_up = {
                let conns = inner.conns.read();
                conns.get(conn_idx).and_then(|conn| {
                    if conn.departed.load(Ordering::Relaxed) {
                        return None;
                    }
                    let qps = conn.qps.read();
                    qps.get(qp_idx).map(|q| (conn.sender_id, Arc::clone(q)))
                })
            };
            let Some((sender_id, qp)) = looked_up else {
                continue;
            };
            let qp = &qp;
            // Re-post the consumed receive slot.
            clock::charge(inner.cost.cpu_post_recv_ns);
            let _ = qp.qp.post_recv(RecvWr {
                wr_id: WrId(0),
                local: Sge {
                    lkey: qp.req_mr.lkey(),
                    addr: qp.req_mr.addr(),
                    len: 0,
                },
            });
            let median_degree = (imm & 0xFFFF) as u16;
            let decision = inner.qp_sched.lock().on_credit_request(
                SenderQp {
                    sender: sender_id,
                    qp: qp_idx,
                },
                median_degree,
            );
            let (granted, flag) = match decision {
                Some(credits) => {
                    inner.stats.grants.fetch_add(1, Ordering::Relaxed);
                    (credits, FLAG_CREDIT_GRANT)
                }
                None => {
                    inner.stats.declines.fetch_add(1, Ordering::Relaxed);
                    (0, FLAG_CREDIT_GRANT)
                }
            };
            let _ = flush_response(inner, qp, NO_RESPONSES, flag, msg::pack_aux(granted, 0));
        }

        if clock::now_ns().saturating_sub(last_redistribution) >= sched_interval_ns {
            last_redistribution = clock::now_ns();
            let changes = inner.qp_sched.lock().redistribute();
            if !changes.is_empty() {
                for (sq, now_active) in changes {
                    // Clone the lane out of the locks (same rationale as
                    // the credit path above).
                    let looked_up = {
                        let conns = inner.conns.read();
                        conns
                            .iter()
                            .find(|c| {
                                c.sender_id == sq.sender && !c.departed.load(Ordering::Relaxed)
                            })
                            .and_then(|conn| conn.qps.read().get(sq.qp).cloned())
                    };
                    let Some(qp) = looked_up else {
                        continue;
                    };
                    // Mirror the scheduler's decision for the dispatchers'
                    // inactive-QP poll throttle.
                    qp.active.store(now_active, Ordering::Relaxed);
                    // Proactively notify the client: reactivation carries a
                    // fresh grant, deactivation a zero grant.
                    let credits = if now_active {
                        inner.cfg.sched.grant_size
                    } else {
                        0
                    };
                    let _ = flush_response(
                        inner,
                        &qp,
                        NO_RESPONSES,
                        FLAG_CREDIT_GRANT,
                        msg::pack_aux(credits, 0),
                    );
                }
                // Active-QP weights just shifted: re-cut the dispatcher
                // partition so handler capacity follows the traffic.
                rebalance_dispatch(inner);
            }
        }
        if progressed {
            idler.reset();
            clock::flush_charge();
        } else {
            idler.idle();
        }
    }
}

/// Re-cut the connection → dispatcher-worker partition using active-QP
/// weights from the scheduler: heaviest connections first, each placed
/// on the least-loaded worker (greedy LPT binning). No-op with a single
/// worker. Publishes a new topology generation only when the assignment
/// actually changes.
fn rebalance_dispatch(inner: &ServerInner) {
    let workers = inner.cfg.dispatch_threads.max(1);
    if workers == 1 {
        return;
    }
    let conns = inner.conns.read();
    // Weight = active QPs, floored at 1 so idle connections keep an
    // owner (lock order: `conns` before `qp_sched`, as everywhere).
    let sched = inner.qp_sched.lock();
    let weights: Vec<usize> = conns
        .iter()
        .map(|c| {
            // Departed connections are invisible to dispatch snapshots;
            // give them zero weight so survivors split the capacity.
            if c.departed.load(Ordering::Relaxed) {
                return 0;
            }
            sched
                .active_map(c.sender_id)
                .map(|m| m.iter().filter(|a| **a).count())
                .unwrap_or(0)
                .max(1)
        })
        .collect();
    drop(sched);
    let new_assign = lpt_partition(&weights, workers);
    let mut assign = inner.dispatch_assign.write();
    if *assign != new_assign {
        *assign = new_assign;
        // Publish under the write lock, mirroring `accept_one`: a
        // dispatcher that observes the new generation and re-reads the
        // assignment sees a consistent partition.
        inner.topo_gen.fetch_add(1, Ordering::Release);
    }
}

/// Greedy LPT binning: place each item, heaviest first (ties broken by
/// lower index), on the currently least-loaded worker. Returns the
/// item → worker assignment. `workers` is clamped to at least 1, so the
/// result is total even when callers ask for zero workers or have more
/// workers than items.
///
/// Classic LPT bound: the max worker load is within `max(weights)` of
/// the min worker load, because the last item placed on the heaviest
/// worker went there when it was the lightest.
pub fn lpt_partition(weights: &[usize], workers: usize) -> Vec<usize> {
    let workers = workers.max(1);
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));
    let mut load = vec![0usize; workers];
    let mut assign = vec![0usize; weights.len()];
    for idx in order {
        let target = (0..workers).min_by_key(|&t| load[t]).unwrap_or(0);
        load[target] += weights[idx];
        assign[idx] = target;
    }
    assign
}
