//! The server side of Flock: accepting connections, the request
//! dispatcher (paper §4.3), response coalescing, and the receiver-side QP
//! scheduler with credit renewal over write-with-imm (§5.1, §7).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use flock_fabric::{
    Access, CostModel, CqOpcode, MemoryRegion, Node, NodeId, Qp, RecvWr, RemoteAddr, SendWr, Sge,
    Transport, WrId,
};
use flock_sync::clock::{self, TaskHandle};
use parking_lot::{Mutex, RwLock};

use crate::domain::{ConnectReply, ConnectRequest, FlockDomain, MemRegionInfo, RingInfo};
use crate::error::{FlockError, Result};
use crate::msg::{self, EntryMeta, EntryRef, MsgHeader, FLAG_CREDIT_GRANT};
use crate::ring::{RingConsumer, RingLayout, RingProducer};
use crate::sched::qp::{QpScheduler, QpSchedulerConfig, SenderQp};

/// Server configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Request/response ring capacity per QP (bytes).
    pub ring_capacity: usize,
    /// Receiver-side QP scheduler parameters.
    pub sched: QpSchedulerConfig,
    /// QP redistribution interval.
    pub sched_interval: Duration,
    /// Receive buffers posted per QP for credit-renewal immediates.
    pub imm_recv_depth: usize,
    /// Signal every Nth response write.
    pub signal_every: u64,
    /// Blocking-wait timeout.
    pub timeout: Duration,
    /// Dispatcher worker threads. Each owns a disjoint partition of
    /// connections (rebalanced when the QP scheduler redistributes active
    /// QPs); `1` is the single-dispatcher degenerate case. Defaults to
    /// [`auto_dispatch_threads`].
    pub dispatch_threads: usize,
}

/// Default dispatcher worker count: the host's available parallelism,
/// clamped to `1..=8`. Sharding the dispatch only wins when the workers
/// can actually run in parallel; on a 1-CPU host extra workers just
/// time-slice the same core through the idle ladder (the honest 0.78×
/// of the pre-seam 4/4 BENCH_e2e point), so the degenerate 1-worker
/// path is chosen automatically there.
pub fn auto_dispatch_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            ring_capacity: 1 << 16,
            sched: QpSchedulerConfig::default(),
            sched_interval: Duration::from_millis(10),
            imm_recv_depth: 64,
            signal_every: 64,
            timeout: Duration::from_secs(10),
            dispatch_threads: auto_dispatch_threads(),
        }
    }
}

/// An RPC handler: bytes in, bytes out.
pub type Handler = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

/// A request pulled via the manual API (`fl_recv_rpc`).
pub struct IncomingRpc {
    /// The registered RPC id.
    pub rpc_id: u32,
    /// Request payload: a zero-copy slice of the coalesced request
    /// message.
    pub data: Bytes,
    /// Token to pass to [`FlockServer::send_res`].
    pub token: RpcToken,
}

/// Identifies the request's origin for `fl_send_res`.
#[derive(Debug, Clone, Copy)]
pub struct RpcToken {
    conn: usize,
    qp: usize,
    meta: EntryMeta,
}

struct ServerQpCtx {
    qp: Arc<Qp>,
    req_mr: Arc<MemoryRegion>,
    req_cons: Mutex<RingConsumer>,
    resp_prod: Mutex<RingProducer>,
    resp_remote: RingInfo,
    staging: Arc<MemoryRegion>,
    /// Client's response-ring consumed head (piggybacked on requests).
    client_resp_head: AtomicU64,
    write_count: AtomicU64,
    canary_seq: AtomicU64,
    /// Mirror of the QP scheduler's active bit (updated on
    /// redistribution). Dispatchers poll deactivated QPs only every
    /// [`INACTIVE_POLL_PERIOD`]th sweep: clients drain in-flight
    /// requests on a deactivated QP but send new ones elsewhere, so at
    /// high connection counts (QPs ≫ MAX_AQP) polling every ring every
    /// sweep burns the dispatch budget on empty probes.
    active: AtomicBool,
}

impl ServerQpCtx {
    fn next_canary(&self) -> u64 {
        0xC0DE_0000_0000_0001 + self.canary_seq.fetch_add(1, Ordering::Relaxed)
    }
}

struct ServerConn {
    sender_id: u32,
    #[allow(dead_code)]
    client_node: NodeId,
    qps: Vec<ServerQpCtx>,
}

/// Aggregate server statistics.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Coalesced request messages received.
    pub messages: AtomicU64,
    /// Individual RPC requests processed.
    pub requests: AtomicU64,
    /// Credit renewals granted.
    pub grants: AtomicU64,
    /// Credit renewals declined.
    pub declines: AtomicU64,
}

impl ServerStats {
    /// Observed mean coalescing degree (requests per message).
    pub fn mean_coalescing_degree(&self) -> f64 {
        let m = self.messages.load(Ordering::Relaxed);
        if m == 0 {
            0.0
        } else {
            self.requests.load(Ordering::Relaxed) as f64 / m as f64
        }
    }
}

struct ServerInner {
    node: Arc<Node>,
    cfg: ServerConfig,
    /// Fabric cost model, used to charge virtual CPU time for host-side
    /// work (polling, codec, handlers, doorbells) when running under a
    /// virtual-time executor. Charges are no-ops in threaded mode.
    cost: CostModel,
    handlers: RwLock<HashMap<u32, Handler>>,
    conns: RwLock<Vec<Arc<ServerConn>>>,
    /// Connection → dispatcher-worker assignment, indexed by connection
    /// slot. Seeded round-robin at accept time and rebalanced by the QP
    /// scheduler using active-QP weights (see `rebalance_dispatch`).
    dispatch_assign: RwLock<Vec<usize>>,
    /// Topology generation: bumped (under the respective write lock)
    /// whenever connection membership *or* the dispatcher assignment
    /// changes; lets each dispatcher cache its partition snapshot
    /// instead of re-reading the shared tables on every sweep.
    topo_gen: AtomicU64,
    qpn_map: RwLock<HashMap<u32, (usize, usize)>>,
    qp_sched: Mutex<QpScheduler>,
    mem_mrs: RwLock<Vec<Arc<MemoryRegion>>>,
    imm_cq: Arc<flock_fabric::CompletionQueue>,
    manual_tx: Sender<IncomingRpc>,
    manual_rx: Receiver<IncomingRpc>,
    stats: ServerStats,
    stop: AtomicBool,
}

/// A Flock RPC server bound to one node.
pub struct FlockServer {
    inner: Arc<ServerInner>,
    name: String,
    threads: Mutex<Vec<TaskHandle>>,
}

impl FlockServer {
    /// Start a server on `node`, listening in the domain registry as
    /// `name`. Spawns the accept, dispatcher, and QP-scheduler threads.
    pub fn listen(
        domain: &FlockDomain,
        node: &Arc<Node>,
        name: &str,
        cfg: ServerConfig,
    ) -> FlockServer {
        let (manual_tx, manual_rx) = unbounded();
        let imm_cq = node.create_cq(4096);
        let inner = Arc::new(ServerInner {
            node: Arc::clone(node),
            cfg: cfg.clone(),
            cost: domain.fabric().config().cost.clone(),
            handlers: RwLock::new(HashMap::new()),
            conns: RwLock::new(Vec::new()),
            dispatch_assign: RwLock::new(Vec::new()),
            topo_gen: AtomicU64::new(0),
            qpn_map: RwLock::new(HashMap::new()),
            qp_sched: Mutex::new(QpScheduler::new(cfg.sched.clone())),
            mem_mrs: RwLock::new(Vec::new()),
            imm_cq,
            manual_tx,
            manual_rx,
            stats: ServerStats::default(),
            stop: AtomicBool::new(false),
        });

        let (accept_tx, accept_rx) = unbounded::<ConnectRequest>();
        domain.register_listener(name, accept_tx);

        let mut threads = Vec::new();
        {
            let inner = Arc::clone(&inner);
            threads.push(clock::spawn(&format!("fl-accept-{name}"), move || {
                accept_loop(&inner, accept_rx)
            }));
        }
        for worker in 0..cfg.dispatch_threads.max(1) {
            let inner = Arc::clone(&inner);
            threads.push(clock::spawn(
                &format!("fl-dispatch-{name}/{worker}"),
                move || dispatch_loop(&inner, worker),
            ));
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(clock::spawn(&format!("fl-qpsched-{name}"), move || {
                qp_sched_loop(&inner)
            }));
        }

        FlockServer {
            inner,
            name: name.to_string(),
            threads: Mutex::new(threads),
        }
    }

    /// Register the handler for `rpc_id` (`fl_reg_handler`).
    pub fn reg_handler(&self, rpc_id: u32, f: impl Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static) {
        self.inner.handlers.write().insert(rpc_id, Arc::new(f));
    }

    /// Register a memory region of `len` bytes for one-sided operations
    /// (`fl_attach_mreg`). Must be called before clients connect. Returns
    /// the region index clients use.
    pub fn attach_mreg(&self, len: usize) -> usize {
        let mr = self.inner.node.register_mr(len, Access::REMOTE_ALL);
        let mut mrs = self.inner.mem_mrs.write();
        mrs.push(mr);
        mrs.len() - 1
    }

    /// Direct access to an attached region (server-local reads/writes).
    pub fn mem_region(&self, idx: usize) -> Option<Arc<MemoryRegion>> {
        self.inner.mem_mrs.read().get(idx).cloned()
    }

    /// Pull a request with no registered handler (`fl_recv_rpc`).
    pub fn recv_rpc(&self, timeout: Duration) -> Option<IncomingRpc> {
        if clock::is_virtual() {
            // Poll in virtual time; a blocking `recv_timeout` would stall
            // the whole serialized lab on this one OS thread.
            let deadline = clock::deadline(timeout);
            loop {
                match self.inner.manual_rx.try_recv() {
                    Ok(rpc) => return Some(rpc),
                    Err(TryRecvError::Disconnected) => return None,
                    Err(TryRecvError::Empty) => {
                        if clock::expired(deadline) {
                            return None;
                        }
                        clock::sleep_ns(1_000);
                    }
                }
            }
        }
        self.inner.manual_rx.recv_timeout(timeout).ok()
    }

    /// Respond to a request obtained via [`FlockServer::recv_rpc`]
    /// (`fl_send_res`).
    pub fn send_res(&self, token: RpcToken, data: &[u8]) -> Result<()> {
        let conns = self.inner.conns.read();
        let conn = conns.get(token.conn).ok_or(FlockError::Disconnected)?;
        let qp = conn.qps.get(token.qp).ok_or(FlockError::Disconnected)?;
        let meta = EntryMeta {
            len: data.len() as u32,
            rpc_id: 0,
            ..token.meta
        };
        // `flush_response` is generic over the payload, so the response
        // bytes go straight from the caller's slice into the staging ring.
        flush_response(&self.inner, qp, &[(meta, data)], 0, 0)
    }

    /// Server statistics.
    pub fn stats(&self) -> &ServerStats {
        &self.inner.stats
    }

    /// Number of QPs currently active under the scheduler.
    pub fn active_qps(&self) -> usize {
        self.inner.qp_sched.lock().total_active()
    }

    /// Stop all server threads and unregister from `domain`.
    pub fn shutdown(&self, domain: &FlockDomain) {
        domain.unregister_listener(&self.name);
        self.inner.stop.store(true, Ordering::SeqCst);
        for h in self.threads.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// Accept loop: performs the connection handshake (paper §3's
/// `fl_connect` server side).
fn accept_loop(inner: &Arc<ServerInner>, rx: Receiver<ConnectRequest>) {
    let virt = clock::is_virtual();
    while !inner.stop.load(Ordering::Relaxed) {
        let req = if virt {
            // Poll in virtual time instead of blocking the lab's core.
            match rx.try_recv() {
                Ok(req) => req,
                Err(TryRecvError::Disconnected) => return,
                Err(TryRecvError::Empty) => {
                    clock::sleep_ns(5_000);
                    continue;
                }
            }
        } else {
            let Ok(req) = rx.recv_timeout(Duration::from_millis(50)) else {
                continue;
            };
            req
        };
        let reply = accept_one(inner, &req);
        let _ = req.reply.send(reply);
    }
}

fn accept_one(inner: &Arc<ServerInner>, req: &ConnectRequest) -> Result<ConnectReply> {
    let n = req.client_qps.len();
    if n == 0 || req.response_rings.len() != n {
        return Err(FlockError::CorruptMessage("malformed connect request"));
    }
    let mut conns = inner.conns.write();
    let conn_idx = conns.len();
    let sender_id = conn_idx as u32;

    let send_cq = inner.node.create_cq(1024);
    let mut qps = Vec::with_capacity(n);
    let mut server_qpns = Vec::with_capacity(n);
    let mut request_rings = Vec::with_capacity(n);
    for (i, client_qp) in req.client_qps.iter().enumerate() {
        let qp = inner.node.create_qp(Transport::Rc, &send_cq, &inner.imm_cq);
        flock_fabric::connect_qps(client_qp, &qp)?;
        let req_mr = inner
            .node
            .register_mr(inner.cfg.ring_capacity, Access::REMOTE_WRITE);
        let staging = inner
            .node
            .register_mr(inner.cfg.ring_capacity, Access::LOCAL);
        // Post receive slots for credit-renewal write-with-imm.
        for _ in 0..inner.cfg.imm_recv_depth {
            qp.post_recv(RecvWr {
                wr_id: WrId(0),
                local: Sge {
                    lkey: req_mr.lkey(),
                    addr: req_mr.addr(),
                    len: 0,
                },
            })?;
        }
        server_qpns.push(qp.qpn());
        request_rings.push(RingInfo {
            rkey: req_mr.rkey(),
            addr: req_mr.addr(),
            capacity: inner.cfg.ring_capacity,
        });
        inner.qpn_map.write().insert(qp.qpn().0, (conn_idx, i));
        qps.push(ServerQpCtx {
            qp,
            req_mr,
            req_cons: Mutex::new(RingConsumer::new(RingLayout::new(
                0,
                inner.cfg.ring_capacity,
            ))),
            resp_prod: Mutex::new(RingProducer::new(RingLayout::new(
                0,
                req.response_rings[i].capacity,
            ))),
            resp_remote: req.response_rings[i],
            staging,
            client_resp_head: AtomicU64::new(0),
            write_count: AtomicU64::new(0),
            canary_seq: AtomicU64::new(0),
            active: AtomicBool::new(true),
        });
    }

    inner.qp_sched.lock().register_sender(sender_id, n);
    conns.push(Arc::new(ServerConn {
        sender_id,
        client_node: req.client_node,
        qps,
    }));
    // Seed the new connection's dispatcher round-robin; the QP scheduler
    // rebalances by active-QP weight as traffic develops.
    inner
        .dispatch_assign
        .write()
        .push(conn_idx % inner.cfg.dispatch_threads.max(1));
    // Publish the membership change while still holding the write lock:
    // a dispatcher that observes the new generation and re-reads `conns`
    // is guaranteed to see the pushed connection.
    inner.topo_gen.fetch_add(1, Ordering::Release);

    let memory_regions: Vec<MemRegionInfo> = inner
        .mem_mrs
        .read()
        .iter()
        .map(|mr| MemRegionInfo {
            rkey: mr.rkey(),
            addr: mr.addr(),
            len: mr.len(),
        })
        .collect();

    Ok(ConnectReply {
        server_node: inner.node.id(),
        server_qps: server_qpns,
        request_rings,
        memory_regions,
        initial_credits: inner.cfg.sched.grant_size,
        sender_id,
    })
}

/// Empty response slice with a concrete payload type, for head-only and
/// credit-control messages (the generic [`flush_response`] cannot infer
/// `B` from a bare `&[]`).
const NO_RESPONSES: &[(EntryMeta, &[u8])] = &[];

/// One request-dispatcher worker: polls the request rings of the
/// connections assigned to it, runs handlers, coalesces responses per
/// message, and piggybacks the consumed head.
///
/// With `cfg.dispatch_threads == 1` (the default) a single worker owns
/// every connection — the seed's single-dispatcher behaviour. With more
/// workers each owns a disjoint partition of connections, re-cut by the
/// QP scheduler as active-QP weights shift (`rebalance_dispatch`).
/// Sweep period on which dispatchers still probe *deactivated* QPs (see
/// [`ServerQpCtx::active`]): bounded drain latency for in-flight requests
/// without paying an empty ring probe per inactive QP per sweep.
const INACTIVE_POLL_PERIOD: u64 = 16;

fn dispatch_loop(inner: &Arc<ServerInner>, worker: usize) {
    // Generation-stamped partition snapshot: cloning the `Arc` vector on
    // every sweep made each idle poll O(conns) in refcount traffic; the
    // snapshot is refreshed only when `accept_one` or the rebalancer
    // publishes a new topology generation.
    let mut conns: Vec<(usize, Arc<ServerConn>)> = Vec::new();
    let mut conns_seen = u64::MAX;
    // Response scratch, reused across messages (cleared, not freed).
    let mut responses: Vec<(EntryMeta, Vec<u8>)> = Vec::new();
    // Send-CQ drain scratch: batched poll, one sync edge per sweep.
    let mut drained: Vec<flock_fabric::Completion> = Vec::new();
    // Dispatchers are dedicated polling cores (paper §4.3): the wall
    // ladder may park up to 100 µs to spare a shared host, but in the
    // lab a deep ladder would charge burst-detection latency that grows
    // with dispatcher count (fewer conns each → deeper idle between
    // bursts), inverting the sharding win. 1 µs models a polling core.
    let mut idler =
        flock_sync::AdaptiveBackoff::new(Duration::from_micros(100)).with_virtual_cap(1_000);
    let mut sweep: u64 = 0;
    while !inner.stop.load(Ordering::Relaxed) {
        sweep = sweep.wrapping_add(1);
        let gen = inner.topo_gen.load(Ordering::Acquire);
        if gen != conns_seen {
            // Lock order: `conns` before `dispatch_assign`, matching
            // `accept_one` and `rebalance_dispatch`.
            let all = inner.conns.read();
            let assign = inner.dispatch_assign.read();
            conns = all
                .iter()
                .enumerate()
                .filter(|(idx, _)| assign.get(*idx).copied().unwrap_or(0) == worker)
                .map(|(idx, c)| (idx, Arc::clone(c)))
                .collect();
            conns_seen = gen;
        }
        let mut progressed = false;
        for &(conn_idx, ref conn) in conns.iter() {
            // Drain signaled response-write completions for the whole
            // connection in one batched sweep (the send CQ is shared by
            // the connection's QPs).
            if let Some(first) = conn.qps.first() {
                drained.clear();
                first.qp.send_cq().poll(&mut drained, usize::MAX);
            }
            for (qp_idx, qp) in conn.qps.iter().enumerate() {
                // Deactivated QPs drain at a reduced probe rate.
                if !qp.active.load(Ordering::Relaxed) && !sweep.is_multiple_of(INACTIVE_POLL_PERIOD)
                {
                    continue;
                }
                let polled = { qp.req_cons.lock().poll(&qp.req_mr) };
                match polled {
                    Ok(Some(m)) => {
                        progressed = true;
                        clock::charge(inner.cost.cpu_ring_poll_ns);
                        let view = m.view();
                        qp.client_resp_head
                            .fetch_max(view.header.head, Ordering::AcqRel);
                        inner.stats.messages.fetch_add(1, Ordering::Relaxed);
                        let handlers = inner.handlers.read();
                        responses.clear();
                        for (meta, range) in view.entry_ranges() {
                            inner.stats.requests.fetch_add(1, Ordering::Relaxed);
                            if let Some(h) = handlers.get(&meta.rpc_id) {
                                clock::charge(inner.cost.cpu_codec_ns + inner.cost.app_handler_ns);
                                // The handler's output Vec is the one
                                // per-request allocation the server keeps:
                                // the `Handler` signature owns its result.
                                let out = h(&m.bytes()[range]);
                                responses.push((
                                    EntryMeta {
                                        len: out.len() as u32,
                                        thread_id: meta.thread_id,
                                        seq: meta.seq,
                                        rpc_id: 0,
                                    },
                                    out,
                                ));
                            } else {
                                clock::charge(inner.cost.cpu_codec_ns);
                                let _ = inner.manual_tx.send(IncomingRpc {
                                    rpc_id: meta.rpc_id,
                                    // Zero-copy slice of the shared
                                    // request-message buffer.
                                    data: m.bytes().slice(range),
                                    token: RpcToken {
                                        conn: conn_idx,
                                        qp: qp_idx,
                                        meta,
                                    },
                                });
                            }
                        }
                        drop(handlers);
                        if !responses.is_empty() {
                            // Responses coalesce into one message, like
                            // requests (paper §4.3).
                            let _ = flush_response(inner, qp, &responses, 0, 0);
                        } else {
                            // Nothing to send now, but the consumed head
                            // must still reach the client eventually; a
                            // zero-entry message carries it.
                            let _ = flush_response(inner, qp, NO_RESPONSES, 0, 0);
                        }
                    }
                    Ok(None) => {
                        clock::charge(inner.cost.cpu_poll_empty_ns);
                    }
                    Err(_) => {
                        // Corrupt request ring: drop the message stream.
                        progressed = true;
                    }
                }
            }
        }
        if progressed {
            idler.reset();
            // Busy sweeps never reach `idle()`, so apply the accrued
            // virtual CPU cost here — otherwise a saturated dispatcher
            // would freeze virtual time for every other task.
            clock::flush_charge();
        } else {
            idler.idle();
        }
    }
}

/// Encode and post one coalesced response message on `qp`.
///
/// Generic over the payload type so handler outputs (`Vec<u8>`), manual
/// responses (`&[u8]`), and head-only messages all encode without an
/// intermediate copy into an owned buffer.
fn flush_response<B: AsRef<[u8]>>(
    inner: &ServerInner,
    qp: &ServerQpCtx,
    responses: &[(EntryMeta, B)],
    extra_flags: u16,
    aux: u64,
) -> Result<()> {
    let need = msg::encoded_size(responses.iter().map(|(_, d)| d.as_ref().len()));
    let canary = qp.next_canary();
    let consumed_head = { qp.req_cons.lock().head() };
    let header = MsgHeader {
        total_len: 0,
        count: 0,
        flags: extra_flags,
        canary,
        head: consumed_head,
        aux,
    };

    let deadline = clock::deadline(inner.cfg.timeout);
    let reservation = loop {
        let mut prod = qp.resp_prod.lock();
        prod.update_head(qp.client_resp_head.load(Ordering::Acquire));
        match prod.reserve(need) {
            Ok(r) => break r,
            Err(FlockError::RingFull { .. }) => {
                drop(prod);
                if inner.stop.load(Ordering::Relaxed) {
                    return Err(FlockError::Disconnected);
                }
                if clock::expired(deadline) {
                    return Err(FlockError::Timeout);
                }
                clock::yield_now();
            }
            Err(e) => return Err(e),
        }
    };

    if let Some((woff, wlen)) = reservation.wrap {
        // Write the wrap record directly into the staging ring; the old
        // `wrap_record` helper allocated a scratch Vec per ring wrap.
        qp.staging.with_write(|buf| {
            RingProducer::write_wrap_record(&mut buf[woff..woff + wlen], canary);
        });
        qp.qp.post_send(
            SendWr::write(
                WrId(0),
                Sge {
                    lkey: qp.staging.lkey(),
                    addr: qp.staging.addr() + woff as u64,
                    len: wlen,
                },
                RemoteAddr {
                    rkey: qp.resp_remote.rkey,
                    addr: qp.resp_remote.addr + woff as u64,
                },
            )
            .unsignaled(),
        )?;
    }

    // `encode_iter` walks the responses twice (size, then write) instead
    // of materialising a `Vec<EntryRef>` per flush.
    qp.staging.with_write(|buf| {
        msg::encode_iter(
            &mut buf[reservation.offset..reservation.offset + need],
            &header,
            responses.iter().map(|(meta, data)| EntryRef {
                meta: *meta,
                data: data.as_ref(),
            }),
        )
        .map(|_| ())
    })?;

    let nwrite = qp.write_count.fetch_add(1, Ordering::Relaxed);
    let mut wr = SendWr::write(
        WrId(u64::MAX),
        Sge {
            lkey: qp.staging.lkey(),
            addr: qp.staging.addr() + reservation.offset as u64,
            len: need,
        },
        RemoteAddr {
            rkey: qp.resp_remote.rkey,
            addr: qp.resp_remote.addr + reservation.offset as u64,
        },
    );
    if !nwrite.is_multiple_of(inner.cfg.signal_every) {
        wr = wr.unsignaled();
    }
    qp.qp.post_send(wr)?;
    // Host cost of staging the message and ringing the doorbell.
    clock::charge(inner.cost.cpu_doorbell_ns + inner.cost.memcpy_time(need).as_nanos());
    Ok(())
}

/// QP scheduler loop: polls the shared receive CQ for credit-renewal
/// immediates, grants or declines, and periodically redistributes active
/// QPs (paper §5.1, §7) — re-cutting the dispatcher partition to match.
fn qp_sched_loop(inner: &Arc<ServerInner>) {
    let sched_interval_ns = inner.cfg.sched_interval.as_nanos().min(u64::MAX as u128) as u64;
    let mut last_redistribution = clock::now_ns();
    // Batched immediate sweep: one sync edge per sweep instead of one
    // `poll_one` per credit request.
    let mut imms: Vec<flock_fabric::Completion> = Vec::new();
    // The park cap matches the seed's fixed 200 µs sleep, but the ladder
    // reaches it only after spinning and yielding through idle rounds —
    // a credit request arriving at a busy server is now picked up in
    // microseconds instead of a fixed 200 µs snooze.
    let mut idler = flock_sync::AdaptiveBackoff::new(Duration::from_micros(200));
    while !inner.stop.load(Ordering::Relaxed) {
        let mut progressed = false;
        imms.clear();
        inner.imm_cq.poll(&mut imms, 1024);
        for c in imms.drain(..) {
            progressed = true;
            clock::charge(inner.cost.cpu_poll_cqe_ns);
            if c.opcode != CqOpcode::RecvImm {
                continue;
            }
            let Some(imm) = c.imm else { continue };
            let lookup = { inner.qpn_map.read().get(&c.qpn.0).copied() };
            let Some((conn_idx, qp_idx)) = lookup else {
                continue;
            };
            let conns = inner.conns.read();
            let Some(conn) = conns.get(conn_idx) else {
                continue;
            };
            let qp = &conn.qps[qp_idx];
            // Re-post the consumed receive slot.
            clock::charge(inner.cost.cpu_post_recv_ns);
            let _ = qp.qp.post_recv(RecvWr {
                wr_id: WrId(0),
                local: Sge {
                    lkey: qp.req_mr.lkey(),
                    addr: qp.req_mr.addr(),
                    len: 0,
                },
            });
            let median_degree = (imm & 0xFFFF) as u16;
            let decision = inner.qp_sched.lock().on_credit_request(
                SenderQp {
                    sender: conn.sender_id,
                    qp: qp_idx,
                },
                median_degree,
            );
            let (granted, flag) = match decision {
                Some(credits) => {
                    inner.stats.grants.fetch_add(1, Ordering::Relaxed);
                    (credits, FLAG_CREDIT_GRANT)
                }
                None => {
                    inner.stats.declines.fetch_add(1, Ordering::Relaxed);
                    (0, FLAG_CREDIT_GRANT)
                }
            };
            let _ = flush_response(inner, qp, NO_RESPONSES, flag, msg::pack_aux(granted, 0));
        }

        if clock::now_ns().saturating_sub(last_redistribution) >= sched_interval_ns {
            last_redistribution = clock::now_ns();
            let changes = inner.qp_sched.lock().redistribute();
            if !changes.is_empty() {
                let conns = inner.conns.read();
                for (sq, now_active) in changes {
                    let Some(conn) = conns.iter().find(|c| c.sender_id == sq.sender) else {
                        continue;
                    };
                    let Some(qp) = conn.qps.get(sq.qp) else {
                        continue;
                    };
                    // Mirror the scheduler's decision for the dispatchers'
                    // inactive-QP poll throttle.
                    qp.active.store(now_active, Ordering::Relaxed);
                    // Proactively notify the client: reactivation carries a
                    // fresh grant, deactivation a zero grant.
                    let credits = if now_active {
                        inner.cfg.sched.grant_size
                    } else {
                        0
                    };
                    let _ = flush_response(
                        inner,
                        qp,
                        NO_RESPONSES,
                        FLAG_CREDIT_GRANT,
                        msg::pack_aux(credits, 0),
                    );
                }
                drop(conns);
                // Active-QP weights just shifted: re-cut the dispatcher
                // partition so handler capacity follows the traffic.
                rebalance_dispatch(inner);
            }
        }
        if progressed {
            idler.reset();
            clock::flush_charge();
        } else {
            idler.idle();
        }
    }
}

/// Re-cut the connection → dispatcher-worker partition using active-QP
/// weights from the scheduler: heaviest connections first, each placed
/// on the least-loaded worker (greedy LPT binning). No-op with a single
/// worker. Publishes a new topology generation only when the assignment
/// actually changes.
fn rebalance_dispatch(inner: &ServerInner) {
    let workers = inner.cfg.dispatch_threads.max(1);
    if workers == 1 {
        return;
    }
    let conns = inner.conns.read();
    // Weight = active QPs, floored at 1 so idle connections keep an
    // owner (lock order: `conns` before `qp_sched`, as everywhere).
    let sched = inner.qp_sched.lock();
    let weights: Vec<usize> = conns
        .iter()
        .map(|c| {
            sched
                .active_map(c.sender_id)
                .map(|m| m.iter().filter(|a| **a).count())
                .unwrap_or(0)
                .max(1)
        })
        .collect();
    drop(sched);
    let new_assign = lpt_partition(&weights, workers);
    let mut assign = inner.dispatch_assign.write();
    if *assign != new_assign {
        *assign = new_assign;
        // Publish under the write lock, mirroring `accept_one`: a
        // dispatcher that observes the new generation and re-reads the
        // assignment sees a consistent partition.
        inner.topo_gen.fetch_add(1, Ordering::Release);
    }
}

/// Greedy LPT binning: place each item, heaviest first (ties broken by
/// lower index), on the currently least-loaded worker. Returns the
/// item → worker assignment. `workers` is clamped to at least 1, so the
/// result is total even when callers ask for zero workers or have more
/// workers than items.
///
/// Classic LPT bound: the max worker load is within `max(weights)` of
/// the min worker load, because the last item placed on the heaviest
/// worker went there when it was the lightest.
pub fn lpt_partition(weights: &[usize], workers: usize) -> Vec<usize> {
    let workers = workers.max(1);
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));
    let mut load = vec![0usize; workers];
    let mut assign = vec![0usize; weights.len()];
    for idx in order {
        let target = (0..workers).min_by_key(|&t| load[t]).unwrap_or(0);
        load[target] += weights[idx];
        assign[idx] = target;
    }
    assign
}
