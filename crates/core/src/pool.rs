//! Thread-local allocation pool for the hot send path (DESIGN.md §5c).
//!
//! The TCQ retires every queue node *on the thread that allocated it*
//! (a follower frees its own node after observing `SENT`; the leader
//! frees its own node inside [`crate::tcq::Tcq::complete`]). That
//! ownership discipline means retired hot-path memory can be recycled
//! through a plain thread-local free list: no atomics, no cross-thread
//! reclamation protocol, and — because a block is only reused by the
//! thread that just proved it unreachable — no ABA hazard is introduced
//! on the TCQ's `tail`/`next` pointers (see DESIGN.md §5c for the
//! argument that recycling preserves happens-before edges 1–4 of §5b).
//!
//! The pool is keyed by [`Layout`] (size + alignment), so one pool per
//! thread serves TCQ nodes of any item type as well as the recycled
//! batch scratch `Vec`s. Blocks come from and return to the global
//! allocator at the edges: `acquire` falls back to `None` (caller
//! allocates), `release` frees excess blocks beyond a small per-class
//! cap, and whatever remains is freed when the thread exits.
//!
//! Because the pool takes no locks and touches no atomics, it adds no
//! schedule points under loom — model checking of the TCQ explores the
//! same interleavings with pooling on as off, and replay stays
//! deterministic.

use std::alloc::{alloc, dealloc, Layout};
use std::cell::RefCell;
use std::ptr::NonNull;

/// Cap on retained free blocks per (size, align) class, per thread.
/// Hot paths need at most a handful (one node + two scratch buffers per
/// in-flight batch); the cap bounds worst-case retention from bursts.
const MAX_FREE_PER_CLASS: usize = 64;

/// One free list for a single block layout.
struct SizeClass {
    layout: Layout,
    free: Vec<NonNull<u8>>,
}

/// Thread-local store; wrapper exists to free retained blocks on thread
/// exit.
struct PoolStore(Vec<SizeClass>);

impl Drop for PoolStore {
    fn drop(&mut self) {
        for class in &mut self.0 {
            for ptr in class.free.drain(..) {
                // SAFETY: every pointer on the free list was produced by
                // the global allocator with exactly `class.layout` (either
                // by `acquire`'s refill or by the caller, per `release`'s
                // contract) and is owned by the list.
                unsafe { dealloc(ptr.as_ptr(), class.layout) };
            }
        }
    }
}

thread_local! {
    static POOL: RefCell<PoolStore> = const { RefCell::new(PoolStore(Vec::new())) };
}

/// Pop a recycled block of exactly `layout` from this thread's pool.
///
/// Returns `None` (caller must allocate) for zero-size layouts, when the
/// class is empty, or during thread teardown. The returned memory is
/// uninitialized.
pub(crate) fn acquire(layout: Layout) -> Option<NonNull<u8>> {
    if layout.size() == 0 {
        return None;
    }
    POOL.try_with(|pool| {
        let mut pool = pool.borrow_mut();
        pool.0
            .iter_mut()
            .find(|c| c.layout == layout)
            .and_then(|c| c.free.pop())
    })
    .ok()
    .flatten()
}

/// Return a block of exactly `layout` to this thread's pool.
///
/// The caller passes ownership of `ptr`, which must have been allocated
/// by the global allocator with `layout` (e.g. via [`acquire`]'s
/// fallback path, `Box`, or `Vec`). Blocks beyond the per-class cap —
/// or arriving during thread teardown — go straight back to the global
/// allocator.
pub(crate) fn release(ptr: NonNull<u8>, layout: Layout) {
    debug_assert!(layout.size() > 0, "zero-size blocks never allocate");
    let pooled = POOL
        .try_with(|pool| {
            let mut pool = pool.borrow_mut();
            match pool.0.iter_mut().find(|c| c.layout == layout) {
                Some(c) if c.free.len() < MAX_FREE_PER_CLASS => {
                    c.free.push(ptr);
                    true
                }
                Some(_) => false,
                None => {
                    pool.0.push(SizeClass {
                        layout,
                        free: vec![ptr],
                    });
                    true
                }
            }
        })
        .unwrap_or(false);
    if !pooled {
        // SAFETY: the caller passed ownership, and `ptr` was allocated
        // with `layout` by the global allocator (function contract).
        unsafe { dealloc(ptr.as_ptr(), layout) };
    }
}

/// Allocate a block of `layout`, recycling from the pool when possible.
///
/// The returned memory is uninitialized and owned by the caller; retire
/// it with [`release`]. Panics on allocation failure (same policy as
/// `Box::new`).
pub(crate) fn acquire_or_alloc(layout: Layout) -> NonNull<u8> {
    if let Some(ptr) = acquire(layout) {
        return ptr;
    }
    debug_assert!(layout.size() > 0, "zero-size blocks never allocate");
    // SAFETY: `layout` has non-zero size (callers pool only real blocks;
    // debug-asserted above) — the only precondition of `alloc`.
    let raw = unsafe { alloc(layout) };
    match NonNull::new(raw) {
        Some(ptr) => ptr,
        None => std::alloc::handle_alloc_error(layout),
    }
}

/// A `Vec<T>` with capacity exactly `capacity`, recycling a pooled
/// buffer when one of the matching layout is available.
///
/// Zero-size element types never allocate, so they bypass the pool.
pub(crate) fn acquire_vec<T>(capacity: usize) -> Vec<T> {
    if std::mem::size_of::<T>() == 0 || capacity == 0 {
        return Vec::with_capacity(capacity);
    }
    let layout = Layout::array::<T>(capacity).expect("pool vec capacity overflows layout");
    match acquire(layout) {
        // SAFETY: the block was allocated by the global allocator with
        // exactly `Layout::array::<T>(capacity)` (release_vec's contract
        // keys the class by that layout), length 0 ≤ capacity, and `T`s
        // will only be written through normal Vec operations.
        Some(ptr) => unsafe { Vec::from_raw_parts(ptr.as_ptr().cast::<T>(), 0, capacity) },
        None => Vec::with_capacity(capacity),
    }
}

/// Retire a `Vec` obtained from [`acquire_vec`] back into the pool.
///
/// The contents are dropped; the buffer is retained for reuse only when
/// its capacity still matches `expected_capacity` (a grown or stolen
/// buffer just drops normally — pooling is best-effort).
pub(crate) fn release_vec<T>(mut v: Vec<T>, expected_capacity: usize) {
    v.clear();
    if std::mem::size_of::<T>() == 0 || v.capacity() != expected_capacity || expected_capacity == 0
    {
        return; // Vec's own Drop handles it.
    }
    let layout = Layout::array::<T>(v.capacity()).expect("pool vec capacity overflows layout");
    let ptr = v.as_mut_ptr().cast::<u8>();
    std::mem::forget(v);
    release(
        NonNull::new(ptr).expect("live Vec buffer is non-null"),
        layout,
    );
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn blocks_recycle_within_a_thread() {
        let layout = Layout::from_size_align(192, 64).unwrap();
        let a = acquire_or_alloc(layout);
        release(a, layout);
        let b = acquire_or_alloc(layout);
        assert_eq!(a, b, "freshly released block should be reused (LIFO)");
        release(b, layout);
    }

    #[test]
    fn distinct_layouts_use_distinct_classes() {
        let l1 = Layout::from_size_align(64, 64).unwrap();
        let l2 = Layout::from_size_align(128, 64).unwrap();
        let a = acquire_or_alloc(l1);
        release(a, l1);
        assert!(acquire(l2).is_none(), "must not serve a smaller block");
        let b = acquire_or_alloc(l1);
        assert_eq!(a, b);
        release(b, l1);
    }

    #[test]
    fn vecs_recycle_and_mismatched_capacity_is_dropped() {
        let v: Vec<u64> = acquire_vec(8);
        assert_eq!(v.capacity(), 8);
        let ptr = v.as_ptr();
        release_vec(v, 8);
        let w: Vec<u64> = acquire_vec(8);
        assert_eq!(w.as_ptr(), ptr, "buffer should be recycled");
        // A grown vec is not pooled (capacity mismatch) — just dropped.
        let mut g: Vec<u64> = acquire_vec(8);
        g.extend(0..100);
        let grown_cap = g.capacity();
        assert_ne!(grown_cap, 8);
        release_vec(g, 8);
        release_vec(w, 8);
    }

    #[test]
    fn zst_vecs_bypass_the_pool() {
        let v: Vec<()> = acquire_vec(16);
        assert!(v.capacity() >= 16);
        release_vec(v, 16);
    }

    #[test]
    fn pool_survives_cap_overflow() {
        let layout = Layout::from_size_align(32, 8).unwrap();
        let blocks: Vec<_> = (0..MAX_FREE_PER_CLASS + 8)
            .map(|_| acquire_or_alloc(layout))
            .collect();
        for b in blocks {
            release(b, layout); // beyond the cap: deallocated, not pooled
        }
        let again = acquire_or_alloc(layout);
        release(again, layout);
    }
}
