//! The `fl_*` API facade — the paper's Table 2, as free functions.
//!
//! These are thin wrappers over [`ConnectionHandle`], [`FlThread`] and
//! [`FlockServer`]; idiomatic Rust code can use the methods directly.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use flock_fabric::Node;

use crate::client::{ConnectionHandle, FlThread, HandleConfig};
use crate::domain::FlockDomain;
use crate::error::Result;
use crate::server::{FlockServer, IncomingRpc, RpcToken};

/// Connect to a remote node (Table 2: `fl_connect`).
pub fn fl_connect(
    domain: &FlockDomain,
    node: &Arc<Node>,
    server_name: &str,
    cfg: HandleConfig,
) -> Result<ConnectionHandle> {
    ConnectionHandle::connect(domain, node, server_name, cfg)
}

/// Gracefully close a connection: the server quiesces the sender out of
/// its dispatch shards, its AQP share returns to the scheduler, and the
/// client's QPs and rings recycle into the node's pools (`fl_disconnect`).
pub fn fl_disconnect(handle: &mut ConnectionHandle) -> Result<()> {
    handle.close()
}

/// Attach a memory region for one-sided operations (Table 2:
/// `fl_attach_mreg`). Server side; returns the region index clients use.
pub fn fl_attach_mreg(server: &FlockServer, len: usize) -> usize {
    server.attach_mreg(len)
}

/// Send an RPC request with an RPC id and data (Table 2: `fl_send_rpc`).
pub fn fl_send_rpc(thread: &FlThread, rpc_id: u32, data: &[u8]) -> Result<u64> {
    thread.send_rpc(rpc_id, data)
}

/// Receive the RPC response for `seq` (Table 2: `fl_recv_res`).
pub fn fl_recv_res(thread: &FlThread, seq: u64) -> Result<Bytes> {
    thread.recv_res(seq)
}

/// Register an RPC handler function (Table 2: `fl_reg_handler`).
pub fn fl_reg_handler(
    server: &FlockServer,
    rpc_id: u32,
    f: impl Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static,
) {
    server.reg_handler(rpc_id, f);
}

/// Fetch a pending RPC request with no registered handler (Table 2:
/// `fl_recv_rpc`).
pub fn fl_recv_rpc(server: &FlockServer, timeout: Duration) -> Option<IncomingRpc> {
    server.recv_rpc(timeout)
}

/// Send an RPC response for a request obtained via [`fl_recv_rpc`]
/// (Table 2: `fl_send_res`).
pub fn fl_send_res(server: &FlockServer, token: RpcToken, data: &[u8]) -> Result<()> {
    server.send_res(token, data)
}

/// One-sided read from remote memory (Table 2: `fl_read`).
pub fn fl_read(thread: &FlThread, mem_idx: usize, offset: u64, len: usize) -> Result<Vec<u8>> {
    thread.read(mem_idx, offset, len)
}

/// One-sided write to remote memory (Table 2: `fl_write`).
pub fn fl_write(thread: &FlThread, mem_idx: usize, offset: u64, data: &[u8]) -> Result<()> {
    thread.write(mem_idx, offset, data)
}

/// Remote fetch-and-add (Table 2: `fl_fetch_and_add`).
pub fn fl_fetch_and_add(thread: &FlThread, mem_idx: usize, offset: u64, delta: u64) -> Result<u64> {
    thread.fetch_add(mem_idx, offset, delta)
}

/// Remote compare-and-swap (Table 2: `fl_cmp_and_swap`).
pub fn fl_cmp_and_swap(
    thread: &FlThread,
    mem_idx: usize,
    offset: u64,
    expect: u64,
    swap: u64,
) -> Result<u64> {
    thread.cmp_swap(mem_idx, offset, expect, swap)
}
