//! ALock: an asymmetric cohort lock over one-sided atomics.
//!
//! A naive RDMA spinlock makes every acquire a remote CAS — the slowest
//! verb the NIC serves (`CostModel::nic_atomic_extra_ns`), and under
//! contention every waiter hammers the same remote cache line. The
//! asymmetric lock (ALock, PAPERS.md) splits the lock in two:
//!
//! * a **local cohort lock** — a plain ticket lock among the threads of
//!   one client node, costing nanoseconds of local cache traffic; and
//! * a **global word** in server memory, taken with a remote CAS.
//!
//! Only the cohort's current leader touches the global word, and when a
//! cohort-mate is already waiting the leader hands the lock over
//! *locally*, keeping the global word held — one remote CAS then
//! amortizes over up to `cohort_cap` critical sections. The cap bounds
//! unfairness toward other cohorts: after `cohort_cap` consecutive
//! local handoffs (or when no cohort-mate waits) the global word is
//! released so remote waiters can win it.
//!
//! The lock's local state uses the `flock_sync` facade, so the protocol
//! is loom-checked (`crates/core/tests/loom_alock.rs`: mutual exclusion
//! across cohorts sharing one global word, and no lost handover inside
//! a cohort). The remote side is abstracted as [`LockWord`], with the
//! production implementation [`RemoteLockWord`] issuing `fl_cmp_and_swap`
//! through a connection handle, and the loom tests substituting an
//! in-memory CAS.

use flock_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use flock_sync::backoff;

use crate::client::FlThread;
use crate::error::{FlockError, Result};

/// The global side of an [`ALock`]: a word that can be acquired with a
/// compare-and-swap and released by the holder.
pub trait LockWord {
    /// Try to take the word (CAS `0 → cookie`); `true` on success.
    fn try_acquire(&self) -> Result<bool>;
    /// Release the word (the caller must hold it).
    fn release(&self) -> Result<()>;
}

/// Production [`LockWord`]: a `u64` in a server memory region, operated
/// on with one-sided CAS verbs through the calling thread's handle.
pub struct RemoteLockWord<'a> {
    thread: &'a FlThread,
    mem_idx: usize,
    offset: u64,
    cookie: u64,
}

impl<'a> RemoteLockWord<'a> {
    /// A lock word at `offset` within advertised memory region
    /// `mem_idx`, claimed with the nonzero `cookie` (identify the
    /// holding cohort; e.g. the connection's sender id + 1).
    pub fn new(thread: &'a FlThread, mem_idx: usize, offset: u64, cookie: u64) -> RemoteLockWord<'a> {
        debug_assert_ne!(cookie, 0, "cookie 0 is the unlocked state");
        RemoteLockWord {
            thread,
            mem_idx,
            offset,
            cookie,
        }
    }
}

impl LockWord for RemoteLockWord<'_> {
    fn try_acquire(&self) -> Result<bool> {
        let old = self
            .thread
            .cmp_swap(self.mem_idx, self.offset, 0, self.cookie)?;
        Ok(old == 0)
    }

    fn release(&self) -> Result<()> {
        let old = self
            .thread
            .cmp_swap(self.mem_idx, self.offset, self.cookie, 0)?;
        if old != self.cookie {
            return Err(FlockError::RemoteOpFailed("released a lock word not held"));
        }
        Ok(())
    }
}

/// Proof an [`ALock::acquire`] succeeded; consumed by [`ALock::release`].
#[must_use = "dropping the ticket without releasing wedges the cohort"]
#[derive(Debug)]
pub struct Ticket(u64);

/// The local (cohort) half of the asymmetric lock. One instance is
/// shared by the threads of one client node; distinct cohorts contend
/// only through the global [`LockWord`].
pub struct ALock {
    /// Ticket dispenser (FIFO admission within the cohort).
    next_ticket: AtomicU64,
    /// Ticket currently allowed into the critical section.
    now_serving: AtomicU64,
    /// Whether this cohort holds the global word. Written only by the
    /// serving thread; the ticket lock's release/acquire on
    /// `now_serving` orders it across handoffs.
    global_held: AtomicBool,
    /// Consecutive local handoffs since the global word was taken.
    handoffs: AtomicU64,
    /// Cap on consecutive local handoffs (fairness toward other cohorts).
    cohort_cap: u64,
    /// Remote CASes that won the global word (stats).
    remote_acquires: AtomicU64,
    /// Local handoffs that skipped the remote release/re-acquire (stats).
    local_handoffs: AtomicU64,
}

/// Default local-handoff cap: one remote CAS amortizes over up to this
/// many critical sections when the cohort stays busy.
pub const DEFAULT_COHORT_CAP: u64 = 16;

impl ALock {
    /// A cohort lock handing over locally at most `cohort_cap`
    /// consecutive times before releasing the global word.
    pub fn new(cohort_cap: u64) -> ALock {
        ALock {
            next_ticket: AtomicU64::new(0),
            now_serving: AtomicU64::new(0),
            global_held: AtomicBool::new(false),
            handoffs: AtomicU64::new(0),
            cohort_cap: cohort_cap.max(1),
            remote_acquires: AtomicU64::new(0),
            local_handoffs: AtomicU64::new(0),
        }
    }

    /// Acquire: take a cohort ticket, wait to be served, and — only if
    /// the cohort does not already hold it — win the global word by
    /// remote CAS. This is the ALock hot path: the common contended
    /// acquire is a local spin plus zero remote verbs.
    pub fn acquire(&self, word: &impl LockWord) -> Result<Ticket> {
        let my = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let mut spins = 0u32;
        while self.now_serving.load(Ordering::Acquire) != my {
            backoff(spins);
            spins = spins.wrapping_add(1);
        }
        // Serving now: `global_held` is ours to read and write until we
        // store `now_serving + 1`.
        if !self.global_held.load(Ordering::Relaxed) {
            let mut spins = 0u32;
            while !word.try_acquire()? {
                backoff(spins);
                spins = spins.wrapping_add(1);
            }
            self.global_held.store(true, Ordering::Relaxed);
            self.handoffs.store(0, Ordering::Relaxed);
            self.remote_acquires.fetch_add(1, Ordering::Relaxed);
        }
        Ok(Ticket(my))
    }

    /// Release: hand over locally if a cohort-mate waits and the cap
    /// allows, else release the global word first. Either way the next
    /// ticket is admitted — no handover is lost.
    pub fn release(&self, word: &impl LockWord, ticket: Ticket) -> Result<()> {
        let my = ticket.0;
        let waiter = self.next_ticket.load(Ordering::Relaxed) > my + 1;
        let done = self.handoffs.load(Ordering::Relaxed);
        if waiter && done < self.cohort_cap {
            // Local handoff: the global word stays held by the cohort.
            self.handoffs.store(done + 1, Ordering::Relaxed);
            self.local_handoffs.fetch_add(1, Ordering::Relaxed);
        } else {
            // Release the global word *before* admitting the next
            // ticket: its holder must re-win it remotely, and other
            // cohorts get their window.
            self.global_held.store(false, Ordering::Relaxed);
            word.release()?;
        }
        self.now_serving.store(my + 1, Ordering::Release);
        Ok(())
    }

    /// Remote CASes that won the global word.
    pub fn remote_acquires(&self) -> u64 {
        self.remote_acquires.load(Ordering::Relaxed)
    }

    /// Handovers served locally (remote verbs saved).
    pub fn local_handoffs(&self) -> u64 {
        self.local_handoffs.load(Ordering::Relaxed)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// In-process lock word for unit tests (the loom suite has its own).
    struct LocalWord(AtomicU64);

    impl LockWord for LocalWord {
        fn try_acquire(&self) -> Result<bool> {
            Ok(self
                .0
                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok())
        }

        fn release(&self) -> Result<()> {
            self.0.store(0, Ordering::Release);
            Ok(())
        }
    }

    #[test]
    fn uncontended_acquire_takes_and_releases_the_word() {
        let word = LocalWord(AtomicU64::new(0));
        let lock = ALock::new(4);
        let t = lock.acquire(&word).unwrap();
        assert_eq!(word.0.load(Ordering::Relaxed), 1);
        lock.release(&word, t).unwrap();
        // No waiter: the global word is released immediately.
        assert_eq!(word.0.load(Ordering::Relaxed), 0);
        assert_eq!(lock.remote_acquires(), 1);
        assert_eq!(lock.local_handoffs(), 0);
    }

    #[test]
    fn contended_cohort_amortizes_remote_cas() {
        let word = Arc::new(LocalWord(AtomicU64::new(0)));
        let lock = Arc::new(ALock::new(64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let word = Arc::clone(&word);
            let lock = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let t = lock.acquire(&*word).unwrap();
                    lock.release(&*word, t).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(word.0.load(Ordering::Relaxed), 0);
        // 200 critical sections; local handoffs + remote acquires cover
        // them all, and at least one handoff happened iff contention did.
        assert_eq!(lock.remote_acquires() + lock.local_handoffs(), 200);
        assert!(lock.remote_acquires() >= 1);
    }

    #[test]
    fn cohort_cap_forces_remote_release() {
        let word = LocalWord(AtomicU64::new(0));
        let lock = ALock::new(2);
        // Simulate three queued cohort-mates by pre-taking tickets.
        let t0 = lock.acquire(&word).unwrap();
        lock.next_ticket.fetch_add(3, Ordering::Relaxed);
        lock.release(&word, t0).unwrap(); // handoff 1
        let t1 = Ticket(1);
        lock.release(&word, t1).unwrap(); // handoff 2 (cap reached)
        let t2 = Ticket(2);
        lock.release(&word, t2).unwrap(); // must release the word
        assert_eq!(word.0.load(Ordering::Relaxed), 0);
        assert_eq!(lock.local_handoffs(), 2);
    }
}
