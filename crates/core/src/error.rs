//! Error type for the Flock library.

use std::fmt;

use flock_fabric::FabricError;

/// Errors surfaced by Flock APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlockError {
    /// The underlying fabric failed.
    Fabric(FabricError),
    /// The remote node is not listening / unknown to the registry.
    UnknownRemote(String),
    /// A message failed canary or structural validation.
    CorruptMessage(&'static str),
    /// The ring buffer has no room for a message of this size.
    RingFull {
        /// Bytes needed.
        need: usize,
        /// Bytes free.
        free: usize,
    },
    /// The message exceeds what the ring can ever hold.
    MessageTooLarge {
        /// Bytes needed.
        need: usize,
        /// Ring capacity.
        capacity: usize,
    },
    /// No RPC handler registered for this id.
    NoHandler(u32),
    /// The connection has been shut down.
    Disconnected,
    /// An operation timed out waiting for a response or completion.
    Timeout,
    /// A memory verb completed with an error status.
    RemoteOpFailed(&'static str),
}

impl fmt::Display for FlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlockError::Fabric(e) => write!(f, "fabric error: {e}"),
            FlockError::UnknownRemote(n) => write!(f, "unknown remote node: {n}"),
            FlockError::CorruptMessage(why) => write!(f, "corrupt message: {why}"),
            FlockError::RingFull { need, free } => {
                write!(f, "ring full: need {need} bytes, {free} free")
            }
            FlockError::MessageTooLarge { need, capacity } => {
                write!(
                    f,
                    "message of {need} bytes exceeds ring capacity {capacity}"
                )
            }
            FlockError::NoHandler(id) => write!(f, "no RPC handler registered for id {id}"),
            FlockError::Disconnected => write!(f, "connection shut down"),
            FlockError::Timeout => write!(f, "operation timed out"),
            FlockError::RemoteOpFailed(s) => write!(f, "remote operation failed: {s}"),
        }
    }
}

impl std::error::Error for FlockError {}

impl From<FabricError> for FlockError {
    fn from(e: FabricError) -> Self {
        FlockError::Fabric(e)
    }
}

/// Result alias for Flock APIs.
pub type Result<T> = std::result::Result<T, FlockError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(FlockError::NoHandler(7).to_string().contains('7'));
        assert!(FlockError::RingFull { need: 10, free: 2 }
            .to_string()
            .contains("10"));
        let e: FlockError = FabricError::NotConnected.into();
        assert!(matches!(e, FlockError::Fabric(_)));
    }
}
