//! The cooperative credit-renewal scheme (paper §5.1).
//!
//! A credit is the right to send one request to the receiver. Credits are
//! issued per QP (avoiding cross-QP synchronization). A sender starts with
//! `C` credits and asks for `C` more once half are consumed, so renewal
//! latency hides behind the remaining half. The receiver's QP scheduler
//! may decline a renewal, which deactivates the QP on both ends.
//!
//! Concurrency discipline: credit state is per-QP and owned by the QP's
//! driving thread (the TCQ leader of the moment); it is mutated only
//! between `join`/`complete` pairs, never concurrently. No atomics —
//! any future shared-state access must go through [`crate::sync`] so it
//! stays visible to the loom model checker (see DESIGN.md).

/// Default bootstrap credit count (paper: `C = 32`).
pub const DEFAULT_CREDITS: u32 = 32;

/// Sender-side per-QP credit state.
#[derive(Debug, Clone)]
pub struct CreditState {
    credits: u32,
    grant_size: u32,
    renewal_in_flight: bool,
    active: bool,
}

impl CreditState {
    /// Start with `grant_size` credits (the bootstrap grant).
    pub fn new(grant_size: u32) -> CreditState {
        CreditState {
            credits: grant_size,
            grant_size,
            renewal_in_flight: false,
            active: true,
        }
    }

    /// Remaining credits.
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// Whether the QP is active (has not been declined).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Whether a renewal request is outstanding.
    pub fn renewal_in_flight(&self) -> bool {
        self.renewal_in_flight
    }

    /// Try to consume `n` credits; returns `false` (and consumes nothing)
    /// if fewer than `n` remain or the QP is inactive.
    pub fn try_consume(&mut self, n: u32) -> bool {
        if !self.active || self.credits < n {
            return false;
        }
        self.credits -= n;
        true
    }

    /// Whether the sender should request renewal now: at or below half of
    /// the grant size, active, and no request already outstanding.
    pub fn should_request_renewal(&self) -> bool {
        self.active && !self.renewal_in_flight && self.credits <= self.grant_size / 2
    }

    /// Record that a renewal request was sent.
    pub fn mark_requested(&mut self) {
        self.renewal_in_flight = true;
    }

    /// Apply a grant of `n` credits from the receiver.
    pub fn grant(&mut self, n: u32) {
        self.credits += n;
        self.renewal_in_flight = false;
        self.active = true;
    }

    /// Apply a decline: the QP is deactivated; remaining credits may still
    /// be used to drain outstanding work, but no renewal will arrive.
    pub fn decline(&mut self) {
        self.renewal_in_flight = false;
        self.active = false;
    }

    /// Reactivate after the scheduler re-enables this QP (fresh grant).
    pub fn reactivate(&mut self, n: u32) {
        self.active = true;
        self.credits = n;
        self.renewal_in_flight = false;
    }
}

/// Running median over a sliding window of recent values.
///
/// Used for the coalescing-degree report (median since last renewal) and
/// the per-thread median request size in sender-side scheduling.
#[derive(Debug, Clone)]
pub struct MedianWindow {
    window: Vec<u32>,
    cap: usize,
    next: usize,
    filled: usize,
}

impl MedianWindow {
    /// A window over the most recent `cap` observations (`cap >= 1`).
    pub fn new(cap: usize) -> MedianWindow {
        assert!(cap >= 1);
        MedianWindow {
            window: vec![0; cap],
            cap,
            next: 0,
            filled: 0,
        }
    }

    /// Record an observation.
    pub fn record(&mut self, v: u32) {
        self.window[self.next] = v;
        self.next = (self.next + 1) % self.cap;
        if self.filled < self.cap {
            self.filled += 1;
        }
    }

    /// Number of observations currently in the window.
    pub fn len(&self) -> usize {
        self.filled
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// Median of the window (0 if empty).
    pub fn median(&self) -> u32 {
        if self.filled == 0 {
            return 0;
        }
        // Copy is fine here: the window is small (≤ its fixed capacity) and
        // median() runs only on periodic credit renewal, not per-request.
        let mut v: Vec<u32> = self.window[..self.filled].to_vec();
        v.sort_unstable();
        v[(v.len() - 1) / 2]
    }

    /// Clear all observations.
    pub fn clear(&mut self) {
        self.next = 0;
        self.filled = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_and_consume() {
        let mut c = CreditState::new(32);
        assert_eq!(c.credits(), 32);
        assert!(c.try_consume(10));
        assert_eq!(c.credits(), 22);
        assert!(!c.try_consume(23));
        assert_eq!(c.credits(), 22);
    }

    #[test]
    fn renewal_at_half() {
        let mut c = CreditState::new(32);
        assert!(!c.should_request_renewal());
        assert!(c.try_consume(15));
        assert!(!c.should_request_renewal()); // 17 > 16
        assert!(c.try_consume(1));
        assert!(c.should_request_renewal()); // 16 <= 16
        c.mark_requested();
        assert!(!c.should_request_renewal()); // in flight
        c.grant(32);
        assert_eq!(c.credits(), 48);
        assert!(!c.should_request_renewal());
    }

    #[test]
    fn decline_deactivates() {
        let mut c = CreditState::new(32);
        c.try_consume(16);
        c.mark_requested();
        c.decline();
        assert!(!c.is_active());
        assert!(!c.try_consume(1));
        assert!(!c.should_request_renewal());
        c.reactivate(32);
        assert!(c.is_active());
        assert_eq!(c.credits(), 32);
        assert!(c.try_consume(1));
    }

    #[test]
    fn median_window_basics() {
        let mut m = MedianWindow::new(5);
        assert_eq!(m.median(), 0);
        m.record(10);
        assert_eq!(m.median(), 10);
        m.record(30);
        m.record(20);
        assert_eq!(m.median(), 20);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn median_window_slides() {
        let mut m = MedianWindow::new(3);
        for v in [1, 2, 3, 100, 100] {
            m.record(v);
        }
        // Window now holds [3, 100, 100].
        assert_eq!(m.median(), 100);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.median(), 0);
    }

    #[test]
    fn even_window_takes_lower_middle() {
        let mut m = MedianWindow::new(4);
        for v in [1, 2, 3, 4] {
            m.record(v);
        }
        assert_eq!(m.median(), 2);
    }
}
