//! Request/response ring buffers (paper §4.1).
//!
//! Each QP owns a pair of logical ring buffers: a *request ring* on the
//! server written by the client, and a *response ring* on the client
//! written by the server. Messages are written with RDMA writes and
//! detected by polling host memory — no receive buffers, no receive-side
//! CQ work.
//!
//! Positions are monotonically increasing byte offsets; the physical
//! position is `offset % capacity`. Messages occupy contiguous 64-byte
//! aligned spans. When a message would straddle the end of the ring, the
//! producer emits a *wrap record* — a zero-entry message whose `total_len`
//! covers the remainder of the ring — and continues at position 0.
//!
//! Flow control: the producer tracks the consumer's `Head` from values
//! piggybacked on response messages (the consumer only advances `Head`
//! after zeroing consumed bytes, so the producer can safely overwrite
//! anything before it). The producer never issues an RDMA read on the hot
//! path.
//!
//! Concurrency discipline: a ring endpoint is **single-owner** — exactly
//! one thread drives a `RingProducer` or `RingConsumer` (cross-thread
//! submission is serialized upstream by the TCQ, [`crate::tcq`]), and
//! producer/consumer never share host memory words except through the
//! canary protocol validated by `poll`. There are therefore no atomics
//! here; any future shared-state access must go through [`crate::sync`]
//! so it stays visible to the loom model checker (see DESIGN.md).

use bytes::Bytes;
use flock_fabric::MemoryRegion;

use crate::error::{FlockError, Result};
use crate::msg::{self, MsgHeader, HDR_SIZE, TRAILER_SIZE};

/// Ring alignment: all records are multiples of this, guaranteeing a wrap
/// record always has room for header + trailer.
pub const RING_ALIGN: usize = 64;

/// Flag marking a wrap record (skip to the start of the ring).
pub const FLAG_WRAP: u16 = 1 << 3;

/// Round `len` up to the ring alignment.
pub const fn align_up(len: usize) -> usize {
    (len + RING_ALIGN - 1) & !(RING_ALIGN - 1)
}

/// Static geometry of a ring within a memory region.
#[derive(Debug, Clone, Copy)]
pub struct RingLayout {
    /// Byte offset of the ring within its memory region.
    pub base: usize,
    /// Ring capacity in bytes (multiple of [`RING_ALIGN`]).
    pub capacity: usize,
}

impl RingLayout {
    /// Create a layout; `capacity` must be a nonzero multiple of 64.
    pub fn new(base: usize, capacity: usize) -> RingLayout {
        assert!(capacity > 0 && capacity.is_multiple_of(RING_ALIGN));
        RingLayout { base, capacity }
    }

    /// Physical byte offset (within the region) for a monotone position.
    pub fn offset_of(&self, pos: u64) -> usize {
        self.base + (pos % self.capacity as u64) as usize
    }
}

/// A reservation returned by [`RingProducer::reserve`].
#[derive(Debug, Clone, Copy)]
pub struct Reservation {
    /// If present, a wrap record `(region_offset, len)` must be written
    /// before the message.
    pub wrap: Option<(usize, usize)>,
    /// Region offset at which to write the message.
    pub offset: usize,
    /// The aligned span the message occupies in the ring.
    pub aligned_len: usize,
}

/// Producer half: tracks the write position and the cached consumer head.
#[derive(Debug)]
pub struct RingProducer {
    layout: RingLayout,
    tail: u64,
    cached_head: u64,
}

impl RingProducer {
    /// Create a producer at position zero.
    pub fn new(layout: RingLayout) -> RingProducer {
        RingProducer {
            layout,
            tail: 0,
            cached_head: 0,
        }
    }

    /// The ring layout.
    pub fn layout(&self) -> RingLayout {
        self.layout
    }

    /// Current monotone tail position.
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Bytes currently free from the producer's (conservative) view.
    pub fn free_space(&self) -> usize {
        self.layout.capacity - (self.tail - self.cached_head) as usize
    }

    /// Fold in a piggybacked consumer head (monotone max).
    pub fn update_head(&mut self, head: u64) {
        if head > self.cached_head {
            self.cached_head = head;
        }
    }

    /// Reserve space for a message of `len` encoded bytes.
    ///
    /// On success the caller must write the wrap record (if any) and the
    /// message at the returned offsets, then the reservation is already
    /// committed (tail advanced).
    pub fn reserve(&mut self, len: usize) -> Result<Reservation> {
        let aligned = align_up(len);
        if aligned * 2 > self.layout.capacity {
            return Err(FlockError::MessageTooLarge {
                need: aligned,
                capacity: self.layout.capacity,
            });
        }
        let pos = (self.tail % self.layout.capacity as u64) as usize;
        let rem = self.layout.capacity - pos;
        let (wrap, needed) = if rem < aligned {
            (Some((self.layout.base + pos, rem)), rem + aligned)
        } else {
            (None, aligned)
        };
        if self.free_space() < needed {
            return Err(FlockError::RingFull {
                need: needed,
                free: self.free_space(),
            });
        }
        if let Some((_, wrap_len)) = wrap {
            self.tail += wrap_len as u64;
        }
        let offset = self.layout.offset_of(self.tail);
        self.tail += aligned as u64;
        Ok(Reservation {
            wrap,
            offset,
            aligned_len: aligned,
        })
    }

    /// Build the bytes of a wrap record of `len` bytes with `canary`.
    ///
    /// Allocates; hot paths should prefer [`RingProducer::write_wrap_record`]
    /// into an existing scratch buffer.
    pub fn wrap_record(len: usize, canary: u64) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        Self::write_wrap_record(&mut buf, canary);
        buf
    }

    /// Write a wrap record covering all of `buf` (allocation-free
    /// counterpart of [`RingProducer::wrap_record`]). `buf.len()` is the
    /// record length; interior bytes are zeroed.
    pub fn write_wrap_record(buf: &mut [u8], canary: u64) {
        let len = buf.len();
        debug_assert!(len >= HDR_SIZE + TRAILER_SIZE);
        buf.fill(0);
        buf[0..4].copy_from_slice(&(len as u32).to_le_bytes());
        // count = 0 (bytes 4..6 already zero)
        buf[6..8].copy_from_slice(&FLAG_WRAP.to_le_bytes());
        buf[8..16].copy_from_slice(&canary.to_le_bytes());
        buf[len - 8..len].copy_from_slice(&canary.to_le_bytes());
    }
}

/// A message pulled out of a ring: an owned copy of the encoded bytes in
/// a shared, refcounted buffer.
///
/// `poll` copies a message out of the ring exactly once (so the ring
/// slot can be zeroed and reused immediately); from then on the bytes
/// are shared — [`OwnedMsg::bytes`] plus [`msg::MsgView::entry_ranges`]
/// yield per-entry payload [`Bytes`] slices without further copies.
#[derive(Debug)]
pub struct OwnedMsg {
    buf: Bytes,
}

impl OwnedMsg {
    /// Decode a view over the owned bytes (always succeeds: validated at
    /// extraction time).
    pub fn view(&self) -> msg::MsgView<'_> {
        msg::decode(&self.buf)
            .expect("validated at poll time")
            .expect("validated at poll time")
    }

    /// The header without re-decoding entries.
    pub fn header(&self) -> MsgHeader {
        self.view().header
    }

    /// The shared encoded bytes (cheap to clone/slice).
    pub fn bytes(&self) -> &Bytes {
        &self.buf
    }

    /// Take the shared encoded bytes.
    pub fn into_bytes(self) -> Bytes {
        self.buf
    }

    /// Raw encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the message carries no bytes (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Consumer half: polls the local memory region for complete messages.
#[derive(Debug)]
pub struct RingConsumer {
    layout: RingLayout,
    head: u64,
}

impl RingConsumer {
    /// Create a consumer at position zero.
    pub fn new(layout: RingLayout) -> RingConsumer {
        RingConsumer { layout, head: 0 }
    }

    /// Current monotone head position (piggybacked to the producer).
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Poll for the next complete message in `mr`.
    ///
    /// Returns `Ok(None)` when no complete message is available. On
    /// success the consumed span is zeroed and `head` advances.
    pub fn poll(&mut self, mr: &MemoryRegion) -> Result<Option<OwnedMsg>> {
        loop {
            let pos = self.layout.offset_of(self.head);
            // Fast probe: total_len first word.
            let mut word = [0u8; 4];
            mr.read(pos, &mut word)?;
            let total = u32::from_le_bytes(word) as usize;
            if total == 0 {
                return Ok(None);
            }
            if total < HDR_SIZE + TRAILER_SIZE || total > self.layout.capacity {
                return Err(FlockError::CorruptMessage("ring record length"));
            }
            let buf = mr.read_vec(pos, total)?;
            // Wrap record: validated by canary, then skipped.
            let flags = u16::from_le_bytes(buf[6..8].try_into().expect("2 bytes"));
            if flags & FLAG_WRAP != 0 {
                let canary = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
                let trailer =
                    u64::from_le_bytes(buf[total - 8..total].try_into().expect("8 bytes"));
                if trailer != canary || canary == 0 {
                    return Ok(None); // still landing
                }
                mr.with_write(|m| m[pos..pos + total].fill(0));
                self.head += total as u64;
                continue; // look at the start of the ring
            }
            match msg::decode(&buf)? {
                None => return Ok(None), // canary not landed yet
                Some(_) => {
                    let adv = align_up(total);
                    mr.with_write(|m| m[pos..pos + total].fill(0));
                    self.head += adv as u64;
                    // `Bytes::from(Vec)` takes ownership without copying:
                    // the single copy out of the ring (read_vec above) is
                    // the last one this message's payload ever sees.
                    return Ok(Some(OwnedMsg {
                        buf: Bytes::from(buf),
                    }));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{encode, EntryMeta, EntryRef};
    use flock_fabric::{Access, MrTable};

    fn layout(cap: usize) -> RingLayout {
        RingLayout::new(0, cap)
    }

    fn mk_msg(buf: &mut [u8], canary: u64, payload: &[u8]) -> usize {
        encode(
            buf,
            &MsgHeader {
                total_len: 0,
                count: 0,
                flags: 0,
                canary,
                head: 0,
                aux: 0,
            },
            &[EntryRef {
                meta: EntryMeta {
                    len: payload.len() as u32,
                    thread_id: 1,
                    seq: 1,
                    rpc_id: 1,
                },
                data: payload,
            }],
        )
        .unwrap()
    }

    /// Write a message "remotely" (plain memcpy stands in for RDMA write).
    fn deliver(mr: &MemoryRegion, prod: &mut RingProducer, canary: u64, payload: &[u8]) {
        let mut staging = vec![0u8; 4096];
        let n = mk_msg(&mut staging, canary, payload);
        let res = prod.reserve(n).unwrap();
        if let Some((woff, wlen)) = res.wrap {
            let rec = RingProducer::wrap_record(wlen, canary);
            mr.write(woff, &rec).unwrap();
        }
        mr.write(res.offset, &staging[..n]).unwrap();
    }

    #[test]
    fn align_up_works() {
        assert_eq!(align_up(0), 0);
        assert_eq!(align_up(1), 64);
        assert_eq!(align_up(64), 64);
        assert_eq!(align_up(65), 128);
    }

    #[test]
    fn produce_consume_roundtrip() {
        let t = MrTable::new();
        let mr = t.register(4096, Access::REMOTE_ALL);
        let mut prod = RingProducer::new(layout(4096));
        let mut cons = RingConsumer::new(layout(4096));

        deliver(&mr, &mut prod, 0xAA, b"first");
        deliver(&mr, &mut prod, 0xBB, b"second");

        let m1 = cons.poll(&mr).unwrap().expect("first message");
        assert_eq!(m1.view().to_entries()[0].1, b"first");
        let m2 = cons.poll(&mr).unwrap().expect("second message");
        assert_eq!(m2.view().to_entries()[0].1, b"second");
        assert!(cons.poll(&mr).unwrap().is_none());
    }

    #[test]
    fn consumed_region_is_zeroed() {
        let t = MrTable::new();
        let mr = t.register(1024, Access::REMOTE_ALL);
        let mut prod = RingProducer::new(layout(1024));
        let mut cons = RingConsumer::new(layout(1024));
        deliver(&mr, &mut prod, 0xCC, b"zeroing");
        let _ = cons.poll(&mr).unwrap().unwrap();
        // The slot must read as empty again.
        assert_eq!(mr.read_u64(0).unwrap() as u32, 0);
    }

    #[test]
    fn wraparound_via_wrap_record() {
        let t = MrTable::new();
        let cap = 512;
        let mr = t.register(cap, Access::REMOTE_ALL);
        let mut prod = RingProducer::new(layout(cap));
        let mut cons = RingConsumer::new(layout(cap));

        // Fill most of the ring, consume it, then force a wrap.
        for i in 0..3 {
            deliver(&mr, &mut prod, i + 1, &[i as u8; 100]);
            let m = cons.poll(&mr).unwrap().unwrap();
            assert_eq!(m.view().to_entries()[0].1[0], i as u8);
            prod.update_head(cons.head());
        }
        // tail is now at 3*192=576 mod 512 = 64; write a 200-byte payload
        // message (aligned 256). rem = 448 >= 256: no wrap yet. Keep going
        // until a wrap actually happens.
        let mut wrapped = false;
        for i in 0..10u8 {
            let payload = vec![0x40 + i; 150];
            let mut staging = vec![0u8; 1024];
            let n = mk_msg(&mut staging, 100 + i as u64, &payload);
            let res = prod.reserve(n).unwrap();
            if let Some((woff, wlen)) = res.wrap {
                let rec = RingProducer::wrap_record(wlen, 0x77);
                mr.write(woff, &rec).unwrap();
                wrapped = true;
            }
            mr.write(res.offset, &staging[..n]).unwrap();
            let m = cons.poll(&mr).unwrap().expect("message after maybe-wrap");
            assert_eq!(m.view().to_entries()[0].1, payload.as_slice());
            prod.update_head(cons.head());
        }
        assert!(wrapped, "test did not exercise the wrap path");
    }

    #[test]
    fn ring_full_is_reported() {
        let t = MrTable::new();
        let cap = 256;
        let _mr = t.register(cap, Access::REMOTE_ALL);
        let mut prod = RingProducer::new(layout(cap));
        // Two 64-byte records fit (128 bytes total), then free space for a
        // third depends on head never advancing.
        assert!(prod.reserve(40).is_ok());
        assert!(prod.reserve(40).is_ok());
        assert!(prod.reserve(40).is_ok());
        assert!(prod.reserve(40).is_ok());
        let e = prod.reserve(40).unwrap_err();
        assert!(matches!(e, FlockError::RingFull { .. }));
    }

    #[test]
    fn head_update_frees_space() {
        let mut prod = RingProducer::new(layout(256));
        for _ in 0..4 {
            prod.reserve(40).unwrap();
        }
        assert!(prod.reserve(40).is_err());
        prod.update_head(64);
        assert!(prod.reserve(40).is_ok());
        // Stale head values are ignored.
        prod.update_head(0);
        assert_eq!(prod.free_space(), 0);
    }

    #[test]
    fn oversized_message_rejected() {
        let mut prod = RingProducer::new(layout(256));
        assert!(matches!(
            prod.reserve(200),
            Err(FlockError::MessageTooLarge { .. })
        ));
    }

    #[test]
    fn partial_message_not_consumed() {
        let t = MrTable::new();
        let mr = t.register(1024, Access::REMOTE_ALL);
        let mut cons = RingConsumer::new(layout(1024));
        // Write a message whose trailer hasn't landed.
        let mut staging = vec![0u8; 256];
        let n = mk_msg(&mut staging, 0x99, b"payload");
        staging[n - 8..n].fill(0);
        mr.write(0, &staging[..n]).unwrap();
        assert!(cons.poll(&mr).unwrap().is_none());
        assert_eq!(cons.head(), 0);
        // Trailer lands; now it is consumed.
        mr.write(n - 8, &0x99u64.to_le_bytes()).unwrap();
        assert!(cons.poll(&mr).unwrap().is_some());
    }

    #[test]
    fn corrupt_length_is_an_error() {
        let t = MrTable::new();
        let mr = t.register(1024, Access::REMOTE_ALL);
        let mut cons = RingConsumer::new(layout(1024));
        mr.write(0, &20u32.to_le_bytes()).unwrap(); // below minimum
        assert!(cons.poll(&mr).is_err());
    }
}
