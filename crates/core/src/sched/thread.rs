//! Sender-side thread scheduling — the paper's Algorithm 1.
//!
//! Threads are sorted first by median request size and second by the
//! number of requests sent since the last scheduling interval, then packed
//! onto active QPs by a byte quota (`total_bytes / active_qps`). This
//! groups small-payload threads on shared QPs (maximizing coalescing) and
//! isolates large-payload threads (avoiding head-of-line blocking), while
//! giving every active QP a similar byte load.

/// Per-thread load statistics since the last scheduling interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadLoadStats {
    /// The thread's id.
    pub thread_id: u32,
    /// Median request size in bytes.
    pub median_req_size: u32,
    /// Requests sent.
    pub requests: u64,
    /// Total bytes sent.
    pub bytes: u64,
}

/// Map threads to active QPs (Algorithm 1). Returns `(thread_id, qp_index)`
/// pairs with `qp_index < num_qps`.
///
/// Runs in `O(n log n)` for the sort plus a linear packing pass. With no
/// recorded traffic (`total_bytes == 0`), threads are spread round-robin so
/// new threads still receive balanced assignments.
pub fn assign_threads(stats: &[ThreadLoadStats], num_qps: usize) -> Vec<(u32, usize)> {
    assert!(num_qps >= 1, "need at least one active QP");
    let mut sorted: Vec<&ThreadLoadStats> = stats.iter().collect();
    sorted.sort_by(|a, b| {
        a.median_req_size
            .cmp(&b.median_req_size)
            .then(a.requests.cmp(&b.requests))
            .then(a.thread_id.cmp(&b.thread_id))
    });

    let total_bytes: u64 = stats.iter().map(|t| t.bytes).sum();
    if total_bytes == 0 {
        return sorted
            .iter()
            .enumerate()
            .map(|(i, t)| (t.thread_id, i % num_qps))
            .collect();
    }

    let quota = (total_bytes / num_qps as u64).max(1);
    let mut qp_id = 0usize;
    let mut qp_load = 0u64;
    let mut out = Vec::with_capacity(stats.len());
    for t in sorted {
        qp_load += t.bytes;
        out.push((t.thread_id, qp_id.min(num_qps - 1)));
        if qp_load >= quota {
            qp_id += 1;
            qp_load = 0;
        }
    }

    // Class-isolation pass (the paper's first goal: "avoid head-of-line
    // blocking ... by minimizing the placement of a thread with a large
    // payload with a smaller one on the same QP"). The byte quota can
    // append the first large thread to a small-thread segment when the
    // large threads dominate the byte count; while idle QPs remain, split
    // such mixed segments at the size-class boundary (≥4× median jump).
    let median_of = |tid: u32| -> u32 {
        stats
            .iter()
            .find(|s| s.thread_id == tid)
            .map(|s| s.median_req_size)
            .unwrap_or(0)
    };
    loop {
        let mut counts = vec![0usize; num_qps];
        for (_, q) in &out {
            counts[*q] += 1;
        }
        let Some(idle) = counts.iter().position(|&c| c == 0) else {
            break;
        };
        // Find a lane whose (contiguous, sorted) members straddle a class
        // boundary.
        let mut split: Option<(usize, usize)> = None; // (lane, out-index after boundary)
        'lanes: for lane in 0..num_qps {
            let members: Vec<usize> = out
                .iter()
                .enumerate()
                .filter(|(_, (_, q))| *q == lane)
                .map(|(i, _)| i)
                .collect();
            for w in members.windows(2) {
                let a = median_of(out[w[0]].0).max(1);
                let b = median_of(out[w[1]].0).max(1);
                if b >= a * 4 {
                    split = Some((lane, w[1]));
                    break 'lanes;
                }
            }
        }
        let Some((lane, from)) = split else { break };
        for item in out.iter_mut().skip(from) {
            if item.1 == lane {
                item.1 = idle;
            }
        }
    }

    // Fairness pass (the paper's third goal: "the scheduler tries to use
    // all active QPs fairly"). Byte quotas alone can strand QPs idle when
    // a few heavy threads dominate the byte count. Repeatedly split the
    // most-crowded QP's *contiguous* run of (sorted) threads onto an idle
    // QP: every QP gets used, and size classes stay grouped so large
    // payloads remain isolated from small ones.
    loop {
        let mut counts = vec![0usize; num_qps];
        for (_, q) in &out {
            counts[*q] += 1;
        }
        let Some(idle) = counts.iter().position(|&c| c == 0) else {
            break;
        };
        let (donor, &donor_count) = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .expect("at least one lane");
        if donor_count < 2 {
            break; // nothing left to split
        }
        // Move the second half of the donor's run (assignments preserve
        // the sorted order, so the run is contiguous in `out`).
        let members: Vec<usize> = out
            .iter()
            .enumerate()
            .filter(|(_, (_, q))| *q == donor)
            .map(|(i, _)| i)
            .collect();
        for &i in &members[members.len() / 2..] {
            out[i].1 = idle;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(thread_id: u32, median: u32, requests: u64, bytes: u64) -> ThreadLoadStats {
        ThreadLoadStats {
            thread_id,
            median_req_size: median,
            requests,
            bytes,
        }
    }

    fn qp_of(assign: &[(u32, usize)], thread: u32) -> usize {
        assign.iter().find(|(id, _)| *id == thread).unwrap().1
    }

    #[test]
    fn small_threads_share_large_threads_isolated() {
        // 8 small-payload threads (512 KB total) and 2 large-payload
        // threads (1 MB each), 5 QPs. Quota = 2.56 MB / 5 = 512 KB: the
        // smalls exactly fill QP 0, and each large thread exceeds the
        // quota alone, landing on its own QP.
        let mut stats: Vec<ThreadLoadStats> = (0..8).map(|i| t(i, 64, 1000, 64_000)).collect();
        stats.push(t(8, 1024, 1000, 1_024_000));
        stats.push(t(9, 1024, 1001, 1_024_000));
        let assign = assign_threads(&stats, 5);
        let l1 = qp_of(&assign, 8);
        let l2 = qp_of(&assign, 9);
        assert_ne!(l1, l2, "each large thread gets a dedicated QP");
        // No small thread shares a QP with a large one (the head-of-line
        // blocking goal), though the fairness pass may spread smalls over
        // several QPs.
        let small_qps: Vec<usize> = (0..8).map(|i| qp_of(&assign, i)).collect();
        assert!(small_qps.iter().all(|&q| q != l1 && q != l2), "{assign:?}");
        // Every QP is used (fairness goal, paper §5.2).
        let mut used: Vec<usize> = assign.iter().map(|(_, q)| *q).collect();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used.len(), 5, "{assign:?}");
    }

    #[test]
    fn loads_are_balanced_across_qps() {
        let stats: Vec<ThreadLoadStats> = (0..8).map(|i| t(i, 64, 100, 6400)).collect();
        let assign = assign_threads(&stats, 4);
        let mut per_qp = [0u64; 4];
        for (id, qp) in &assign {
            per_qp[*qp] += stats.iter().find(|s| s.thread_id == *id).unwrap().bytes;
        }
        let max = per_qp.iter().max().unwrap();
        let min = per_qp.iter().min().unwrap();
        assert!(max - min <= 6400, "per_qp={per_qp:?}");
    }

    #[test]
    fn qp_index_never_exceeds_bounds() {
        // Byte-heavy threads can exhaust the quota early; indices clamp.
        let stats: Vec<ThreadLoadStats> = (0..10).map(|i| t(i, 64, 1, 1_000_000)).collect();
        let assign = assign_threads(&stats, 3);
        assert!(assign.iter().all(|(_, q)| *q < 3));
        assert_eq!(assign.len(), 10);
    }

    #[test]
    fn no_traffic_round_robins() {
        let stats: Vec<ThreadLoadStats> = (0..6).map(|i| t(i, 0, 0, 0)).collect();
        let assign = assign_threads(&stats, 3);
        let mut counts = [0; 3];
        for (_, q) in &assign {
            counts[*q] += 1;
        }
        assert_eq!(counts, [2, 2, 2]);
    }

    #[test]
    fn single_qp_takes_everything() {
        let stats: Vec<ThreadLoadStats> = (0..5).map(|i| t(i, 64 * (i + 1), 10, 640)).collect();
        let assign = assign_threads(&stats, 1);
        assert!(assign.iter().all(|(_, q)| *q == 0));
    }

    #[test]
    fn sort_is_by_median_then_requests() {
        let stats = vec![t(0, 128, 5, 640), t(1, 64, 9, 576), t(2, 64, 3, 192)];
        let assign = assign_threads(&stats, 3);
        // Sorted order: thread 2 (64,3), thread 1 (64,9), thread 0 (128,5).
        // With three threads and three QPs the fairness pass ensures each
        // lands on its own QP.
        let qps: Vec<usize> = [2, 1, 0].iter().map(|&i| qp_of(&assign, i)).collect();
        let mut sorted = qps.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "{assign:?}");
    }

    #[test]
    fn fairness_pass_fills_idle_qps() {
        // One heavy thread dominates the byte quota: without the fairness
        // pass, all light threads would share QP 0 and QPs 2..N would sit
        // idle.
        let mut stats: Vec<ThreadLoadStats> = (0..12).map(|i| t(i, 64, 100, 6_400)).collect();
        stats.push(t(12, 4096, 100, 4_096_000));
        let assign = assign_threads(&stats, 6);
        let mut counts = [0usize; 6];
        for (_, q) in &assign {
            counts[*q] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "idle QP: {counts:?}");
        // The heavy thread still sits alone.
        let heavy_qp = qp_of(&assign, 12);
        assert_eq!(counts[heavy_qp], 1, "{assign:?}");
    }

    #[test]
    fn deterministic_for_equal_stats() {
        let stats: Vec<ThreadLoadStats> = (0..4).map(|i| t(i, 64, 10, 640)).collect();
        let a = assign_threads(&stats, 2);
        let b = assign_threads(&stats, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_thread_list() {
        assert!(assign_threads(&[], 4).is_empty());
    }
}
