//! Flock's symbiotic send-recv scheduling (paper §5).
//!
//! * [`qp`] — receiver-side QP scheduling: the server bounds the number of
//!   active QPs (`MAX_AQP`) and redistributes them across senders in
//!   proportion to their utilization.
//! * [`thread`] — sender-side thread scheduling: Algorithm 1, packing
//!   application threads onto active QPs by request-size class and byte
//!   quota to avoid head-of-line blocking.
//! * [`tenant`] — per-tenant accounting for the gateway topology: share
//!   caps, issued/completed counters, and the fairness snapshot.
//!
//! The policies are pure state machines: the threaded runtime and the
//! discrete-event models drive the same code. Tenant counters are the
//! one exception (lock-free statistics bumped from the dispatch path).

pub mod qp;
pub mod tenant;
pub mod thread;

pub use qp::{QpScheduler, QpSchedulerConfig, SenderQp};
pub use tenant::{
    jains_index, FairnessSnapshot, TenantAccounting, TenantCounters, TenantRow, DEFAULT_TENANT,
};
pub use thread::{assign_threads, ThreadLoadStats};
