//! Per-tenant accounting for the receiver-side QP scheduler.
//!
//! A *tenant* is a group of senders that share one isolation domain: the
//! gateway maps every edge session to a tenant, and each of the tenant's
//! Flock connections (senders) carries that tenant id through the
//! connect handshake. The scheduler keeps tenancy a first-class,
//! queryable property:
//!
//! * **Share caps** — a tenant's active-QP total can be capped below
//!   what pure utilization-proportional redistribution would give it
//!   ([`crate::sched::qp::QpScheduler::set_tenant_cap`]). An aggressor
//!   tenant then cannot convert traffic volume into AQP share, which is
//!   the RDMAvisor-style isolation the gateway relies on.
//! * **Counters** — issued/completed request counts per tenant, updated
//!   lock-free from the server's dispatch path through the shared
//!   [`TenantCounters`] handles (the scheduler mutex never sits on the
//!   per-request path).
//! * **Fairness snapshot** — a point-in-time view of per-tenant shares
//!   and counters plus Jain's fairness index, the number the tenant
//!   bench and the isolation tests assert on.
//!
//! Counters are monotone `Relaxed` statistics: readers may observe
//! `issued` and `completed` from slightly different instants, so
//! [`TenantCounters::queued`] saturates rather than underflows.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// The tenant every sender belongs to unless the connect handshake says
/// otherwise.
pub const DEFAULT_TENANT: u32 = 0;

/// Lock-free per-tenant request counters, shared between the scheduler
/// (which owns the registry) and the server's dispatch path (which
/// holds one `Arc` per connection and bumps counters without any lock).
#[derive(Debug, Default)]
pub struct TenantCounters {
    issued: AtomicU64,
    completed: AtomicU64,
}

impl TenantCounters {
    /// Record `n` requests entering dispatch for this tenant.
    pub fn note_issued(&self, n: u64) {
        self.issued.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` responses flushed for this tenant.
    pub fn note_completed(&self, n: u64) {
        self.completed.fetch_add(n, Ordering::Relaxed);
    }

    /// Requests that entered dispatch so far.
    pub fn issued(&self) -> u64 {
        self.issued.load(Ordering::Relaxed)
    }

    /// Responses flushed so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Requests currently inside the server (issued minus completed,
    /// saturating: the two counters are read at distinct instants).
    pub fn queued(&self) -> u64 {
        self.issued().saturating_sub(self.completed())
    }
}

/// Registry of per-tenant counter blocks. Creation is rare (first
/// connect of a tenant); lookups after that return the shared `Arc`, so
/// the dispatch hot path never touches the registry lock.
#[derive(Debug, Default)]
pub struct TenantAccounting {
    tenants: RwLock<BTreeMap<u32, Arc<TenantCounters>>>,
}

impl TenantAccounting {
    /// The counter block for `tenant`, created on first use.
    pub fn counters(&self, tenant: u32) -> Arc<TenantCounters> {
        if let Some(c) = self.tenants.read().get(&tenant) {
            return Arc::clone(c);
        }
        let mut map = self.tenants.write();
        Arc::clone(map.entry(tenant).or_default())
    }

    /// The counter block for `tenant`, if it has ever been seen.
    pub fn get(&self, tenant: u32) -> Option<Arc<TenantCounters>> {
        self.tenants.read().get(&tenant).cloned()
    }

    /// Tenant ids with counter blocks, in ascending order.
    pub fn tenant_ids(&self) -> Vec<u32> {
        self.tenants.read().keys().copied().collect()
    }
}

/// One tenant's row in a [`FairnessSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantRow {
    /// The tenant id.
    pub tenant: u32,
    /// Registered senders (connections) of this tenant.
    pub senders: usize,
    /// Active QPs currently held across those senders.
    pub active_qps: usize,
    /// Configured active-QP cap, if any.
    pub cap: Option<usize>,
    /// `active_qps` as a fraction of all active QPs (0 when idle).
    pub share: f64,
    /// Requests that entered dispatch.
    pub issued: u64,
    /// Responses flushed.
    pub completed: u64,
    /// In-flight requests (`issued - completed`, saturating).
    pub queued: u64,
}

/// Point-in-time view of per-tenant shares and counters — the
/// scheduler's answer to "is isolation holding right now?".
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessSnapshot {
    /// The scheduler's global active-QP budget.
    pub max_aqp: usize,
    /// Active QPs across all tenants at snapshot time.
    pub total_active: usize,
    /// Per-tenant rows, ascending by tenant id.
    pub tenants: Vec<TenantRow>,
}

impl FairnessSnapshot {
    /// Jain's fairness index over per-tenant active-QP shares.
    pub fn jains_active(&self) -> f64 {
        jains_index(self.tenants.iter().map(|t| t.active_qps as f64))
    }

    /// Jain's fairness index over per-tenant completed-request counts.
    pub fn jains_completed(&self) -> f64 {
        jains_index(self.tenants.iter().map(|t| t.completed as f64))
    }

    /// The row for `tenant`, if present.
    pub fn tenant(&self, tenant: u32) -> Option<&TenantRow> {
        self.tenants.iter().find(|t| t.tenant == tenant)
    }
}

/// Jain's fairness index: `(Σx)² / (n · Σx²)`. 1.0 is perfectly fair,
/// `1/n` is one allocation monopolizing everything. An empty or all-zero
/// population is vacuously fair (1.0).
pub fn jains_index(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut n, mut sum, mut sq) = (0u64, 0.0f64, 0.0f64);
    for x in xs {
        n += 1;
        sum += x;
        sq += x * x;
    }
    if n == 0 || sq == 0.0 {
        1.0
    } else {
        (sum * sum) / (n as f64 * sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_saturate_and_accumulate() {
        let c = TenantCounters::default();
        assert_eq!(c.queued(), 0);
        c.note_issued(5);
        assert_eq!(c.queued(), 5);
        c.note_completed(3);
        assert_eq!((c.issued(), c.completed(), c.queued()), (5, 3, 2));
        // A reader racing issued/completed must never underflow.
        c.note_completed(10);
        assert_eq!(c.queued(), 0);
    }

    #[test]
    fn accounting_returns_shared_blocks() {
        let acct = TenantAccounting::default();
        let a = acct.counters(7);
        let b = acct.counters(7);
        a.note_issued(1);
        assert_eq!(b.issued(), 1, "same tenant shares one block");
        assert!(acct.get(8).is_none());
        acct.counters(3);
        assert_eq!(acct.tenant_ids(), vec![3, 7]);
    }

    #[test]
    fn jains_index_known_values() {
        assert_eq!(jains_index([].into_iter()), 1.0);
        assert_eq!(jains_index([0.0, 0.0].into_iter()), 1.0);
        assert_eq!(jains_index([4.0, 4.0, 4.0].into_iter()), 1.0);
        // One tenant hogging everything: 1/n.
        let j = jains_index([9.0, 0.0, 0.0].into_iter());
        assert!((j - 1.0 / 3.0).abs() < 1e-12, "{j}");
        // Mild imbalance stays high.
        let j = jains_index([3.0, 4.0, 3.0, 4.0].into_iter());
        assert!(j > 0.97, "{j}");
    }
}
