//! Receiver-side QP scheduling (paper §5.1).
//!
//! The server bounds the number of QPs it actively serves (`MAX_AQP`,
//! default 256 — chosen from the Figure 2(a) thrash point) and
//! redistributes active QPs across senders every scheduling interval in
//! proportion to utilization:
//!
//! ```text
//!            ⎧ MAX_AQP · U_i / Σ_k U_k   if U_i > 0
//!   AQP_i =  ⎨
//!            ⎩ 1                          otherwise (dormant)
//! ```
//!
//! where `U_{i,j}` is the sum of coalescing degrees reported in credit
//! renewal requests on QP `j` of sender `i` since the last redistribution,
//! and `U_i = Σ_j U_{i,j}`. Higher utilization means either more QP
//! contention (higher coalescing degree) or more frequent renewals.
//!
//! **Multi-tenancy** (gateway topology, DESIGN.md §5h): every sender
//! belongs to a tenant ([`crate::sched::tenant::DEFAULT_TENANT`] unless
//! the connect handshake says otherwise). Redistribution additionally
//! enforces per-tenant active-QP *share caps* — a capped tenant's
//! senders cannot collectively hold more active QPs than the cap, no
//! matter how much utilization they report — and the whole tenancy
//! state is queryable via [`QpScheduler::fairness_snapshot`].
//!
//! Concurrency discipline: the scheduler runs on the server's single
//! scheduling thread; senders only observe its decisions through credit
//! renewal responses. No atomics in the policy itself — the only shared
//! state is the per-tenant counter blocks ([`TenantAccounting`]), which
//! are plain monotone statistics updated outside the scheduler mutex.
//! Any future shared state on a model-checked path must go through
//! [`crate::sync`] so it stays visible to the loom checker (DESIGN.md).

use std::collections::BTreeMap;
use std::sync::Arc;

use super::tenant::{FairnessSnapshot, TenantAccounting, TenantRow, DEFAULT_TENANT};

/// Default bound on server-active QPs (paper `MAX_AQP`).
pub const DEFAULT_MAX_AQP: usize = 256;

/// Configuration for the QP scheduler.
#[derive(Debug, Clone)]
pub struct QpSchedulerConfig {
    /// Maximum number of QPs the server keeps active.
    pub max_aqp: usize,
    /// Credits granted per renewal.
    pub grant_size: u32,
}

impl Default for QpSchedulerConfig {
    fn default() -> Self {
        QpSchedulerConfig {
            max_aqp: DEFAULT_MAX_AQP,
            grant_size: crate::credit::DEFAULT_CREDITS,
        }
    }
}

/// Identifies one QP of one sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SenderQp {
    /// Sender (client node) id.
    pub sender: u32,
    /// QP index within that sender's connection handle.
    pub qp: usize,
}

#[derive(Debug)]
struct SenderState {
    util: Vec<u64>,
    active: Vec<bool>,
    tenant: u32,
}

impl SenderState {
    fn active_count(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }
    fn total_util(&self) -> u64 {
        self.util.iter().sum()
    }
}

/// The receiver-side QP scheduler.
#[derive(Debug)]
pub struct QpScheduler {
    cfg: QpSchedulerConfig,
    senders: BTreeMap<u32, SenderState>,
    /// Per-tenant active-QP caps (tenants absent here are uncapped).
    tenant_caps: BTreeMap<u32, usize>,
    /// Shared per-tenant request counters (see [`TenantAccounting`]).
    accounting: Arc<TenantAccounting>,
}

impl QpScheduler {
    /// Create a scheduler.
    pub fn new(cfg: QpSchedulerConfig) -> QpScheduler {
        QpScheduler {
            cfg,
            senders: BTreeMap::new(),
            tenant_caps: BTreeMap::new(),
            accounting: Arc::new(TenantAccounting::default()),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &QpSchedulerConfig {
        &self.cfg
    }

    /// The shared per-tenant counter registry. The server clones per
    /// tenant counter blocks out of this at accept time so the dispatch
    /// hot path never takes the scheduler mutex.
    pub fn accounting(&self) -> &Arc<TenantAccounting> {
        &self.accounting
    }

    /// Register a sender with `n_qps` connections under
    /// [`DEFAULT_TENANT`]. See [`QpScheduler::register_sender_tenant`].
    pub fn register_sender(&mut self, sender: u32, n_qps: usize) {
        self.register_sender_tenant(sender, n_qps, DEFAULT_TENANT);
    }

    /// Register a sender with `n_qps` connections on behalf of `tenant`.
    ///
    /// A new sender receives the average active-QP count of existing
    /// functioning senders (paper §5.1), clamped to `[1, n_qps]` and to
    /// the remaining global budget.
    pub fn register_sender_tenant(&mut self, sender: u32, n_qps: usize, tenant: u32) {
        assert!(n_qps >= 1);
        let used: usize = self.senders.values().map(|s| s.active_count()).sum();
        let initial = if self.senders.is_empty() {
            n_qps.min(self.cfg.max_aqp)
        } else {
            let avg = (used / self.senders.len()).max(1);
            avg.min(n_qps)
                .min((self.cfg.max_aqp - used.min(self.cfg.max_aqp)).max(1))
        };
        let mut active = vec![false; n_qps];
        for a in active.iter_mut().take(initial) {
            *a = true;
        }
        self.senders.insert(
            sender,
            SenderState {
                util: vec![0; n_qps],
                active,
                tenant,
            },
        );
        // Materialize the tenant's counter block so snapshots list the
        // tenant even before its first request.
        self.accounting.counters(tenant);
    }

    /// The tenant a sender was registered under.
    pub fn tenant_of(&self, sender: u32) -> Option<u32> {
        self.senders.get(&sender).map(|s| s.tenant)
    }

    /// Cap `tenant`'s total active QPs at `cap` from the next
    /// redistribution on. Floors still win: every registered sender
    /// keeps at least one active QP, so the effective cap is
    /// `max(cap, senders_of_tenant)`. Budget a cap frees flows to the
    /// other tenants' busy senders in the same redistribution.
    pub fn set_tenant_cap(&mut self, tenant: u32, cap: usize) {
        assert!(cap >= 1);
        self.tenant_caps.insert(tenant, cap);
    }

    /// Remove `tenant`'s active-QP cap.
    pub fn clear_tenant_cap(&mut self, tenant: u32) {
        self.tenant_caps.remove(&tenant);
    }

    /// The configured cap for `tenant`, if any.
    pub fn tenant_cap(&self, tenant: u32) -> Option<usize> {
        self.tenant_caps.get(&tenant).copied()
    }

    /// Active QPs currently held by `tenant`'s senders.
    pub fn tenant_active(&self, tenant: u32) -> usize {
        self.senders
            .values()
            .filter(|s| s.tenant == tenant)
            .map(|s| s.active_count())
            .sum()
    }

    /// Remove a departing sender, releasing its whole AQP share
    /// immediately (graceful teardown — the budget becomes available to
    /// the next redistribution without waiting for the sender to go
    /// dormant). Returns the QP indices that were active, so the caller
    /// can tear down their server-side contexts.
    pub fn unregister_sender(&mut self, sender: u32) -> Vec<usize> {
        match self.senders.remove(&sender) {
            Some(s) => s
                .active
                .iter()
                .enumerate()
                .filter(|(_, a)| **a)
                .map(|(qp, _)| qp)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Grow a sender by one lane (lazy QP materialization: the client
    /// attached a data QP after connecting). The new lane starts active
    /// when the global budget allows — it is about to carry traffic —
    /// and inactive otherwise (the next redistribution arbitrates).
    /// Returns the new lane's index, or `None` for unknown senders.
    pub fn add_qp(&mut self, sender: u32) -> Option<usize> {
        let used: usize = self.senders.values().map(|s| s.active_count()).sum();
        let tenant = self.senders.get(&sender)?.tenant;
        // A capped tenant's lazily attached lane must not start active
        // past the cap — it would hold stolen budget until the next
        // redistribution.
        let tenant_room = match self.tenant_caps.get(&tenant) {
            Some(&cap) => self.tenant_active(tenant) < cap,
            None => true,
        };
        let state = self.senders.get_mut(&sender)?;
        let qp = state.util.len();
        state.util.push(0);
        state.active.push(used < self.cfg.max_aqp && tenant_room);
        Some(qp)
    }

    /// Whether `qp` of `sender` is currently active.
    pub fn is_active(&self, sq: SenderQp) -> bool {
        self.senders
            .get(&sq.sender)
            .and_then(|s| s.active.get(sq.qp))
            .copied()
            .unwrap_or(false)
    }

    /// Total active QPs across all senders.
    pub fn total_active(&self) -> usize {
        self.senders.values().map(|s| s.active_count()).sum()
    }

    /// Handle a credit renewal request carrying the reported median
    /// coalescing degree. Returns `Some(grant)` if the QP is active and the
    /// request is granted, `None` if declined (QP deactivated).
    ///
    /// The reported degree (at least 1 for any renewal) accumulates into
    /// the QP's utilization for the next redistribution.
    pub fn on_credit_request(&mut self, sq: SenderQp, median_degree: u16) -> Option<u32> {
        let state = self.senders.get_mut(&sq.sender)?;
        let util = state.util.get_mut(sq.qp)?;
        *util += u64::from(median_degree.max(1));
        if state.active[sq.qp] {
            Some(self.cfg.grant_size)
        } else {
            None
        }
    }

    /// Redistribute active QPs (end of a scheduling interval).
    ///
    /// Returns the list of `(SenderQp, now_active)` *changes* relative to
    /// the previous assignment. Utilization counters reset afterwards.
    ///
    /// With tenant caps configured, a clamping pass runs after the
    /// proportional targets: capped tenants shed lanes (least-utilized
    /// senders first) down to their cap, and the freed budget flows to
    /// the other tenants' busy senders (most-utilized first). With no
    /// caps the arithmetic is exactly the uncapped paper policy.
    pub fn redistribute(&mut self) -> Vec<(SenderQp, bool)> {
        let total_util: u64 = self.senders.values().map(|s| s.total_util()).sum();
        let max_aqp = self.cfg.max_aqp as u64;
        let mut changes = Vec::new();

        // Pass 1: compute each sender's AQP_i target.
        let mut targets: Vec<(u32, usize)> = self
            .senders
            .iter()
            .map(|(&id, s)| {
                let u_i = s.total_util();
                let n_qps = s.util.len();
                let target = if u_i > 0 && total_util > 0 {
                    (((max_aqp * u_i) / total_util) as usize).clamp(1, n_qps)
                } else {
                    1 // dormant senders keep one QP for future traffic
                };
                (id, target)
            })
            .collect();

        // Pass 1b: enforce tenant caps, recycling what they free.
        if !self.tenant_caps.is_empty() {
            let surplus = self.clamp_tenant_targets(&mut targets);
            if surplus > 0 {
                self.grant_surplus(&mut targets, surplus);
            }
        }

        // Pass 2: apply — within a sender, keep the most-utilized QPs.
        for (id, target) in targets {
            let s = self.senders.get_mut(&id).expect("sender exists");
            let mut order: Vec<usize> = (0..s.util.len()).collect();
            order.sort_by(|&a, &b| s.util[b].cmp(&s.util[a]).then(a.cmp(&b)));
            let mut new_active = vec![false; s.util.len()];
            for &qp in order.iter().take(target) {
                new_active[qp] = true;
            }
            for (qp, &now_active) in new_active.iter().enumerate() {
                if now_active != s.active[qp] {
                    changes.push((SenderQp { sender: id, qp }, now_active));
                }
            }
            s.active = new_active;
            s.util.iter_mut().for_each(|u| *u = 0);
        }
        changes
    }

    /// Shrink each capped tenant's summed targets down to its cap,
    /// taking lanes from that tenant's least-utilized senders first
    /// (never below the 1-lane floor). Returns the total number of
    /// lanes reclaimed from *busy* senders — budget the proportional
    /// pass had allocated and the caps just freed.
    fn clamp_tenant_targets(&self, targets: &mut [(u32, usize)]) -> usize {
        let mut surplus = 0usize;
        for (&tenant, &cap) in &self.tenant_caps {
            let mut total: usize = targets
                .iter()
                .filter(|(id, _)| self.senders[id].tenant == tenant)
                .map(|&(_, t)| t)
                .sum();
            if total <= cap {
                continue;
            }
            // Victim order: least utilization first, id as tiebreak, so
            // the clamp is deterministic and spares the tenant's hottest
            // sender longest.
            let mut order: Vec<usize> = (0..targets.len())
                .filter(|&i| self.senders[&targets[i].0].tenant == tenant)
                .collect();
            order.sort_by_key(|&i| (self.senders[&targets[i].0].total_util(), targets[i].0));
            'shrink: while total > cap {
                let mut shrunk = false;
                for &i in &order {
                    if targets[i].1 > 1 {
                        targets[i].1 -= 1;
                        total -= 1;
                        if self.senders[&targets[i].0].total_util() > 0 {
                            surplus += 1;
                        }
                        shrunk = true;
                        if total <= cap {
                            break 'shrink;
                        }
                    }
                }
                if !shrunk {
                    break; // every sender at its floor: floors win
                }
            }
        }
        surplus
    }

    /// Hand `surplus` lanes to busy senders of tenants with headroom,
    /// most-utilized first, one lane per round (so the surplus spreads
    /// instead of dog-piling the single hottest sender).
    fn grant_surplus(&self, targets: &mut [(u32, usize)], mut surplus: usize) {
        let mut order: Vec<usize> = (0..targets.len())
            .filter(|&i| self.senders[&targets[i].0].total_util() > 0)
            .collect();
        order.sort_by_key(|&i| {
            (
                std::cmp::Reverse(self.senders[&targets[i].0].total_util()),
                targets[i].0,
            )
        });
        let mut tenant_totals: BTreeMap<u32, usize> = BTreeMap::new();
        for &(id, t) in targets.iter() {
            *tenant_totals.entry(self.senders[&id].tenant).or_insert(0) += t;
        }
        while surplus > 0 {
            let mut granted = false;
            for &i in &order {
                if surplus == 0 {
                    break;
                }
                let (id, ref mut target) = targets[i];
                let s = &self.senders[&id];
                let at_cap = self
                    .tenant_caps
                    .get(&s.tenant)
                    .is_some_and(|&cap| tenant_totals[&s.tenant] >= cap);
                if *target < s.util.len() && !at_cap {
                    *target += 1;
                    *tenant_totals.get_mut(&s.tenant).expect("seeded above") += 1;
                    surplus -= 1;
                    granted = true;
                }
            }
            if !granted {
                break; // nobody can grow: caps/lane counts saturated
            }
        }
    }

    /// Snapshot of the active flags for one sender (for tests/metrics).
    pub fn active_map(&self, sender: u32) -> Option<Vec<bool>> {
        self.senders.get(&sender).map(|s| s.active.clone())
    }

    /// Point-in-time per-tenant fairness view: shares, caps, and the
    /// lock-free request counters, plus Jain's index helpers — tenant
    /// isolation as a queryable property (DESIGN.md §5h).
    pub fn fairness_snapshot(&self) -> FairnessSnapshot {
        let total_active = self.total_active();
        let mut rows: BTreeMap<u32, TenantRow> = BTreeMap::new();
        // Tenants with counter blocks appear even if all their senders
        // departed (their traffic history is still part of the story).
        for tenant in self.accounting.tenant_ids() {
            let c = self.accounting.counters(tenant);
            rows.insert(
                tenant,
                TenantRow {
                    tenant,
                    senders: 0,
                    active_qps: 0,
                    cap: self.tenant_cap(tenant),
                    share: 0.0,
                    issued: c.issued(),
                    completed: c.completed(),
                    queued: c.queued(),
                },
            );
        }
        for s in self.senders.values() {
            let row = rows.entry(s.tenant).or_insert_with(|| TenantRow {
                tenant: s.tenant,
                senders: 0,
                active_qps: 0,
                cap: self.tenant_cap(s.tenant),
                share: 0.0,
                issued: 0,
                completed: 0,
                queued: 0,
            });
            row.senders += 1;
            row.active_qps += s.active_count();
        }
        let mut tenants: Vec<TenantRow> = rows.into_values().collect();
        if total_active > 0 {
            for t in &mut tenants {
                t.share = t.active_qps as f64 / total_active as f64;
            }
        }
        FairnessSnapshot {
            max_aqp: self.cfg.max_aqp,
            total_active,
            tenants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_aqp: usize) -> QpSchedulerConfig {
        QpSchedulerConfig {
            max_aqp,
            grant_size: 32,
        }
    }

    #[test]
    fn first_sender_gets_all_its_qps_up_to_cap() {
        let mut s = QpScheduler::new(cfg(8));
        s.register_sender(0, 4);
        assert_eq!(s.total_active(), 4);
        s.register_sender(1, 16);
        // New sender gets the average of functioning senders (4).
        assert_eq!(s.active_map(1).unwrap().iter().filter(|a| **a).count(), 4);
    }

    #[test]
    fn grants_only_on_active_qps() {
        let mut s = QpScheduler::new(cfg(4));
        s.register_sender(0, 8); // 4 active (cap)
        assert_eq!(
            s.on_credit_request(SenderQp { sender: 0, qp: 0 }, 2),
            Some(32)
        );
        assert_eq!(s.on_credit_request(SenderQp { sender: 0, qp: 7 }, 2), None);
    }

    #[test]
    fn redistribution_follows_utilization() {
        let mut s = QpScheduler::new(cfg(8));
        s.register_sender(0, 8);
        s.register_sender(1, 8);
        // Sender 0 is heavily contended; sender 1 barely active.
        for _ in 0..9 {
            s.on_credit_request(SenderQp { sender: 0, qp: 0 }, 8);
        }
        s.on_credit_request(SenderQp { sender: 1, qp: 0 }, 1);
        s.redistribute();
        let a0 = s.active_map(0).unwrap().iter().filter(|a| **a).count();
        let a1 = s.active_map(1).unwrap().iter().filter(|a| **a).count();
        assert!(a0 > a1, "contended sender should hold more active QPs");
        assert!(a0 + a1 <= 8 + 1);
        assert!(a1 >= 1);
    }

    #[test]
    fn dormant_sender_keeps_one_qp() {
        let mut s = QpScheduler::new(cfg(16));
        s.register_sender(0, 8);
        s.register_sender(1, 8);
        s.on_credit_request(SenderQp { sender: 0, qp: 0 }, 4);
        // Sender 1 reports nothing: dormant.
        s.redistribute();
        assert_eq!(s.active_map(1).unwrap().iter().filter(|a| **a).count(), 1);
    }

    #[test]
    fn all_dormant_everyone_keeps_one() {
        let mut s = QpScheduler::new(cfg(16));
        s.register_sender(0, 4);
        s.register_sender(1, 4);
        s.redistribute();
        assert_eq!(s.total_active(), 2);
    }

    #[test]
    fn within_sender_most_utilized_qps_stay_active() {
        let mut s = QpScheduler::new(cfg(2));
        s.register_sender(0, 4);
        // QP 3 and 1 are hot.
        for _ in 0..5 {
            s.on_credit_request(SenderQp { sender: 0, qp: 3 }, 6);
            s.on_credit_request(SenderQp { sender: 0, qp: 1 }, 4);
        }
        s.on_credit_request(SenderQp { sender: 0, qp: 0 }, 1);
        s.redistribute();
        let map = s.active_map(0).unwrap();
        assert!(map[3] && map[1]);
        assert!(!map[0] && !map[2]);
    }

    #[test]
    fn redistribute_reports_changes_only() {
        let mut s = QpScheduler::new(cfg(4));
        s.register_sender(0, 4); // all 4 active
        for qp in 0..4 {
            s.on_credit_request(SenderQp { sender: 0, qp }, 2);
        }
        let changes = s.redistribute();
        // Sole sender keeps all 4 active: no changes.
        assert!(changes.is_empty(), "{changes:?}");

        // A hot second sender joins: the budget shifts away from sender 0.
        s.register_sender(1, 4);
        for _ in 0..8 {
            s.on_credit_request(SenderQp { sender: 1, qp: 0 }, 8);
            s.on_credit_request(SenderQp { sender: 1, qp: 1 }, 8);
        }
        s.on_credit_request(SenderQp { sender: 0, qp: 0 }, 1);
        let changes = s.redistribute();
        let deact_s0 = changes
            .iter()
            .filter(|(sq, a)| sq.sender == 0 && !a)
            .count();
        let act_s1 = changes
            .iter()
            .filter(|(sq, a)| sq.sender == 1 && *a)
            .count();
        assert!(deact_s0 >= 2, "{changes:?}");
        assert!(act_s1 >= 1, "{changes:?}");
        // Sender 0's surviving active QP is its utilized one (qp 0).
        assert!(s.is_active(SenderQp { sender: 0, qp: 0 }));
    }

    #[test]
    fn utilization_resets_each_interval() {
        let mut s = QpScheduler::new(cfg(8));
        s.register_sender(0, 4);
        s.register_sender(1, 4);
        for _ in 0..10 {
            s.on_credit_request(SenderQp { sender: 0, qp: 0 }, 9);
        }
        s.redistribute();
        // Next interval: only sender 1 is active; the old utilization of
        // sender 0 must not leak in.
        for _ in 0..10 {
            s.on_credit_request(SenderQp { sender: 1, qp: 0 }, 9);
        }
        s.redistribute();
        let a0 = s.active_map(0).unwrap().iter().filter(|a| **a).count();
        let a1 = s.active_map(1).unwrap().iter().filter(|a| **a).count();
        assert!(a1 > a0);
    }

    #[test]
    fn unknown_sender_requests_are_ignored() {
        let mut s = QpScheduler::new(cfg(4));
        assert_eq!(s.on_credit_request(SenderQp { sender: 9, qp: 0 }, 1), None);
        assert!(!s.is_active(SenderQp { sender: 9, qp: 0 }));
    }

    #[test]
    fn unregister_releases_share_immediately() {
        let mut s = QpScheduler::new(cfg(8));
        s.register_sender(0, 8); // takes all 8
        s.register_sender(1, 8); // average-clamped slice
        let freed = s.unregister_sender(0);
        assert_eq!(freed.len(), 8, "all of sender 0's lanes were active");
        assert!(s.active_map(0).is_none());
        // The freed budget flows to the survivor on the next interval.
        s.on_credit_request(SenderQp { sender: 1, qp: 0 }, 4);
        s.redistribute();
        let a1 = s.active_map(1).unwrap().iter().filter(|a| **a).count();
        assert_eq!(a1, 8);
        // Unregistering twice (or an unknown sender) is harmless.
        assert!(s.unregister_sender(0).is_empty());
        assert!(s.unregister_sender(42).is_empty());
    }

    #[test]
    fn add_qp_grows_a_sender_within_budget() {
        let mut s = QpScheduler::new(cfg(8));
        s.register_sender(0, 2);
        assert_eq!(s.total_active(), 2);
        // Budget has room: the lazily attached lane starts active.
        assert_eq!(s.add_qp(0), Some(2));
        assert!(s.is_active(SenderQp { sender: 0, qp: 2 }));
        assert_eq!(s.total_active(), 3);
        assert_eq!(s.add_qp(42), None, "unknown sender");
    }

    #[test]
    fn add_qp_beyond_budget_starts_inactive() {
        let mut s = QpScheduler::new(cfg(2));
        s.register_sender(0, 2); // saturates max_aqp
        assert_eq!(s.add_qp(0), Some(2));
        assert!(!s.is_active(SenderQp { sender: 0, qp: 2 }));
        assert_eq!(s.total_active(), 2);
    }

    #[test]
    fn tenant_cap_clamps_aggressor_and_recycles_budget() {
        let mut s = QpScheduler::new(cfg(8));
        s.register_sender_tenant(0, 8, 1); // aggressor tenant 1
        s.register_sender_tenant(1, 8, 2); // victim tenant 2
        s.set_tenant_cap(1, 2);
        // Aggressor reports overwhelming utilization; victim a trickle.
        for _ in 0..20 {
            s.on_credit_request(SenderQp { sender: 0, qp: 0 }, 8);
            s.on_credit_request(SenderQp { sender: 0, qp: 1 }, 8);
        }
        s.on_credit_request(SenderQp { sender: 1, qp: 0 }, 1);
        s.redistribute();
        assert_eq!(s.tenant_active(1), 2, "cap binds despite utilization");
        // Budget the cap freed flows to the victim (busy, uncapped).
        assert!(s.tenant_active(2) > 1, "{:?}", s.fairness_snapshot());
        assert!(s.total_active() <= 8);
    }

    #[test]
    fn tenant_cap_floor_wins_over_cap() {
        let mut s = QpScheduler::new(cfg(8));
        s.register_sender_tenant(0, 2, 5);
        s.register_sender_tenant(1, 2, 5);
        s.register_sender_tenant(2, 2, 5);
        s.set_tenant_cap(5, 1); // below the 3-sender floor
        for id in 0..3 {
            s.on_credit_request(SenderQp { sender: id, qp: 0 }, 4);
        }
        s.redistribute();
        // Every sender keeps its 1-QP floor: effective cap is 3.
        assert_eq!(s.tenant_active(5), 3);
    }

    #[test]
    fn clear_tenant_cap_restores_proportional_share() {
        let mut s = QpScheduler::new(cfg(8));
        s.register_sender_tenant(0, 8, 1);
        s.register_sender_tenant(1, 8, 2);
        s.set_tenant_cap(1, 1);
        for _ in 0..10 {
            s.on_credit_request(SenderQp { sender: 0, qp: 0 }, 8);
        }
        s.on_credit_request(SenderQp { sender: 1, qp: 0 }, 1);
        s.redistribute();
        assert_eq!(s.tenant_active(1), 1);
        assert_eq!(s.tenant_cap(1), Some(1));
        s.clear_tenant_cap(1);
        assert_eq!(s.tenant_cap(1), None);
        for _ in 0..10 {
            s.on_credit_request(SenderQp { sender: 0, qp: 0 }, 8);
        }
        s.on_credit_request(SenderQp { sender: 1, qp: 0 }, 1);
        s.redistribute();
        assert!(s.tenant_active(1) > 1, "uncapped share follows utilization");
    }

    #[test]
    fn capped_add_qp_starts_inactive_at_cap() {
        let mut s = QpScheduler::new(cfg(8));
        s.register_sender_tenant(0, 2, 3);
        s.set_tenant_cap(3, 2); // tenant 3 already holds 2 active
        assert_eq!(s.add_qp(0), Some(2));
        assert!(
            !s.is_active(SenderQp { sender: 0, qp: 2 }),
            "lazy lane must not start active past the tenant cap"
        );
        s.clear_tenant_cap(3);
        assert_eq!(s.add_qp(0), Some(3));
        assert!(s.is_active(SenderQp { sender: 0, qp: 3 }));
    }

    #[test]
    fn fairness_snapshot_reports_shares_caps_and_counters() {
        let mut s = QpScheduler::new(cfg(8));
        s.register_sender_tenant(0, 4, 1);
        s.register_sender_tenant(1, 4, 2);
        s.set_tenant_cap(2, 3);
        s.accounting().counters(1).note_issued(10);
        s.accounting().counters(1).note_completed(7);
        let snap = s.fairness_snapshot();
        assert_eq!(snap.max_aqp, 8);
        assert_eq!(snap.total_active, s.total_active());
        assert_eq!(snap.tenants.len(), 2);
        let t1 = snap.tenant(1).expect("tenant 1 present");
        assert_eq!((t1.senders, t1.issued, t1.completed, t1.queued), (1, 10, 7, 3));
        assert_eq!(t1.cap, None);
        let t2 = snap.tenant(2).expect("tenant 2 present");
        assert_eq!(t2.cap, Some(3));
        let share_sum: f64 = snap.tenants.iter().map(|t| t.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-12, "shares partition unity");
        // Departed tenants keep their counter rows.
        s.unregister_sender(0);
        let snap = s.fairness_snapshot();
        let t1 = snap.tenant(1).expect("history survives departure");
        assert_eq!((t1.senders, t1.active_qps, t1.issued), (0, 0, 10));
    }

    #[test]
    fn equal_weight_tenants_reach_fair_steady_state() {
        let mut s = QpScheduler::new(cfg(12));
        for id in 0..4u32 {
            s.register_sender_tenant(id, 4, id + 1);
        }
        // A few intervals of identical load: shares must converge fair.
        for _ in 0..3 {
            for id in 0..4u32 {
                for qp in 0..3 {
                    s.on_credit_request(SenderQp { sender: id, qp }, 4);
                }
            }
            s.redistribute();
        }
        let snap = s.fairness_snapshot();
        assert!(
            snap.jains_active() >= 0.9,
            "equal-weight steady state must be fair: {snap:?}"
        );
    }
}
