//! Receiver-side QP scheduling (paper §5.1).
//!
//! The server bounds the number of QPs it actively serves (`MAX_AQP`,
//! default 256 — chosen from the Figure 2(a) thrash point) and
//! redistributes active QPs across senders every scheduling interval in
//! proportion to utilization:
//!
//! ```text
//!            ⎧ MAX_AQP · U_i / Σ_k U_k   if U_i > 0
//!   AQP_i =  ⎨
//!            ⎩ 1                          otherwise (dormant)
//! ```
//!
//! where `U_{i,j}` is the sum of coalescing degrees reported in credit
//! renewal requests on QP `j` of sender `i` since the last redistribution,
//! and `U_i = Σ_j U_{i,j}`. Higher utilization means either more QP
//! contention (higher coalescing degree) or more frequent renewals.
//!
//! Concurrency discipline: the scheduler runs on the server's single
//! scheduling thread; senders only observe its decisions through credit
//! renewal responses. No atomics — any future shared-state access must
//! go through [`crate::sync`] so it stays visible to the loom model
//! checker (see DESIGN.md).

use std::collections::BTreeMap;

/// Default bound on server-active QPs (paper `MAX_AQP`).
pub const DEFAULT_MAX_AQP: usize = 256;

/// Configuration for the QP scheduler.
#[derive(Debug, Clone)]
pub struct QpSchedulerConfig {
    /// Maximum number of QPs the server keeps active.
    pub max_aqp: usize,
    /// Credits granted per renewal.
    pub grant_size: u32,
}

impl Default for QpSchedulerConfig {
    fn default() -> Self {
        QpSchedulerConfig {
            max_aqp: DEFAULT_MAX_AQP,
            grant_size: crate::credit::DEFAULT_CREDITS,
        }
    }
}

/// Identifies one QP of one sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SenderQp {
    /// Sender (client node) id.
    pub sender: u32,
    /// QP index within that sender's connection handle.
    pub qp: usize,
}

#[derive(Debug)]
struct SenderState {
    util: Vec<u64>,
    active: Vec<bool>,
}

impl SenderState {
    fn active_count(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }
    fn total_util(&self) -> u64 {
        self.util.iter().sum()
    }
}

/// The receiver-side QP scheduler.
#[derive(Debug)]
pub struct QpScheduler {
    cfg: QpSchedulerConfig,
    senders: BTreeMap<u32, SenderState>,
}

impl QpScheduler {
    /// Create a scheduler.
    pub fn new(cfg: QpSchedulerConfig) -> QpScheduler {
        QpScheduler {
            cfg,
            senders: BTreeMap::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &QpSchedulerConfig {
        &self.cfg
    }

    /// Register a sender with `n_qps` connections.
    ///
    /// A new sender receives the average active-QP count of existing
    /// functioning senders (paper §5.1), clamped to `[1, n_qps]` and to
    /// the remaining global budget.
    pub fn register_sender(&mut self, sender: u32, n_qps: usize) {
        assert!(n_qps >= 1);
        let used: usize = self.senders.values().map(|s| s.active_count()).sum();
        let initial = if self.senders.is_empty() {
            n_qps.min(self.cfg.max_aqp)
        } else {
            let avg = (used / self.senders.len()).max(1);
            avg.min(n_qps)
                .min((self.cfg.max_aqp - used.min(self.cfg.max_aqp)).max(1))
        };
        let mut active = vec![false; n_qps];
        for a in active.iter_mut().take(initial) {
            *a = true;
        }
        self.senders.insert(
            sender,
            SenderState {
                util: vec![0; n_qps],
                active,
            },
        );
    }

    /// Remove a departing sender, releasing its whole AQP share
    /// immediately (graceful teardown — the budget becomes available to
    /// the next redistribution without waiting for the sender to go
    /// dormant). Returns the QP indices that were active, so the caller
    /// can tear down their server-side contexts.
    pub fn unregister_sender(&mut self, sender: u32) -> Vec<usize> {
        match self.senders.remove(&sender) {
            Some(s) => s
                .active
                .iter()
                .enumerate()
                .filter(|(_, a)| **a)
                .map(|(qp, _)| qp)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Grow a sender by one lane (lazy QP materialization: the client
    /// attached a data QP after connecting). The new lane starts active
    /// when the global budget allows — it is about to carry traffic —
    /// and inactive otherwise (the next redistribution arbitrates).
    /// Returns the new lane's index, or `None` for unknown senders.
    pub fn add_qp(&mut self, sender: u32) -> Option<usize> {
        let used: usize = self.senders.values().map(|s| s.active_count()).sum();
        let state = self.senders.get_mut(&sender)?;
        let qp = state.util.len();
        state.util.push(0);
        state.active.push(used < self.cfg.max_aqp);
        Some(qp)
    }

    /// Whether `qp` of `sender` is currently active.
    pub fn is_active(&self, sq: SenderQp) -> bool {
        self.senders
            .get(&sq.sender)
            .and_then(|s| s.active.get(sq.qp))
            .copied()
            .unwrap_or(false)
    }

    /// Total active QPs across all senders.
    pub fn total_active(&self) -> usize {
        self.senders.values().map(|s| s.active_count()).sum()
    }

    /// Handle a credit renewal request carrying the reported median
    /// coalescing degree. Returns `Some(grant)` if the QP is active and the
    /// request is granted, `None` if declined (QP deactivated).
    ///
    /// The reported degree (at least 1 for any renewal) accumulates into
    /// the QP's utilization for the next redistribution.
    pub fn on_credit_request(&mut self, sq: SenderQp, median_degree: u16) -> Option<u32> {
        let state = self.senders.get_mut(&sq.sender)?;
        let util = state.util.get_mut(sq.qp)?;
        *util += u64::from(median_degree.max(1));
        if state.active[sq.qp] {
            Some(self.cfg.grant_size)
        } else {
            None
        }
    }

    /// Redistribute active QPs (end of a scheduling interval).
    ///
    /// Returns the list of `(SenderQp, now_active)` *changes* relative to
    /// the previous assignment. Utilization counters reset afterwards.
    pub fn redistribute(&mut self) -> Vec<(SenderQp, bool)> {
        let total_util: u64 = self.senders.values().map(|s| s.total_util()).sum();
        let max_aqp = self.cfg.max_aqp as u64;
        let mut changes = Vec::new();

        // Pass 1: compute each sender's AQP_i target.
        let targets: Vec<(u32, usize)> = self
            .senders
            .iter()
            .map(|(&id, s)| {
                let u_i = s.total_util();
                let n_qps = s.util.len();
                let target = if u_i > 0 && total_util > 0 {
                    (((max_aqp * u_i) / total_util) as usize).clamp(1, n_qps)
                } else {
                    1 // dormant senders keep one QP for future traffic
                };
                (id, target)
            })
            .collect();

        // Pass 2: apply — within a sender, keep the most-utilized QPs.
        for (id, target) in targets {
            let s = self.senders.get_mut(&id).expect("sender exists");
            let mut order: Vec<usize> = (0..s.util.len()).collect();
            order.sort_by(|&a, &b| s.util[b].cmp(&s.util[a]).then(a.cmp(&b)));
            let mut new_active = vec![false; s.util.len()];
            for &qp in order.iter().take(target) {
                new_active[qp] = true;
            }
            for (qp, &now_active) in new_active.iter().enumerate() {
                if now_active != s.active[qp] {
                    changes.push((SenderQp { sender: id, qp }, now_active));
                }
            }
            s.active = new_active;
            s.util.iter_mut().for_each(|u| *u = 0);
        }
        changes
    }

    /// Snapshot of the active flags for one sender (for tests/metrics).
    pub fn active_map(&self, sender: u32) -> Option<Vec<bool>> {
        self.senders.get(&sender).map(|s| s.active.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_aqp: usize) -> QpSchedulerConfig {
        QpSchedulerConfig {
            max_aqp,
            grant_size: 32,
        }
    }

    #[test]
    fn first_sender_gets_all_its_qps_up_to_cap() {
        let mut s = QpScheduler::new(cfg(8));
        s.register_sender(0, 4);
        assert_eq!(s.total_active(), 4);
        s.register_sender(1, 16);
        // New sender gets the average of functioning senders (4).
        assert_eq!(s.active_map(1).unwrap().iter().filter(|a| **a).count(), 4);
    }

    #[test]
    fn grants_only_on_active_qps() {
        let mut s = QpScheduler::new(cfg(4));
        s.register_sender(0, 8); // 4 active (cap)
        assert_eq!(
            s.on_credit_request(SenderQp { sender: 0, qp: 0 }, 2),
            Some(32)
        );
        assert_eq!(s.on_credit_request(SenderQp { sender: 0, qp: 7 }, 2), None);
    }

    #[test]
    fn redistribution_follows_utilization() {
        let mut s = QpScheduler::new(cfg(8));
        s.register_sender(0, 8);
        s.register_sender(1, 8);
        // Sender 0 is heavily contended; sender 1 barely active.
        for _ in 0..9 {
            s.on_credit_request(SenderQp { sender: 0, qp: 0 }, 8);
        }
        s.on_credit_request(SenderQp { sender: 1, qp: 0 }, 1);
        s.redistribute();
        let a0 = s.active_map(0).unwrap().iter().filter(|a| **a).count();
        let a1 = s.active_map(1).unwrap().iter().filter(|a| **a).count();
        assert!(a0 > a1, "contended sender should hold more active QPs");
        assert!(a0 + a1 <= 8 + 1);
        assert!(a1 >= 1);
    }

    #[test]
    fn dormant_sender_keeps_one_qp() {
        let mut s = QpScheduler::new(cfg(16));
        s.register_sender(0, 8);
        s.register_sender(1, 8);
        s.on_credit_request(SenderQp { sender: 0, qp: 0 }, 4);
        // Sender 1 reports nothing: dormant.
        s.redistribute();
        assert_eq!(s.active_map(1).unwrap().iter().filter(|a| **a).count(), 1);
    }

    #[test]
    fn all_dormant_everyone_keeps_one() {
        let mut s = QpScheduler::new(cfg(16));
        s.register_sender(0, 4);
        s.register_sender(1, 4);
        s.redistribute();
        assert_eq!(s.total_active(), 2);
    }

    #[test]
    fn within_sender_most_utilized_qps_stay_active() {
        let mut s = QpScheduler::new(cfg(2));
        s.register_sender(0, 4);
        // QP 3 and 1 are hot.
        for _ in 0..5 {
            s.on_credit_request(SenderQp { sender: 0, qp: 3 }, 6);
            s.on_credit_request(SenderQp { sender: 0, qp: 1 }, 4);
        }
        s.on_credit_request(SenderQp { sender: 0, qp: 0 }, 1);
        s.redistribute();
        let map = s.active_map(0).unwrap();
        assert!(map[3] && map[1]);
        assert!(!map[0] && !map[2]);
    }

    #[test]
    fn redistribute_reports_changes_only() {
        let mut s = QpScheduler::new(cfg(4));
        s.register_sender(0, 4); // all 4 active
        for qp in 0..4 {
            s.on_credit_request(SenderQp { sender: 0, qp }, 2);
        }
        let changes = s.redistribute();
        // Sole sender keeps all 4 active: no changes.
        assert!(changes.is_empty(), "{changes:?}");

        // A hot second sender joins: the budget shifts away from sender 0.
        s.register_sender(1, 4);
        for _ in 0..8 {
            s.on_credit_request(SenderQp { sender: 1, qp: 0 }, 8);
            s.on_credit_request(SenderQp { sender: 1, qp: 1 }, 8);
        }
        s.on_credit_request(SenderQp { sender: 0, qp: 0 }, 1);
        let changes = s.redistribute();
        let deact_s0 = changes
            .iter()
            .filter(|(sq, a)| sq.sender == 0 && !a)
            .count();
        let act_s1 = changes
            .iter()
            .filter(|(sq, a)| sq.sender == 1 && *a)
            .count();
        assert!(deact_s0 >= 2, "{changes:?}");
        assert!(act_s1 >= 1, "{changes:?}");
        // Sender 0's surviving active QP is its utilized one (qp 0).
        assert!(s.is_active(SenderQp { sender: 0, qp: 0 }));
    }

    #[test]
    fn utilization_resets_each_interval() {
        let mut s = QpScheduler::new(cfg(8));
        s.register_sender(0, 4);
        s.register_sender(1, 4);
        for _ in 0..10 {
            s.on_credit_request(SenderQp { sender: 0, qp: 0 }, 9);
        }
        s.redistribute();
        // Next interval: only sender 1 is active; the old utilization of
        // sender 0 must not leak in.
        for _ in 0..10 {
            s.on_credit_request(SenderQp { sender: 1, qp: 0 }, 9);
        }
        s.redistribute();
        let a0 = s.active_map(0).unwrap().iter().filter(|a| **a).count();
        let a1 = s.active_map(1).unwrap().iter().filter(|a| **a).count();
        assert!(a1 > a0);
    }

    #[test]
    fn unknown_sender_requests_are_ignored() {
        let mut s = QpScheduler::new(cfg(4));
        assert_eq!(s.on_credit_request(SenderQp { sender: 9, qp: 0 }, 1), None);
        assert!(!s.is_active(SenderQp { sender: 9, qp: 0 }));
    }

    #[test]
    fn unregister_releases_share_immediately() {
        let mut s = QpScheduler::new(cfg(8));
        s.register_sender(0, 8); // takes all 8
        s.register_sender(1, 8); // average-clamped slice
        let freed = s.unregister_sender(0);
        assert_eq!(freed.len(), 8, "all of sender 0's lanes were active");
        assert!(s.active_map(0).is_none());
        // The freed budget flows to the survivor on the next interval.
        s.on_credit_request(SenderQp { sender: 1, qp: 0 }, 4);
        s.redistribute();
        let a1 = s.active_map(1).unwrap().iter().filter(|a| **a).count();
        assert_eq!(a1, 8);
        // Unregistering twice (or an unknown sender) is harmless.
        assert!(s.unregister_sender(0).is_empty());
        assert!(s.unregister_sender(42).is_empty());
    }

    #[test]
    fn add_qp_grows_a_sender_within_budget() {
        let mut s = QpScheduler::new(cfg(8));
        s.register_sender(0, 2);
        assert_eq!(s.total_active(), 2);
        // Budget has room: the lazily attached lane starts active.
        assert_eq!(s.add_qp(0), Some(2));
        assert!(s.is_active(SenderQp { sender: 0, qp: 2 }));
        assert_eq!(s.total_active(), 3);
        assert_eq!(s.add_qp(42), None, "unknown sender");
    }

    #[test]
    fn add_qp_beyond_budget_starts_inactive() {
        let mut s = QpScheduler::new(cfg(2));
        s.register_sender(0, 2); // saturates max_aqp
        assert_eq!(s.add_qp(0), Some(2));
        assert!(!s.is_active(SenderQp { sender: 0, qp: 2 }));
        assert_eq!(s.total_active(), 2);
    }
}
