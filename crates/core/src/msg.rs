//! The coalesced message layout (paper §4.1, Figure 5).
//!
//! A message carries one or more RPC requests (or responses) and has four
//! parts:
//!
//! ```text
//! ┌────────┬───────┬───────┬───────┬───────┬─────┬────────┐
//! │ Header │ Meta₁ │ Data₁ │ … │ Metaₙ │ Dataₙ │ Canary │
//! └────────┴───────┴───────┴───────┴───────┴─────┴────────┘
//! ```
//!
//! * **Header** — total length, entry count, flags, the expected canary,
//!   and two piggyback words: the sender's ring `Head` (so the peer can
//!   reclaim space without RDMA reads) and an auxiliary word used for
//!   credit requests/grants and the reported coalescing degree.
//! * **Metadata** — per entry: data length, thread id, sequence id, RPC id.
//!   The sequence id is a thread-local monotone counter letting a thread
//!   match an outstanding request to its response.
//! * **Canary** — a 64-bit value repeated from the header at the very end
//!   of the message. Because RDMA writes land in increasing address order,
//!   a matching trailer canary means the whole message has arrived.
//!
//! All integers are little-endian. The codec is pure (no I/O), so the
//! threaded runtime and the discrete-event models share it.

use crate::error::{FlockError, Result};

/// Header size in bytes.
pub const HDR_SIZE: usize = 32;
/// Per-entry metadata size in bytes.
pub const META_SIZE: usize = 24;
/// Trailing canary size in bytes.
pub const TRAILER_SIZE: usize = 8;

/// Flag: the sender requests a credit renewal of `aux` credits.
pub const FLAG_CREDIT_REQUEST: u16 = 1 << 0;
/// Flag: `aux` carries a credit grant (server→client).
pub const FLAG_CREDIT_GRANT: u16 = 1 << 1;
/// Flag: the low 16 bits of `aux >> 32` carry the reported median
/// coalescing degree since the last renewal (client→server).
pub const FLAG_COALESCE_REPORT: u16 = 1 << 2;

/// Per-entry metadata (one RPC request or response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryMeta {
    /// Length of the entry's data in bytes.
    pub len: u32,
    /// Sending thread's id; responses are routed back by this.
    pub thread_id: u32,
    /// Thread-local sequence number matching requests to responses.
    pub seq: u64,
    /// RPC handler id (requests) or status code (responses).
    pub rpc_id: u32,
}

/// Decoded message header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgHeader {
    /// Total message length in bytes including header and trailer.
    pub total_len: u32,
    /// Number of entries.
    pub count: u16,
    /// Flag bits (`FLAG_*`).
    pub flags: u16,
    /// The canary expected at the end of the message.
    pub canary: u64,
    /// Piggybacked ring `Head` of the sender's inbound ring.
    pub head: u64,
    /// Auxiliary word (credits requested/granted, coalescing degree).
    pub aux: u64,
}

/// Compute the encoded size of a message with the given entry data lengths.
pub fn encoded_size(data_lens: impl IntoIterator<Item = usize>) -> usize {
    HDR_SIZE + data_lens.into_iter().map(|l| META_SIZE + l).sum::<usize>() + TRAILER_SIZE
}

/// An entry to encode: metadata plus a borrowed payload.
#[derive(Debug, Clone, Copy)]
pub struct EntryRef<'a> {
    /// Entry metadata; `meta.len` must equal `data.len()`.
    pub meta: EntryMeta,
    /// Payload bytes.
    pub data: &'a [u8],
}

/// Encode a message into `buf`, returning the number of bytes written.
///
/// `buf` must be at least [`encoded_size`] of the entries. The header's
/// `total_len` and `count` fields are computed; `flags`, `canary`, `head`
/// and `aux` are taken from `header`.
pub fn encode(buf: &mut [u8], header: &MsgHeader, entries: &[EntryRef<'_>]) -> Result<usize> {
    encode_iter(buf, header, entries.iter().copied())
}

/// [`encode`] over any cloneable entry iterator.
///
/// Hot-path flushes encode straight from their scratch structures
/// (`(EntryMeta, Bytes)` pairs mapped to [`EntryRef`]s on the fly), so
/// no intermediate `Vec<EntryRef>` is materialized per message. The
/// iterator is walked twice (sizing pass, then write pass), hence
/// `Clone`.
pub fn encode_iter<'a, I>(buf: &mut [u8], header: &MsgHeader, entries: I) -> Result<usize>
where
    I: Iterator<Item = EntryRef<'a>> + Clone,
{
    let total = encoded_size(entries.clone().map(|e| e.data.len()));
    if buf.len() < total {
        return Err(FlockError::MessageTooLarge {
            need: total,
            capacity: buf.len(),
        });
    }
    debug_assert!(
        header.canary != 0,
        "canary 0 is reserved for empty/in-flight slots (see decode)"
    );

    let mut off = HDR_SIZE;
    let mut count: u16 = 0;
    for e in entries {
        debug_assert_eq!(e.meta.len as usize, e.data.len());
        buf[off..off + 4].copy_from_slice(&e.meta.len.to_le_bytes());
        buf[off + 4..off + 8].copy_from_slice(&e.meta.thread_id.to_le_bytes());
        buf[off + 8..off + 16].copy_from_slice(&e.meta.seq.to_le_bytes());
        buf[off + 16..off + 20].copy_from_slice(&e.meta.rpc_id.to_le_bytes());
        buf[off + 20..off + 24].copy_from_slice(&0u32.to_le_bytes());
        off += META_SIZE;
        buf[off..off + e.data.len()].copy_from_slice(e.data);
        off += e.data.len();
        count += 1;
    }

    buf[0..4].copy_from_slice(&(total as u32).to_le_bytes());
    buf[4..6].copy_from_slice(&count.to_le_bytes());
    buf[6..8].copy_from_slice(&header.flags.to_le_bytes());
    buf[8..16].copy_from_slice(&header.canary.to_le_bytes());
    buf[16..24].copy_from_slice(&header.head.to_le_bytes());
    buf[24..32].copy_from_slice(&header.aux.to_le_bytes());

    buf[off..off + 8].copy_from_slice(&header.canary.to_le_bytes());
    off += 8;
    debug_assert_eq!(off, total);
    Ok(total)
}

/// Peek at the `total_len` field of a (possibly partial) message at the
/// start of `buf`. Returns `None` if fewer than 4 bytes are present or the
/// field is zero (ring slot empty).
pub fn peek_total_len(buf: &[u8]) -> Option<usize> {
    if buf.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    if len == 0 {
        None
    } else {
        Some(len)
    }
}

/// A decoded message borrowing the underlying buffer.
#[derive(Debug)]
pub struct MsgView<'a> {
    /// The header.
    pub header: MsgHeader,
    body: &'a [u8],
}

impl<'a> MsgView<'a> {
    /// Iterate over the entries.
    pub fn entries(&self) -> EntryIter<'a> {
        EntryIter {
            body: self.body,
            remaining: self.header.count,
            off: 0,
        }
    }

    /// Collect all entries (convenience).
    pub fn to_entries(&self) -> Vec<(EntryMeta, &'a [u8])> {
        self.entries().collect()
    }

    /// Iterate over entries as `(EntryMeta, Range)` where the range
    /// indexes the entry's payload within the *full message buffer* the
    /// view was decoded from (header included).
    ///
    /// This lets a receiver that owns the message as a shared buffer
    /// ([`bytes::Bytes`]) hand out zero-copy payload slices instead of
    /// `to_vec()`ing each entry.
    pub fn entry_ranges(&self) -> EntryRangeIter<'a> {
        EntryRangeIter {
            inner: self.entries(),
        }
    }
}

/// Iterator over `(EntryMeta, absolute payload range)` pairs of a
/// [`MsgView`]; see [`MsgView::entry_ranges`].
#[derive(Debug)]
pub struct EntryRangeIter<'a> {
    inner: EntryIter<'a>,
}

impl Iterator for EntryRangeIter<'_> {
    type Item = (EntryMeta, std::ops::Range<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        // `EntryIter::off` points past the just-yielded entry, so derive
        // the absolute range from the pre-call offset instead.
        let off_before = self.inner.off;
        let (meta, data) = self.inner.next()?;
        let start = HDR_SIZE + off_before + META_SIZE;
        debug_assert_eq!(data.len(), meta.len as usize);
        Some((meta, start..start + data.len()))
    }
}

/// Iterator over `(EntryMeta, data)` pairs of a [`MsgView`].
#[derive(Debug)]
pub struct EntryIter<'a> {
    body: &'a [u8],
    remaining: u16,
    off: usize,
}

impl<'a> Iterator for EntryIter<'a> {
    type Item = (EntryMeta, &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        let b = self.body;
        let off = self.off;
        let len = u32::from_le_bytes(b[off..off + 4].try_into().ok()?) as usize;
        let meta = EntryMeta {
            len: len as u32,
            thread_id: u32::from_le_bytes(b[off + 4..off + 8].try_into().ok()?),
            seq: u64::from_le_bytes(b[off + 8..off + 16].try_into().ok()?),
            rpc_id: u32::from_le_bytes(b[off + 16..off + 20].try_into().ok()?),
        };
        let data = &b[off + META_SIZE..off + META_SIZE + len];
        self.off = off + META_SIZE + len;
        self.remaining -= 1;
        Some((meta, data))
    }
}

/// Decode and validate a complete message at the start of `buf`.
///
/// Checks: length fields are structurally consistent and the trailer
/// canary matches the header canary (write-completeness, §4.1). Returns
/// `Ok(None)` if the slot is empty (`total_len == 0`) or the trailer has
/// not yet arrived — callers poll again. Returns an error only for
/// structurally impossible contents.
pub fn decode(buf: &[u8]) -> Result<Option<MsgView<'_>>> {
    let Some(total) = peek_total_len(buf) else {
        return Ok(None);
    };
    if total < HDR_SIZE + TRAILER_SIZE {
        return Err(FlockError::CorruptMessage("length below minimum"));
    }
    if total > buf.len() {
        return Err(FlockError::CorruptMessage("length exceeds buffer"));
    }
    let count = u16::from_le_bytes(buf[4..6].try_into().expect("2 bytes"));
    let flags = u16::from_le_bytes(buf[6..8].try_into().expect("2 bytes"));
    let canary = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    let head = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes"));
    let aux = u64::from_le_bytes(buf[24..32].try_into().expect("8 bytes"));

    if canary == 0 {
        // Canaries are always nonzero (encode rejects zero), so a zero
        // canary means the header has not fully landed: the trailer slot
        // is also still zero and would spuriously "match". Without this
        // check, polling a partially-landed header reaches the structural
        // validation below and reports a hard error for an in-flight
        // write. Mirrors the wrap-record check in `ring::RingConsumer`.
        return Ok(None);
    }

    let trailer = u64::from_le_bytes(
        buf[total - TRAILER_SIZE..total]
            .try_into()
            .expect("8 bytes"),
    );
    if trailer != canary {
        // Message still in flight: the canary has not landed yet.
        return Ok(None);
    }

    // Structural validation of entry lengths.
    let body = &buf[HDR_SIZE..total - TRAILER_SIZE];
    let mut off = 0usize;
    for _ in 0..count {
        if off + META_SIZE > body.len() {
            return Err(FlockError::CorruptMessage("metadata overruns body"));
        }
        let len = u32::from_le_bytes(body[off..off + 4].try_into().expect("4 bytes")) as usize;
        off += META_SIZE + len;
        if off > body.len() {
            return Err(FlockError::CorruptMessage("entry data overruns body"));
        }
    }
    if off != body.len() {
        return Err(FlockError::CorruptMessage("trailing garbage in body"));
    }

    Ok(Some(MsgView {
        header: MsgHeader {
            total_len: total as u32,
            count,
            flags,
            canary,
            head,
            aux,
        },
        body,
    }))
}

/// Pack a credit request (`credits`) and a median coalescing-degree report
/// (`degree`) into the header `aux` word.
pub fn pack_aux(credits: u32, degree: u16) -> u64 {
    (credits as u64) | ((degree as u64) << 32)
}

/// Unpack [`pack_aux`].
pub fn unpack_aux(aux: u64) -> (u32, u16) {
    (aux as u32, (aux >> 32) as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(len: usize, thread: u32, seq: u64, rpc: u32) -> EntryMeta {
        EntryMeta {
            len: len as u32,
            thread_id: thread,
            seq,
            rpc_id: rpc,
        }
    }

    fn header(canary: u64) -> MsgHeader {
        MsgHeader {
            total_len: 0,
            count: 0,
            flags: FLAG_COALESCE_REPORT,
            canary,
            head: 777,
            aux: pack_aux(32, 3),
        }
    }

    #[test]
    fn roundtrip_single_entry() {
        let mut buf = vec![0u8; 256];
        let data = b"hello rpc";
        let n = encode(
            &mut buf,
            &header(0xDEAD),
            &[EntryRef {
                meta: meta(data.len(), 4, 99, 12),
                data,
            }],
        )
        .unwrap();
        assert_eq!(n, encoded_size([data.len()]));
        let view = decode(&buf).unwrap().expect("complete message");
        assert_eq!(view.header.count, 1);
        assert_eq!(view.header.canary, 0xDEAD);
        assert_eq!(view.header.head, 777);
        assert_eq!(unpack_aux(view.header.aux), (32, 3));
        let entries = view.to_entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, meta(data.len(), 4, 99, 12));
        assert_eq!(entries[0].1, data);
    }

    #[test]
    fn roundtrip_coalesced_entries() {
        let mut buf = vec![0u8; 1024];
        let payloads: Vec<Vec<u8>> = (0..5).map(|i| vec![i as u8; 10 + i]).collect();
        let entries: Vec<EntryRef<'_>> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| EntryRef {
                meta: meta(p.len(), i as u32, i as u64 * 10, 1),
                data: p,
            })
            .collect();
        let n = encode(&mut buf, &header(42), &entries).unwrap();
        assert_eq!(n, encoded_size(payloads.iter().map(|p| p.len())));
        let view = decode(&buf).unwrap().unwrap();
        assert_eq!(view.header.count, 5);
        for (i, (m, d)) in view.entries().enumerate() {
            assert_eq!(m.thread_id, i as u32);
            assert_eq!(d, payloads[i].as_slice());
        }
    }

    #[test]
    fn empty_slot_decodes_to_none() {
        let buf = vec![0u8; 64];
        assert!(decode(&buf).unwrap().is_none());
        assert_eq!(peek_total_len(&buf), None);
    }

    #[test]
    fn partial_write_is_invisible_until_canary_lands() {
        let mut buf = vec![0u8; 256];
        let data = [7u8; 16];
        encode(
            &mut buf,
            &header(0xFEED_BEEF),
            &[EntryRef {
                meta: meta(16, 0, 0, 0),
                data: &data,
            }],
        )
        .unwrap();
        // Simulate the trailer not having arrived (RDMA writes land in
        // increasing address order): clobber the last 8 bytes.
        let total = peek_total_len(&buf).unwrap();
        buf[total - 8..total].copy_from_slice(&[0u8; 8]);
        assert!(decode(&buf).unwrap().is_none());
    }

    #[test]
    fn zero_entry_message_is_valid() {
        // Used for pure control traffic (credit grant piggyback).
        let mut buf = vec![0u8; 64];
        let n = encode(&mut buf, &header(5), &[]).unwrap();
        assert_eq!(n, HDR_SIZE + TRAILER_SIZE);
        let view = decode(&buf).unwrap().unwrap();
        assert_eq!(view.header.count, 0);
        assert_eq!(view.to_entries().len(), 0);
    }

    #[test]
    fn corrupt_count_is_detected() {
        let mut buf = vec![0u8; 256];
        let data = [1u8; 8];
        encode(
            &mut buf,
            &header(1),
            &[EntryRef {
                meta: meta(8, 0, 0, 0),
                data: &data,
            }],
        )
        .unwrap();
        // Inflate the count field: metadata would overrun the body.
        buf[4..6].copy_from_slice(&9u16.to_le_bytes());
        assert!(matches!(decode(&buf), Err(FlockError::CorruptMessage(_))));
    }

    #[test]
    fn corrupt_entry_len_is_detected() {
        let mut buf = vec![0u8; 256];
        let data = [1u8; 8];
        encode(
            &mut buf,
            &header(1),
            &[EntryRef {
                meta: meta(8, 0, 0, 0),
                data: &data,
            }],
        )
        .unwrap();
        // Corrupt the entry length so that data overruns the body.
        buf[HDR_SIZE..HDR_SIZE + 4].copy_from_slice(&1000u32.to_le_bytes());
        assert!(decode(&buf).is_err());
    }

    #[test]
    fn length_below_minimum_rejected() {
        let mut buf = vec![0u8; 64];
        buf[0..4].copy_from_slice(&8u32.to_le_bytes());
        assert!(decode(&buf).is_err());
    }

    #[test]
    fn length_beyond_buffer_rejected() {
        let mut buf = vec![0u8; 64];
        buf[0..4].copy_from_slice(&100u32.to_le_bytes());
        assert!(decode(&buf).is_err());
    }

    #[test]
    fn aux_packing_roundtrip() {
        let aux = pack_aux(u32::MAX, 1234);
        assert_eq!(unpack_aux(aux), (u32::MAX, 1234));
        assert_eq!(unpack_aux(pack_aux(0, 0)), (0, 0));
    }

    #[test]
    fn entry_ranges_index_the_full_buffer() {
        let mut buf = vec![0u8; 1024];
        let payloads: Vec<Vec<u8>> = (0..4).map(|i| vec![0x40 + i as u8; 7 + i]).collect();
        let entries: Vec<EntryRef<'_>> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| EntryRef {
                meta: meta(p.len(), i as u32, i as u64, 2),
                data: p,
            })
            .collect();
        let n = encode_iter(&mut buf, &header(9), entries.iter().copied()).unwrap();
        let view = decode(&buf).unwrap().unwrap();
        for (i, (m, range)) in view.entry_ranges().enumerate() {
            assert_eq!(m.len as usize, payloads[i].len());
            assert!(range.end <= n - TRAILER_SIZE);
            assert_eq!(&buf[range], payloads[i].as_slice());
        }
        assert_eq!(view.entry_ranges().count(), 4);
    }

    #[test]
    fn encode_iter_matches_slice_encode() {
        let mut a = vec![0u8; 256];
        let mut b = vec![0u8; 256];
        let data = b"same bytes";
        let e = [EntryRef {
            meta: meta(data.len(), 1, 2, 3),
            data,
        }];
        let na = encode(&mut a, &header(7), &e).unwrap();
        let nb = encode_iter(&mut b, &header(7), e.iter().copied()).unwrap();
        assert_eq!(na, nb);
        assert_eq!(a[..na], b[..nb]);
    }

    #[test]
    fn encode_rejects_undersized_buffer() {
        let mut buf = vec![0u8; 16];
        let r = encode(&mut buf, &header(1), &[]);
        assert!(matches!(r, Err(FlockError::MessageTooLarge { .. })));
    }
}
